//! Planted-violation mutation tests: the watchdog must flag a
//! structure carrying the Figure-1 help-after-CAS defect (modelled as
//! a conservation leak) and a §4.4 bypass-bound violation within a
//! bounded number of ticks — and raise **zero** alerts on a clean
//! concurrent workload.
//!
//! The offline twin of this test is `tests/model_mutation.rs` at the
//! workspace root, where the same mutant is killed by exhaustive
//! schedule exploration. Here the defect must be caught *online*,
//! from racy uncounted reads, without ever crying wolf.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cso_profile::LiveAggregator;
use cso_trace::probe::{Event, Harvested, TraceEvent};
use cso_watch::{Invariant, Watchdog};

/// Shared op counters a workload updates and the watchdog samples.
struct Books {
    pushes: AtomicU64,
    pops: AtomicU64,
    size: AtomicI64,
}

impl Books {
    fn new() -> Arc<Books> {
        Arc::new(Books {
            pushes: AtomicU64::new(0),
            pops: AtomicU64::new(0),
            size: AtomicI64::new(0),
        })
    }

    fn conservation(self: &Arc<Books>, slack: u64) -> Invariant {
        let (p, o, s) = (Arc::clone(self), Arc::clone(self), Arc::clone(self));
        Invariant::conservation(
            "conservation",
            slack,
            move || p.pushes.load(Ordering::Relaxed),
            move || o.pops.load(Ordering::Relaxed),
            move || s.size.load(Ordering::Relaxed),
        )
    }
}

/// The Figure-1 mutant moves the helping write after the decisive TOP
/// CAS, so a concurrent pop can return a value whose push never
/// landed: an operation is lost. Observable effect on the books: the
/// push counter advanced but the element never reached the structure,
/// so `pushes - pops` drifts away from `size` and stays drifted.
#[test]
fn the_conservation_mutant_is_flagged_degraded_within_bounded_ticks() {
    let books = Books::new();
    const DEBOUNCE: u32 = 2;
    let mut dog = Watchdog::builder()
        .invariant(books.conservation(4))
        .debounce(DEBOUNCE)
        .build();

    // Faithful phase: balanced books stay green.
    for i in 0..1_000u64 {
        books.pushes.fetch_add(1, Ordering::Relaxed);
        books.size.fetch_add(1, Ordering::Relaxed);
        if i % 2 == 0 {
            books.pops.fetch_add(1, Ordering::Relaxed);
            books.size.fetch_sub(1, Ordering::Relaxed);
        }
    }
    for _ in 0..5 {
        dog.tick();
    }
    assert_eq!(dog.status(), "OK", "faithful ordering raises nothing");
    assert_eq!(dog.transitions(), 0);

    // Mutant phase: ten pushes whose helping write was lost. The
    // counter moved, the structure did not.
    for _ in 0..10 {
        books.pushes.fetch_add(1, Ordering::Relaxed);
    }
    let mut ticks_to_detect = 0;
    while dog.status() == "OK" {
        assert!(
            ticks_to_detect <= DEBOUNCE + 1,
            "not detected within the debounce window"
        );
        dog.tick();
        ticks_to_detect += 1;
    }
    assert_eq!(dog.status(), "DEGRADED");
    let health = dog.health_json();
    let reasons = health.get("reasons").unwrap().as_arr().unwrap();
    assert_eq!(reasons.len(), 1);
    assert!(
        reasons[0].as_str().unwrap().contains("conservation leak"),
        "{health:?}"
    );
}

/// A §4.4 violation planted straight into the trace stream: proc 0
/// raises its FLAG, then proc 1 takes the lock three times before
/// proc 0 is admitted. With n = 2 the bound is n−1 = 1, so a max
/// bypass of 3 must degrade health.
#[test]
fn a_planted_bypass_violation_is_flagged_degraded() {
    let agg = Arc::new(LiveAggregator::new());
    let mut seq = 0;
    let mut mk = |thread: u32, event| {
        seq += 1;
        TraceEvent {
            thread,
            seq,
            wall_ns: seq * 10,
            event,
        }
    };
    let mut events = vec![mk(0, Event::FlagRaise(0))];
    for _ in 0..3 {
        events.push(mk(1, Event::FlagRaise(1)));
        events.push(mk(1, Event::LockAcquire(1)));
        events.push(mk(1, Event::LockRelease(1)));
    }
    events.push(mk(0, Event::LockAcquire(0)));
    events.push(mk(0, Event::LockRelease(0)));
    agg.ingest(&Harvested {
        events,
        lost: 0,
        truncated: Vec::new(),
    });

    let mut dog = Watchdog::builder()
        .invariant(Invariant::bypass_bound(&agg))
        .debounce(2)
        .build();
    dog.tick();
    assert_eq!(dog.status(), "OK", "first sample is debounced");
    dog.tick();
    assert_eq!(dog.status(), "DEGRADED");
    let alerts = dog.alerts_json();
    let active = alerts.get("active").unwrap().as_arr().unwrap();
    assert_eq!(active.len(), 1);
    assert!(
        active[0]
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("bypass bound violated"),
        "{alerts:?}"
    );
}

/// The flip side of detection: a clean, genuinely concurrent workload
/// on the production contention-sensitive stack must produce zero
/// transitions — no false positives from racy reads, in-flight
/// operations, or scheduler noise.
#[test]
fn a_clean_concurrent_workload_raises_no_alerts() {
    use cso_stack::CsStack;

    const THREADS: usize = 4;
    const OPS: u64 = 5_000;

    let stack: Arc<CsStack<u32>> = Arc::new(CsStack::new(4096, THREADS));
    let books = Books::new();
    // With `trace` on, the workload emits real probes; a live
    // harvester must drain the rings or `lossless_rings` would —
    // correctly — flag the capture as lossy.
    let harvester = cso_profile::Harvester::start_with(
        Arc::new(LiveAggregator::new()),
        Duration::from_millis(1),
    );
    let agg = harvester.aggregator();
    let dog = Watchdog::builder()
        .invariant(books.conservation(4 * THREADS as u64))
        .invariant(Invariant::bypass_bound(&agg))
        .invariant(Invariant::poison_free(&agg))
        .invariant(Invariant::lossless_rings(&agg))
        .cadence(Duration::from_millis(1))
        .debounce(2)
        .spawn();

    let workers: Vec<_> = (0..THREADS)
        .map(|proc| {
            let stack = Arc::clone(&stack);
            let books = Arc::clone(&books);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    if i % 2 == 0 {
                        if stack.push(proc, i as u32).is_pushed() {
                            books.pushes.fetch_add(1, Ordering::Relaxed);
                            books.size.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if stack.pop(proc).is_popped() {
                        books.pops.fetch_add(1, Ordering::Relaxed);
                        books.size.fetch_sub(1, Ordering::Relaxed);
                    }
                    if i % 512 == 511 {
                        // Breathe so the 1ms harvester keeps every
                        // 4096-slot ring ahead of the probe stream.
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker");
    }
    // Let the watchdog observe the quiesced structure too.
    std::thread::sleep(Duration::from_millis(20));

    assert_eq!(dog.status(), "OK", "{:?}", dog.alerts_json());
    assert_eq!(
        dog.transitions(),
        0,
        "clean workload flapped: {:?}",
        dog.alerts_json()
    );
    let expected =
        books.pushes.load(Ordering::Relaxed) as i64 - books.pops.load(Ordering::Relaxed) as i64;
    assert_eq!(
        books.size.load(Ordering::Relaxed),
        expected,
        "the workload itself conserves"
    );
    dog.stop();
    let _ = harvester.stop();
}
