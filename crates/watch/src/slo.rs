//! Declarative SLOs with multi-window burn-rate evaluation.
//!
//! An [`SloSpec`] names an objective over the live per-path operation
//! counts: the fraction of operations completing *off* the listed
//! `good` paths must stay within `budget`. One line per objective:
//!
//! ```text
//! # name   budget  windows          good paths
//! fastpath budget=0.05 short=60s long=600s good=fast,eliminated
//! served   budget=0.001 short=30s long=300s good=fast,eliminated,locked,combined,combiner
//! ```
//!
//! The [`SloEngine`] folds aggregator snapshots into per-objective
//! sample rings and evaluates the classic two-window burn rate: the
//! error rate over each window divided by the budget. An objective
//! *fires* only when **both** windows burn above 1.0 — the short
//! window makes alerts fast to clear, the long window keeps a brief
//! spike from paging anyone (the standard multi-window multi-burn
//! construction).

use std::collections::VecDeque;
use std::time::Duration;

/// One declarative objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (used in metrics and alerts).
    pub name: String,
    /// Error budget as a fraction of operations (e.g. `0.05`).
    pub budget: f64,
    /// Fast-reacting evaluation window.
    pub short: Duration,
    /// Slow, spike-tolerant evaluation window.
    pub long: Duration,
    /// Path labels counted as good (everything else burns budget).
    pub good: Vec<String>,
}

impl SloSpec {
    /// Parses one spec line (see the module docs for the format).
    pub fn parse_line(line: &str) -> Result<SloSpec, String> {
        let mut fields = line.split_whitespace();
        let name = fields.next().ok_or("empty spec line")?.to_owned();
        let (mut budget, mut short, mut long, mut good) = (None, None, None, None);
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("{name}: expected key=value, got {field:?}"))?;
            match key {
                "budget" => {
                    let b: f64 = value
                        .parse()
                        .map_err(|_| format!("{name}: bad budget {value:?}"))?;
                    if !(0.0..=1.0).contains(&b) || b == 0.0 {
                        return Err(format!("{name}: budget must be in (0, 1], got {value}"));
                    }
                    budget = Some(b);
                }
                "short" => short = Some(parse_seconds(&name, value)?),
                "long" => long = Some(parse_seconds(&name, value)?),
                "good" => {
                    good = Some(
                        value
                            .split(',')
                            .filter(|p| !p.is_empty())
                            .map(str::to_owned)
                            .collect::<Vec<_>>(),
                    );
                }
                other => return Err(format!("{name}: unknown key {other:?}")),
            }
        }
        let spec = SloSpec {
            name: name.clone(),
            budget: budget.ok_or_else(|| format!("{name}: missing budget="))?,
            short: short.ok_or_else(|| format!("{name}: missing short="))?,
            long: long.ok_or_else(|| format!("{name}: missing long="))?,
            good: good.ok_or_else(|| format!("{name}: missing good="))?,
        };
        if spec.good.is_empty() {
            return Err(format!("{name}: good= lists no paths"));
        }
        if spec.short >= spec.long {
            return Err(format!(
                "{name}: short window ({:?}) must be shorter than long ({:?})",
                spec.short, spec.long
            ));
        }
        Ok(spec)
    }

    /// Parses a whole config: one spec per line, `#` comments and
    /// blank lines ignored.
    pub fn parse(text: &str) -> Result<Vec<SloSpec>, String> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(SloSpec::parse_line)
            .collect()
    }
}

fn parse_seconds(name: &str, value: &str) -> Result<Duration, String> {
    let digits = value
        .strip_suffix('s')
        .ok_or_else(|| format!("{name}: windows take seconds, e.g. 60s, got {value:?}"))?;
    let secs: u64 = digits
        .parse()
        .map_err(|_| format!("{name}: bad window {value:?}"))?;
    if secs == 0 {
        return Err(format!("{name}: zero-length window"));
    }
    Ok(Duration::from_secs(secs))
}

/// The live evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// The configured budget.
    pub budget: f64,
    /// Burn rate over the short window (1.0 = burning exactly at
    /// budget).
    pub short_burn: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// `true` when both windows burn above 1.0.
    pub firing: bool,
    /// Cumulative operations observed.
    pub total: u64,
    /// Cumulative operations on good paths.
    pub good: u64,
}

/// `(elapsed, cumulative total, cumulative good)` — one reading.
type Sample = (Duration, u64, u64);

#[derive(Debug)]
struct Series {
    spec: SloSpec,
    samples: VecDeque<Sample>,
}

impl Series {
    /// Burn rate over a trailing window ending at the newest sample.
    fn burn(&self, window: Duration) -> f64 {
        let Some(&(now, total, good)) = self.samples.back() else {
            return 0.0;
        };
        let cutoff = now.saturating_sub(window);
        // Baseline: the newest sample at or before the window start
        // (falling back to the oldest reading while the window is
        // still filling).
        let &(_, base_total, base_good) = self
            .samples
            .iter()
            .rev()
            .find(|&&(t, _, _)| t <= cutoff)
            .unwrap_or_else(|| self.samples.front().expect("non-empty"));
        let d_total = total.saturating_sub(base_total);
        let d_bad = d_total.saturating_sub(good.saturating_sub(base_good));
        if d_total == 0 {
            return 0.0;
        }
        (d_bad as f64 / d_total as f64) / self.spec.budget
    }

    fn status(&self) -> SloStatus {
        let short_burn = self.burn(self.spec.short);
        let long_burn = self.burn(self.spec.long);
        let (total, good) = self
            .samples
            .back()
            .map_or((0, 0), |&(_, total, good)| (total, good));
        SloStatus {
            name: self.spec.name.clone(),
            budget: self.spec.budget,
            short_burn,
            long_burn,
            firing: short_burn > 1.0 && long_burn > 1.0,
            total,
            good,
        }
    }
}

/// Folds per-path operation counts into burn-rate evaluations for a
/// set of objectives. Time is passed in explicitly (elapsed since the
/// watchdog started) so evaluation is deterministic under test.
#[derive(Debug)]
pub struct SloEngine {
    series: Vec<Series>,
}

impl SloEngine {
    /// Builds an engine over the given objectives.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            series: specs
                .into_iter()
                .map(|spec| Series {
                    spec,
                    samples: VecDeque::new(),
                })
                .collect(),
        }
    }

    /// `true` when no objectives are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Records one reading of the cumulative per-path operation
    /// counts at elapsed time `t`. Readings closer together than a
    /// twentieth of the short window coalesce in place, bounding ring
    /// memory regardless of tick cadence; readings older than the
    /// long window (plus one baseline) are dropped.
    pub fn observe(&mut self, t: Duration, per_path: &[(&str, u64)]) {
        for series in &mut self.series {
            let total: u64 = per_path.iter().map(|&(_, n)| n).sum();
            let good: u64 = per_path
                .iter()
                .filter(|(label, _)| series.spec.good.iter().any(|g| g == label))
                .map(|&(_, n)| n)
                .sum();
            let granule = (series.spec.short / 20).max(Duration::from_millis(1));
            let coalesce = series.samples.len() >= 2
                && series
                    .samples
                    .back()
                    .is_some_and(|&(bt, _, _)| t < bt + granule);
            if coalesce {
                *series.samples.back_mut().expect("non-empty") = (t, total, good);
            } else {
                series.samples.push_back((t, total, good));
            }
            while series.samples.len() >= 2 && series.samples[1].0 + series.spec.long <= t {
                series.samples.pop_front();
            }
        }
    }

    /// Evaluates every objective at the latest reading.
    #[must_use]
    pub fn status(&self) -> Vec<SloStatus> {
        self.series.iter().map(Series::status).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(line: &str) -> SloSpec {
        SloSpec::parse_line(line).expect("parses")
    }

    #[test]
    fn the_config_grammar_round_trips() {
        let text = "\
# objectives for e16
fastpath budget=0.05 short=60s long=600s good=fast,eliminated
served budget=0.001 short=30s long=300s good=fast,locked
";
        let specs = SloSpec::parse(text).expect("parses");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "fastpath");
        assert!((specs[0].budget - 0.05).abs() < 1e-12);
        assert_eq!(specs[0].short, Duration::from_secs(60));
        assert_eq!(specs[0].long, Duration::from_secs(600));
        assert_eq!(specs[0].good, vec!["fast", "eliminated"]);
        assert_eq!(specs[1].good, vec!["fast", "locked"]);
    }

    #[test]
    fn malformed_specs_are_rejected_with_reasons() {
        for (line, needle) in [
            ("x short=1s long=2s good=fast", "missing budget"),
            ("x budget=0.1 long=2s good=fast", "missing short"),
            ("x budget=0.1 short=1s good=fast", "missing long"),
            ("x budget=0.1 short=1s long=2s", "missing good"),
            ("x budget=2 short=1s long=2s good=fast", "budget must be"),
            ("x budget=0 short=1s long=2s good=fast", "budget must be"),
            ("x budget=0.1 short=5s long=2s good=fast", "must be shorter"),
            ("x budget=0.1 short=1m long=2s good=fast", "seconds"),
            ("x budget=0.1 short=0s long=2s good=fast", "zero-length"),
            ("x budget=0.1 short=1s long=2s good=fast extra", "key=value"),
            (
                "x budget=0.1 short=1s long=2s good=fast zzz=1",
                "unknown key",
            ),
        ] {
            let err = SloSpec::parse_line(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn burn_fires_only_when_both_windows_exceed_budget() {
        let mut engine = SloEngine::new(vec![spec(
            "fastpath budget=0.10 short=10s long=100s good=fast",
        )]);
        // 100 ops, all good: no burn.
        engine.observe(Duration::from_secs(0), &[("fast", 100), ("locked", 0)]);
        engine.observe(Duration::from_secs(5), &[("fast", 200), ("locked", 0)]);
        let s = &engine.status()[0];
        assert_eq!((s.short_burn, s.long_burn), (0.0, 0.0));
        assert!(!s.firing);

        // Sustained 50% slow-path: burn 5x in both windows -> firing.
        for t in (10u64..=220).step_by(5) {
            let ops = 200 + (t - 5) * 20;
            engine.observe(
                Duration::from_secs(t),
                &[("fast", ops / 2 + 100), ("locked", ops / 2 - 100)],
            );
        }
        let s = &engine.status()[0];
        assert!(s.short_burn > 4.0, "short burn {}", s.short_burn);
        assert!(s.long_burn > 1.0, "long burn {}", s.long_burn);
        assert!(s.firing);
    }

    #[test]
    fn a_short_spike_does_not_fire_the_long_window() {
        let mut engine = SloEngine::new(vec![spec(
            "fastpath budget=0.10 short=10s long=1000s good=fast",
        )]);
        // A long clean history...
        engine.observe(Duration::from_secs(0), &[("fast", 0), ("locked", 0)]);
        engine.observe(
            Duration::from_secs(500),
            &[("fast", 100_000), ("locked", 0)],
        );
        // ...then a 10-second spike of pure slow path.
        engine.observe(
            Duration::from_secs(510),
            &[("fast", 100_000), ("locked", 1_000)],
        );
        let s = &engine.status()[0];
        assert!(s.short_burn > 1.0, "short window sees the spike");
        assert!(s.long_burn < 1.0, "long window absorbs it");
        assert!(!s.firing, "multi-window gating holds the page");
    }

    #[test]
    fn empty_engines_and_empty_windows_burn_nothing() {
        let mut engine = SloEngine::new(vec![spec("quiet budget=0.5 short=1s long=10s good=fast")]);
        assert!(!engine.is_empty());
        assert_eq!(engine.status()[0].short_burn, 0.0, "no samples yet");
        engine.observe(Duration::from_secs(1), &[]);
        let s = &engine.status()[0];
        assert_eq!((s.total, s.good), (0, 0));
        assert!(!s.firing, "zero traffic burns nothing");
        assert!(SloEngine::new(Vec::new()).is_empty());
    }

    #[test]
    fn the_sample_ring_stays_bounded() {
        let mut engine = SloEngine::new(vec![spec(
            "fastpath budget=0.10 short=20s long=60s good=fast",
        )]);
        // Simulate a 25ms cadence for 10 minutes: 24k ticks must
        // coalesce into ~one sample per short/20 = 1s granule, capped
        // further by the long-window trim.
        for tick in 0..24_000u64 {
            engine.observe(Duration::from_millis(tick * 25), &[("fast", tick)]);
        }
        let len = engine.series[0].samples.len();
        assert!(len < 80, "ring kept {len} samples");
        let s = &engine.status()[0];
        assert_eq!(s.total, 23_999);
    }
}
