//! Live HTTP routes for [`cso_metrics::MetricsServer`].
//!
//! [`watch_routes`] packages a [`Watchdog`] as two extra endpoints
//! served on the same port as `/metrics` (and, typically, next to
//! `cso_profile::profile_routes`):
//!
//! | route | content | body |
//! |---|---|---|
//! | `/health` | `application/json` | overall OK/DEGRADED/POISONED with per-check and per-SLO detail |
//! | `/alerts.json` | `application/json` | active violations plus the recent transition-event ring |
//!
//! The routes read the watchdog's shared state, so they keep serving
//! the last published verdicts even while an evaluation tick is in
//! flight — a scrape never blocks on an invariant closure.

use cso_metrics::Routes;

use crate::watchdog::Watchdog;

/// Builds the `/health` and `/alerts.json` route table over a
/// watchdog's shared state. The returned routes stay valid for the
/// watchdog's whole lifetime (they hold their own handle).
#[must_use]
pub fn watch_routes(watchdog: &Watchdog) -> Routes {
    let health = watchdog.shared();
    let alerts = watchdog.shared();
    Routes::new()
        .add("/health", move || {
            (
                "application/json".to_owned(),
                health.health_json().render_pretty(),
            )
        })
        .add("/alerts.json", move || {
            (
                "application/json".to_owned(),
                alerts.alerts_json().render_pretty(),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_metrics::Json;

    #[test]
    fn routes_cover_health_and_alerts() {
        let dog = Watchdog::builder().build();
        let routes = watch_routes(&dog);
        assert_eq!(routes.paths(), vec!["/health", "/alerts.json"]);
    }

    #[test]
    fn route_bodies_are_valid_json_with_the_published_schemas() {
        let mut dog = Watchdog::builder()
            .invariant(crate::invariant::Invariant::new("steady", || {
                crate::invariant::Verdict::Ok
            }))
            .build();
        dog.tick();
        let routes = watch_routes(&dog);
        let (ctype, body) = routes.lookup("/health").expect("route")();
        assert_eq!(ctype, "application/json");
        let health = Json::parse(&body).expect("valid json");
        assert_eq!(
            health.get("schema").unwrap().as_str(),
            Some("cso-health v1")
        );
        assert_eq!(health.get("status").unwrap().as_str(), Some("OK"));
        let (_, body) = routes.lookup("/alerts.json").expect("route")();
        let alerts = Json::parse(&body).expect("valid json");
        assert_eq!(
            alerts.get("schema").unwrap().as_str(),
            Some("cso-alerts v1")
        );
        assert_eq!(alerts.get("active").unwrap().as_arr(), Some(&[][..]));
    }
}
