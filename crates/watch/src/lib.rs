//! Online runtime verification for the cso workspace.
//!
//! The offline layers already check the paper's guarantees hard: the
//! linearizability checker replays histories, the model runtime
//! explores interleavings exhaustively, the analyzer audits traced
//! runs post-mortem. `cso-watch` moves a useful slice of that
//! checking *into* the running process: a background watchdog thread
//! continuously samples cheap online predicates over the live
//! structures and the profiling pipeline, debounces the racy reads,
//! and publishes a health verdict the moment a guarantee stops
//! holding — instead of a failed assertion three hours later in CI.
//!
//! Three pieces:
//!
//! - [`invariant`] — the catalogue of named checks: conservation
//!   (pushes − pops == size), the §4.4 bypass bound (≤ n−1), per-path
//!   step-budget latency ceilings, lease staleness, poison freedom,
//!   and lossless trace capture.
//! - [`slo`] — declarative objectives over the live per-path
//!   operation mix, evaluated with the classic multi-window burn
//!   rate so a brief spike alerts fast but never pages.
//! - [`watchdog`] — the evaluation loop: debounced severity per
//!   check, `cso_watch_*` gauges, a transition-event ring with
//!   optional JSONL export, and the state behind [`routes`]'s
//!   `/health` and `/alerts.json` endpoints.
//!
//! ```no_run
//! use std::sync::Arc;
//! use cso_metrics::{MetricsServer, Registry};
//! use cso_profile::{Harvester, profile_routes};
//! use cso_watch::{Invariant, SloSpec, Watchdog, watch_routes};
//!
//! let registry = Registry::new();
//! let harvester = Harvester::start();
//! let agg = harvester.aggregator();
//! let dog = Watchdog::builder()
//!     .invariant(Invariant::bypass_bound(&agg))
//!     .invariant(Invariant::poison_free(&agg))
//!     .invariant(Invariant::lossless_rings(&agg))
//!     .slos(SloSpec::parse("fastpath budget=0.25 short=30s long=300s good=fast,eliminated").unwrap())
//!     .aggregator(Arc::clone(&agg))
//!     .registry(&registry)
//!     .spawn();
//! let routes = profile_routes(agg).merge(watch_routes(&dog));
//! let server = MetricsServer::bind_with_routes(registry, "127.0.0.1:0", routes).unwrap();
//! println!("curl http://{}/health", server.addr());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod invariant;
pub mod routes;
pub mod slo;
pub mod watchdog;

pub use invariant::{Invariant, Verdict};
pub use routes::watch_routes;
pub use slo::{SloEngine, SloSpec, SloStatus};
pub use watchdog::{WatchConfig, Watchdog, WatchdogBuilder};
