//! The invariant catalogue: named, continuously evaluable checks.
//!
//! An [`Invariant`] pairs a metric-safe name with a closure producing
//! a [`Verdict`]. The constructors below cover the workspace's
//! structural guarantees — the ones the paper proves and the model
//! runtime checks exhaustively offline — re-expressed as cheap online
//! predicates over uncounted reads:
//!
//! | invariant | guarantee | feed |
//! |---|---|---|
//! | `conservation` | pushes − pops == size | caller-supplied closures |
//! | `bypass_bound` | §4.4: a raised FLAG is bypassed ≤ n−1 times | live aggregator bypass tracker |
//! | `path_ceiling` | per-path p99 stays under a step-budget-derived ceiling | live aggregator quantiles |
//! | `lease_staleness` | every registered proc heartbeats within its grace | [`cso_memory::Liveness`] |
//! | `poison_free` | no operation ever observed a poisoned record/lock | live aggregator event counts |
//! | `lossless_rings` | the harvester keeps the trace capture lossless | live aggregator + probe drop gauge |
//!
//! The reads are racy by design (the watchdog must never perturb the
//! structures it observes), so a verdict is a *sample*, not a proof:
//! the watchdog debounces transitions over consecutive ticks to
//! absorb in-flight transients like a push that incremented the
//! counter but has not yet landed.

use std::sync::Arc;
use std::time::Duration;

use cso_memory::Liveness;
use cso_profile::LiveAggregator;

/// The outcome of one invariant evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The invariant holds.
    Ok,
    /// The invariant is violated but the structure may still make
    /// progress — alert and keep serving.
    Degraded(String),
    /// The invariant is violated in a way that taints results — the
    /// structure's answers can no longer be trusted.
    Poisoned(String),
}

impl Verdict {
    /// Numeric severity, exported as the `cso_watch_*` gauge value:
    /// 0 = ok, 1 = degraded, 2 = poisoned.
    #[must_use]
    pub fn severity(&self) -> u8 {
        match self {
            Verdict::Ok => 0,
            Verdict::Degraded(_) => 1,
            Verdict::Poisoned(_) => 2,
        }
    }

    /// The violation message, if any.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Ok => None,
            Verdict::Degraded(r) | Verdict::Poisoned(r) => Some(r),
        }
    }

    /// `true` for [`Verdict::Ok`].
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// The status label used by `/health` and the JSONL export.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok => "OK",
            Verdict::Degraded(_) => "DEGRADED",
            Verdict::Poisoned(_) => "POISONED",
        }
    }

    /// Parses severity back into a label (for renderers holding only
    /// the exported number).
    #[must_use]
    pub fn label_of(severity: u8) -> &'static str {
        match severity {
            0 => "OK",
            1 => "DEGRADED",
            _ => "POISONED",
        }
    }
}

/// A named, continuously evaluable check.
pub struct Invariant {
    name: String,
    check: Box<dyn Fn() -> Verdict + Send>,
}

impl std::fmt::Debug for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish()
    }
}

impl Invariant {
    /// Wraps a closure as an invariant. The name is sanitized into the
    /// Prometheus charset (anything outside `[a-zA-Z0-9_:]` becomes
    /// `_`) because it is exported as the `cso_watch_<name>` gauge.
    pub fn new(name: &str, check: impl Fn() -> Verdict + Send + 'static) -> Invariant {
        let name = name
            .chars()
            .map(|c| match c {
                'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
                _ => '_',
            })
            .collect();
        Invariant {
            name,
            check: Box::new(check),
        }
    }

    /// The sanitized name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the check once.
    #[must_use]
    pub fn eval(&self) -> Verdict {
        (self.check)()
    }

    /// Conservation: `pushes − pops == size` (within `slack`). The
    /// three closures read the structure's own counters (uncounted
    /// atomics — the step audit stays exact); a persistent mismatch
    /// beyond `slack` means an operation was lost or duplicated,
    /// exactly the failure the Figure-1 help-after-CAS mutant plants.
    ///
    /// Two defenses keep the racy sampling honest under load:
    ///
    /// - the counters are read *twice*, bracketing the size read; if
    ///   they moved, operations were in flight and the sample is
    ///   inconclusive (`Ok`) — the watchdog ticks often enough that a
    ///   quiet moment always comes;
    /// - `slack` absorbs the bounded skew of updates in flight (a
    ///   thread between its counter bump and the size update), so set
    ///   it to the number of concurrent operations, typically `n`.
    ///
    /// A real leak survives quiesce and outgrows any slack, so
    /// detection is only *deferred* to the next calm tick, never lost.
    ///
    /// `size` is signed because a popper's book-keeping can outrun
    /// the pusher's, driving the sampled size transiently below zero
    /// near an empty structure.
    pub fn conservation(
        name: &str,
        slack: u64,
        pushes: impl Fn() -> u64 + Send + 'static,
        pops: impl Fn() -> u64 + Send + 'static,
        size: impl Fn() -> i64 + Send + 'static,
    ) -> Invariant {
        Invariant::new(name, move || {
            let (p1, o1) = (pushes(), pops());
            let s = size();
            let (p2, o2) = (pushes(), pops());
            if p1 != p2 || o1 != o2 {
                return Verdict::Ok; // operations in flight: inconclusive
            }
            let expected = p1 as i128 - o1 as i128;
            if (expected - i128::from(s)).unsigned_abs() <= u128::from(slack) {
                Verdict::Ok
            } else {
                Verdict::Degraded(format!(
                    "conservation leak: {p1} pushes - {o1} pops = {expected}, \
                     but size is {s} (slack {slack})"
                ))
            }
        })
    }

    /// §4.4 bypass bound: once a slow process raises its FLAG, at most
    /// n−1 other lock acquisitions may bypass it before the TURN
    /// booster forces its admission. The aggregator's streaming bypass
    /// tracker records the maximum observed; exceeding n−1 is a
    /// starvation-freedom violation.
    pub fn bypass_bound(aggregator: &Arc<LiveAggregator>) -> Invariant {
        let agg = Arc::clone(aggregator);
        Invariant::new("bypass_bound", move || {
            let snap = agg.snapshot();
            if snap.procs == 0 {
                return Verdict::Ok;
            }
            let bound = snap.procs - 1;
            if snap.max_bypass > bound {
                Verdict::Degraded(format!(
                    "bypass bound violated: a raised flag was bypassed {} times, bound is n-1 = {} for n = {}",
                    snap.max_bypass, bound, snap.procs
                ))
            } else {
                Verdict::Ok
            }
        })
    }

    /// Per-path latency ceiling: the path's live p99 must stay under
    /// `ceiling_ns`. Ceilings derive from the step budgets (Theorem 1:
    /// six shared accesses solo) times a machine-calibrated
    /// ns-per-access factor; a breach means the path is doing more
    /// work than its budget allows (convoy, livelock, lost wake-up).
    pub fn path_ceiling(
        aggregator: &Arc<LiveAggregator>,
        path: &'static str,
        ceiling_ns: u64,
    ) -> Invariant {
        let agg = Arc::clone(aggregator);
        Invariant::new(&format!("path_ceiling_{path}"), move || {
            let snap = agg.snapshot();
            match snap.per_path.iter().find(|(label, _)| *label == path) {
                Some((_, hist)) if hist.p99_ns > ceiling_ns => Verdict::Degraded(format!(
                    "path {path} p99 {}ns exceeds its {}ns step-budget ceiling",
                    hist.p99_ns, ceiling_ns
                )),
                _ => Verdict::Ok,
            }
        })
    }

    /// Lease staleness: every proc still registered as active must
    /// have heartbeat within `grace`. A stale lease means a crashed or
    /// wedged process may be holding the lock or a publication slot,
    /// and the recovery path (orphan reclamation, lock succession)
    /// should have fired.
    pub fn lease_staleness(liveness: &Arc<Liveness>, grace: Duration) -> Invariant {
        let live = Arc::clone(liveness);
        Invariant::new("lease_staleness", move || {
            let stale: Vec<usize> = (0..live.n())
                .filter(|&p| live.is_active(p) && live.suspect(p, grace))
                .collect();
            if stale.is_empty() {
                Verdict::Ok
            } else {
                Verdict::Degraded(format!(
                    "{} proc(s) hold stale leases (no heartbeat within {:?}): {:?}",
                    stale.len(),
                    grace,
                    stale
                ))
            }
        })
    }

    /// Poison freedom: no traced operation ever completed by observing
    /// a poisoned record or lock. One poisoned completion taints the
    /// results — this is the only catalogue entry that returns
    /// [`Verdict::Poisoned`].
    pub fn poison_free(aggregator: &Arc<LiveAggregator>) -> Invariant {
        let agg = Arc::clone(aggregator);
        Invariant::new("poison_free", move || {
            let snap = agg.snapshot();
            let poisoned: u64 = snap
                .event_counts
                .iter()
                .filter(|(name, _)| name == "slow-poisoned" || name == "record-poisoned")
                .map(|&(_, n)| n)
                .sum();
            if poisoned == 0 {
                Verdict::Ok
            } else {
                Verdict::Poisoned(format!(
                    "{poisoned} operation(s) observed a poisoned record or lock"
                ))
            }
        })
    }

    /// Lossless capture: the harvester must drain every per-thread
    /// ring before it wraps. Loss does not make the *structures*
    /// wrong, but it silently blinds every other aggregator-fed
    /// invariant, so it degrades health rather than passing quietly.
    ///
    /// The alarm keys on the harvester's cumulative `lost` counter —
    /// the durable accounting of overwritten-before-drain events. The
    /// live drop *gauge* is deliberately only context in the reason:
    /// read concurrently with active writers it can report large
    /// transient values that the next harvest beat reconciles to zero
    /// loss, and a watchdog must not alarm on a racy read when a
    /// durable counter carries the same fact one beat later.
    pub fn lossless_rings(aggregator: &Arc<LiveAggregator>) -> Invariant {
        let agg = Arc::clone(aggregator);
        Invariant::new("lossless_rings", move || {
            let snap = agg.snapshot();
            if snap.lost == 0 {
                Verdict::Ok
            } else {
                Verdict::Degraded(format!(
                    "trace capture is lossy: {} event(s) lost to ring wrap (live drop gauge {})",
                    snap.lost, snap.dropped_gauge
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    #[test]
    fn severity_orders_the_verdicts() {
        assert_eq!(Verdict::Ok.severity(), 0);
        assert_eq!(Verdict::Degraded(String::new()).severity(), 1);
        assert_eq!(Verdict::Poisoned(String::new()).severity(), 2);
        assert_eq!(Verdict::label_of(0), "OK");
        assert_eq!(Verdict::label_of(1), "DEGRADED");
        assert_eq!(Verdict::label_of(2), "POISONED");
        assert!(Verdict::Ok.reason().is_none());
        assert_eq!(
            Verdict::Degraded("x".into()).reason(),
            Some("x"),
            "reason surfaces the message"
        );
    }

    #[test]
    fn names_are_sanitized_into_the_metric_charset() {
        let inv = Invariant::new("per-path p99 (fast)", || Verdict::Ok);
        assert_eq!(inv.name(), "per_path_p99__fast_");
    }

    #[test]
    fn conservation_flags_a_leak_and_clears_on_repair() {
        let pushes = Arc::new(AtomicU64::new(0));
        let pops = Arc::new(AtomicU64::new(0));
        let size = Arc::new(AtomicI64::new(0));
        let inv = {
            let (p, o, s) = (Arc::clone(&pushes), Arc::clone(&pops), Arc::clone(&size));
            Invariant::conservation(
                "conservation",
                0,
                move || p.load(Ordering::Relaxed),
                move || o.load(Ordering::Relaxed),
                move || s.load(Ordering::Relaxed),
            )
        };
        assert!(inv.eval().is_ok(), "empty structure conserves");
        pushes.store(100, Ordering::Relaxed);
        pops.store(40, Ordering::Relaxed);
        size.store(60, Ordering::Relaxed);
        assert!(inv.eval().is_ok(), "balanced books conserve");
        size.store(59, Ordering::Relaxed);
        let v = inv.eval();
        assert_eq!(v.severity(), 1);
        assert!(v.reason().unwrap().contains("conservation leak"), "{v:?}");
        size.store(60, Ordering::Relaxed);
        assert!(inv.eval().is_ok(), "repair clears the verdict");
    }

    #[test]
    fn conservation_slack_and_inflight_reads_absorb_transients() {
        let pushes = Arc::new(AtomicU64::new(10));
        let pops = Arc::new(AtomicU64::new(0));
        let size = Arc::new(AtomicI64::new(8));
        // slack 2 tolerates two updates in flight...
        let inv = {
            let (p, o, s) = (Arc::clone(&pushes), Arc::clone(&pops), Arc::clone(&size));
            Invariant::conservation(
                "conservation",
                2,
                move || p.load(Ordering::Relaxed),
                move || o.load(Ordering::Relaxed),
                move || s.load(Ordering::Relaxed),
            )
        };
        assert!(inv.eval().is_ok(), "skew of 2 is within slack");
        size.store(7, Ordering::Relaxed);
        assert_eq!(inv.eval().severity(), 1, "skew of 3 breaches");
        // ...and a moving counter makes the sample inconclusive: the
        // size read is bracketed by two counter reads, so a counter
        // that changes between them yields Ok.
        let moving = {
            let p = Arc::clone(&pushes);
            let (o, s) = (Arc::clone(&pops), Arc::clone(&size));
            Invariant::conservation(
                "conservation",
                0,
                move || p.fetch_add(1, Ordering::Relaxed),
                move || o.load(Ordering::Relaxed),
                move || s.load(Ordering::Relaxed),
            )
        };
        assert!(moving.eval().is_ok(), "in-flight sample is inconclusive");
    }

    #[test]
    fn bypass_bound_is_quiet_on_an_empty_aggregator() {
        let agg = Arc::new(LiveAggregator::new());
        assert!(Invariant::bypass_bound(&agg).eval().is_ok());
        assert!(Invariant::poison_free(&agg).eval().is_ok());
        assert!(Invariant::lossless_rings(&agg).eval().is_ok());
        assert!(Invariant::path_ceiling(&agg, "fast", 1_000).eval().is_ok());
    }

    #[test]
    fn lease_staleness_trips_only_for_active_silent_procs() {
        let live = Liveness::new(2);
        live.announce(0);
        live.beat(0);
        let inv = Invariant::lease_staleness(&live, Duration::from_secs(3600));
        assert!(inv.eval().is_ok(), "fresh heartbeat within a huge grace");
        let strict = Invariant::lease_staleness(&live, Duration::from_nanos(0));
        std::thread::sleep(Duration::from_millis(2));
        let v = strict.eval();
        assert_eq!(v.severity(), 1, "zero grace suspects proc 0: {v:?}");
        live.exit(0);
        assert!(strict.eval().is_ok(), "exited procs are nobody's problem");
    }
}
