//! The watchdog: a background thread that turns the invariant
//! catalogue and the SLO engine into a live health verdict.
//!
//! Every `cadence` the watchdog evaluates each [`Invariant`], folds
//! the aggregator's per-path counts into the [`SloEngine`], and
//! publishes the result three ways:
//!
//! - **gauges** — `cso_watch_<check>` carries the debounced severity
//!   (0 ok / 1 degraded / 2 poisoned), `cso_watch_health` the overall
//!   maximum, `cso_watch_slo_<name>_firing` and the two burn-rate
//!   gauges the SLO state;
//! - **events** — every debounced transition appends a structured
//!   record to an in-memory ring (served by `/alerts.json`) and, when
//!   configured, a JSONL file;
//! - **snapshots** — [`Watchdog::health_json`] / `alerts_json` back
//!   the `/health` and `/alerts.json` routes.
//!
//! ## Debounce
//!
//! The watchdog reads racy, uncounted state on purpose — it must
//! never perturb the structures it observes — so a single breaching
//! sample may be an in-flight transient (a push that bumped its
//! counter but has not yet landed). Escalations therefore require
//! `debounce` *consecutive* breaching ticks at the same severity
//! before they publish; recoveries publish on the first clean sample,
//! so a real repair clears immediately. The planted-violation tests
//! in `tests/mutation_detection.rs` pin both directions: a persistent
//! mutant is flagged within a bounded number of ticks, and a clean
//! concurrent workload produces zero transitions.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cso_metrics::{Gauge, Json, Registry};
use cso_profile::LiveAggregator;

use crate::invariant::{Invariant, Verdict};
use crate::slo::{SloEngine, SloSpec, SloStatus};

/// Watchdog tuning knobs.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Evaluation period for the background thread.
    pub cadence: Duration,
    /// Consecutive breaching ticks required before an escalation
    /// publishes (1 = trust every sample).
    pub debounce: u32,
    /// When set, every transition event is appended to this file as
    /// one JSON object per line.
    pub jsonl_path: Option<PathBuf>,
    /// Transition events retained in memory for `/alerts.json`.
    pub recent_cap: usize,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            cadence: Duration::from_millis(25),
            debounce: 2,
            jsonl_path: None,
            recent_cap: 256,
        }
    }
}

/// Builder for a [`Watchdog`].
#[derive(Debug, Default)]
pub struct WatchdogBuilder {
    config: WatchConfig,
    invariants: Vec<Invariant>,
    specs: Vec<SloSpec>,
    aggregator: Option<Arc<LiveAggregator>>,
    registry: Option<Registry>,
}

impl WatchdogBuilder {
    /// Adds one invariant to the catalogue under watch.
    #[must_use]
    pub fn invariant(mut self, invariant: Invariant) -> WatchdogBuilder {
        self.invariants.push(invariant);
        self
    }

    /// Adds SLO objectives (parse them with [`SloSpec::parse`]).
    #[must_use]
    pub fn slos(mut self, specs: Vec<SloSpec>) -> WatchdogBuilder {
        self.specs.extend(specs);
        self
    }

    /// Attaches the live aggregator whose per-path counts feed the
    /// SLO engine. (Aggregator-fed invariants capture their own
    /// handle; this one is only for SLOs.)
    #[must_use]
    pub fn aggregator(mut self, aggregator: Arc<LiveAggregator>) -> WatchdogBuilder {
        self.aggregator = Some(aggregator);
        self
    }

    /// Attaches a metrics registry; severity and burn gauges are
    /// registered eagerly so a scrape sees every check at 0 before
    /// anything breaks.
    #[must_use]
    pub fn registry(mut self, registry: &Registry) -> WatchdogBuilder {
        self.registry = Some(registry.clone());
        self
    }

    /// Overrides the evaluation cadence.
    #[must_use]
    pub fn cadence(mut self, cadence: Duration) -> WatchdogBuilder {
        self.config.cadence = cadence;
        self
    }

    /// Overrides the escalation debounce.
    #[must_use]
    pub fn debounce(mut self, ticks: u32) -> WatchdogBuilder {
        self.config.debounce = ticks.max(1);
        self
    }

    /// Enables the JSONL transition-event export.
    #[must_use]
    pub fn jsonl(mut self, path: impl Into<PathBuf>) -> WatchdogBuilder {
        self.config.jsonl_path = Some(path.into());
        self
    }

    /// Builds without spawning: the caller drives evaluation with
    /// [`Watchdog::tick`]. Deterministic, for tests.
    #[must_use]
    pub fn build(self) -> Watchdog {
        let (engine, shared) = self.assemble();
        Watchdog {
            shared,
            engine: Some(engine),
            thread: None,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Builds and spawns the background evaluation thread.
    #[must_use]
    pub fn spawn(self) -> Watchdog {
        let cadence = self.config.cadence;
        let (mut engine, shared) = self.assemble();
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cso-watch".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    engine.tick(&thread_shared);
                    std::thread::sleep(cadence);
                }
            })
            .expect("spawn cso-watch thread");
        Watchdog {
            shared,
            engine: None,
            thread: Some(handle),
            stop,
        }
    }

    fn assemble(self) -> (Engine, Arc<WatchShared>) {
        let slo = SloEngine::new(self.specs);
        let checks: Vec<CheckState> = self
            .invariants
            .iter()
            .map(|inv| CheckState {
                name: inv.name().to_owned(),
                severity: 0,
                reason: String::new(),
                candidate: 0,
                streak: 0,
            })
            .collect();
        let gauges = self.registry.as_ref().map(|reg| {
            let per_check = checks
                .iter()
                .map(|c| {
                    let g = reg.gauge(&format!("cso_watch_{}", c.name));
                    g.set(0.0);
                    g
                })
                .collect();
            let health = reg.gauge("cso_watch_health");
            health.set(0.0);
            Gauges {
                per_check,
                health,
                registry: reg.clone(),
            }
        });
        let shared = Arc::new(WatchShared {
            start: Instant::now(),
            inner: Mutex::new(WatchInner {
                checks,
                slos: Vec::new(),
                events: VecDeque::new(),
                ticks: 0,
                transitions: 0,
                recent_cap: self.config.recent_cap.max(1),
            }),
        });
        let engine = Engine {
            invariants: self.invariants,
            slo,
            slo_firing: Vec::new(),
            aggregator: self.aggregator,
            gauges,
            debounce: self.config.debounce.max(1),
            jsonl_path: self.config.jsonl_path,
        };
        (engine, shared)
    }
}

/// Debounced state of one check, as published to `/health`.
#[derive(Debug, Clone)]
struct CheckState {
    name: String,
    severity: u8,
    reason: String,
    /// Severity the raw samples are currently arguing for.
    candidate: u8,
    /// Consecutive ticks the candidate has held.
    streak: u32,
}

struct Gauges {
    per_check: Vec<Gauge>,
    health: Gauge,
    registry: Registry,
}

struct WatchInner {
    checks: Vec<CheckState>,
    slos: Vec<SloStatus>,
    events: VecDeque<Json>,
    ticks: u64,
    transitions: u64,
    recent_cap: usize,
}

/// State shared between the evaluation engine and the HTTP routes.
pub struct WatchShared {
    start: Instant,
    inner: Mutex<WatchInner>,
}

/// The evaluation engine: owns the (non-`Sync`) invariants, runs on
/// whichever thread drives it.
struct Engine {
    invariants: Vec<Invariant>,
    slo: SloEngine,
    slo_firing: Vec<bool>,
    aggregator: Option<Arc<LiveAggregator>>,
    gauges: Option<Gauges>,
    debounce: u32,
    jsonl_path: Option<PathBuf>,
}

impl Engine {
    fn tick(&mut self, shared: &WatchShared) {
        let t = shared.start.elapsed();
        let verdicts: Vec<Verdict> = self.invariants.iter().map(Invariant::eval).collect();

        // Fold per-path counts into the SLO engine, then evaluate.
        if !self.slo.is_empty() {
            if let Some(agg) = &self.aggregator {
                let snap = agg.snapshot();
                let counts: Vec<(&str, u64)> = snap
                    .per_path
                    .iter()
                    .map(|&(label, hist)| (label, hist.count))
                    .collect();
                self.slo.observe(t, &counts);
            }
        }
        let slo_status = self.slo.status();
        self.slo_firing.resize(slo_status.len(), false);

        let mut events: Vec<Json> = Vec::new();
        let mut inner = shared
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.ticks += 1;

        for (i, verdict) in verdicts.iter().enumerate() {
            let check = &mut inner.checks[i];
            let raw = verdict.severity();
            let published = check.severity;
            let transition = if raw == published {
                check.streak = 0;
                check.candidate = published;
                // Keep the freshest reason while a violation persists.
                if let Some(reason) = verdict.reason() {
                    check.reason = reason.to_owned();
                }
                false
            } else if raw < published {
                // Recovery: trust the first clean(er) sample.
                true
            } else {
                // Escalation: demand `debounce` consecutive samples.
                if check.candidate == raw {
                    check.streak += 1;
                } else {
                    check.candidate = raw;
                    check.streak = 1;
                }
                check.streak >= self.debounce
            };
            if transition {
                let from = check.severity;
                check.severity = raw;
                check.candidate = raw;
                check.streak = 0;
                check.reason = verdict.reason().unwrap_or("").to_owned();
                events.push(
                    Json::obj()
                        .field("t_ms", t.as_millis() as u64)
                        .field("kind", "invariant")
                        .field("check", check.name.clone())
                        .field("from", Verdict::label_of(from))
                        .field("to", Verdict::label_of(raw))
                        .field("reason", check.reason.clone()),
                );
            }
            if let Some(gauges) = &self.gauges {
                gauges.per_check[i].set(f64::from(inner.checks[i].severity));
            }
        }

        // SLO firing state transitions immediately: the engine's long
        // window already is the debounce.
        for (i, status) in slo_status.iter().enumerate() {
            if status.firing != self.slo_firing[i] {
                self.slo_firing[i] = status.firing;
                events.push(
                    Json::obj()
                        .field("t_ms", t.as_millis() as u64)
                        .field("kind", "slo")
                        .field("check", status.name.clone())
                        .field("from", if status.firing { "ok" } else { "firing" })
                        .field("to", if status.firing { "firing" } else { "ok" })
                        .field(
                            "reason",
                            format!(
                                "burn {:.2}x short / {:.2}x long of a {} budget",
                                status.short_burn, status.long_burn, status.budget
                            ),
                        ),
                );
            }
            if let Some(gauges) = &self.gauges {
                let name = &status.name;
                gauges
                    .registry
                    .gauge(&format!("cso_watch_slo_{name}_firing"))
                    .set(f64::from(u8::from(status.firing)));
                gauges
                    .registry
                    .gauge(&format!("cso_watch_slo_{name}_burn_short"))
                    .set(status.short_burn);
                gauges
                    .registry
                    .gauge(&format!("cso_watch_slo_{name}_burn_long"))
                    .set(status.long_burn);
            }
        }
        inner.slos = slo_status;

        let health = overall_severity(&inner);
        if let Some(gauges) = &self.gauges {
            gauges.health.set(f64::from(health));
        }

        inner.transitions += events.len() as u64;
        for event in &events {
            if inner.events.len() >= inner.recent_cap {
                inner.events.pop_front();
            }
            inner.events.push_back(event.clone());
        }
        drop(inner);

        // The JSONL export is best-effort: a full disk must never
        // take the watchdog (or its host process) down with it.
        if let Some(path) = &self.jsonl_path {
            if !events.is_empty() {
                let _ = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| {
                        for event in &events {
                            writeln!(f, "{}", event.render())?;
                        }
                        Ok(())
                    });
            }
        }
    }
}

/// Max published severity across checks, with any firing SLO counting
/// as at least degraded.
fn overall_severity(inner: &WatchInner) -> u8 {
    let checks = inner.checks.iter().map(|c| c.severity).max().unwrap_or(0);
    let slo = u8::from(inner.slos.iter().any(|s| s.firing));
    checks.max(slo)
}

impl WatchShared {
    /// The `/health` document: overall status plus every check and
    /// SLO in its current state.
    pub fn health_json(&self) -> Json {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let severity = overall_severity(&inner);
        let mut reasons = Vec::new();
        let mut checks = Vec::new();
        for check in &inner.checks {
            let mut obj = Json::obj()
                .field("check", check.name.clone())
                .field("status", Verdict::label_of(check.severity))
                .field("severity", u64::from(check.severity));
            if check.severity > 0 {
                obj = obj.field("reason", check.reason.clone());
                reasons.push(Json::Str(format!("{}: {}", check.name, check.reason)));
            }
            checks.push(obj);
        }
        let mut slos = Vec::new();
        for slo in &inner.slos {
            if slo.firing {
                reasons.push(Json::Str(format!(
                    "slo {}: burning {:.2}x short / {:.2}x long",
                    slo.name, slo.short_burn, slo.long_burn
                )));
            }
            slos.push(slo_json(slo));
        }
        Json::obj()
            .field("schema", "cso-health v1")
            .field("status", Verdict::label_of(severity))
            .field("severity", u64::from(severity))
            .field("uptime_ms", self.start.elapsed().as_millis() as u64)
            .field("ticks", inner.ticks)
            .field("reasons", Json::Arr(reasons))
            .field("checks", Json::Arr(checks))
            .field("slos", Json::Arr(slos))
    }

    /// The `/alerts.json` document: currently-active violations plus
    /// the recent transition-event ring.
    pub fn alerts_json(&self) -> Json {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut active = Vec::new();
        for check in &inner.checks {
            if check.severity > 0 {
                active.push(
                    Json::obj()
                        .field("kind", "invariant")
                        .field("check", check.name.clone())
                        .field("status", Verdict::label_of(check.severity))
                        .field("reason", check.reason.clone()),
                );
            }
        }
        for slo in &inner.slos {
            if slo.firing {
                active.push(
                    Json::obj()
                        .field("kind", "slo")
                        .field("check", slo.name.clone())
                        .field("status", "DEGRADED")
                        .field(
                            "reason",
                            format!(
                                "burning {:.2}x short / {:.2}x long of a {} budget",
                                slo.short_burn, slo.long_burn, slo.budget
                            ),
                        ),
                );
            }
        }
        Json::obj()
            .field("schema", "cso-alerts v1")
            .field("status", Verdict::label_of(overall_severity(&inner)))
            .field("transitions", inner.transitions)
            .field("active", Json::Arr(active))
            .field("recent", Json::Arr(inner.events.iter().cloned().collect()))
    }
}

fn slo_json(slo: &SloStatus) -> Json {
    Json::obj()
        .field("name", slo.name.clone())
        .field("budget", slo.budget)
        .field("short_burn", slo.short_burn)
        .field("long_burn", slo.long_burn)
        .field("firing", slo.firing)
        .field("total_ops", slo.total)
        .field("good_ops", slo.good)
}

/// Handle to a running (or manually driven) watchdog.
pub struct Watchdog {
    shared: Arc<WatchShared>,
    /// Present only in manual mode; the spawned thread owns it
    /// otherwise.
    engine: Option<Engine>,
    thread: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Watchdog {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> WatchdogBuilder {
        WatchdogBuilder::default()
    }

    /// Runs one evaluation pass. Returns `false` (and does nothing)
    /// when the watchdog was spawned — the background thread drives
    /// it then.
    pub fn tick(&mut self) -> bool {
        match &mut self.engine {
            Some(engine) => {
                engine.tick(&self.shared);
                true
            }
            None => false,
        }
    }

    /// The state handle the HTTP routes read.
    #[must_use]
    pub fn shared(&self) -> Arc<WatchShared> {
        Arc::clone(&self.shared)
    }

    /// Current `/health` document.
    #[must_use]
    pub fn health_json(&self) -> Json {
        self.shared.health_json()
    }

    /// Current `/alerts.json` document.
    #[must_use]
    pub fn alerts_json(&self) -> Json {
        self.shared.alerts_json()
    }

    /// Overall status label (`OK` / `DEGRADED` / `POISONED`).
    #[must_use]
    pub fn status(&self) -> &'static str {
        let inner = self
            .shared
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Verdict::label_of(overall_severity(&inner))
    }

    /// Total debounced transitions since start.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .transitions
    }

    /// Stops the background thread (no-op in manual mode).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn flip_invariant(breach: &Arc<AtomicU64>) -> Invariant {
        let breach = Arc::clone(breach);
        Invariant::new("flip", move || match breach.load(Ordering::Relaxed) {
            0 => Verdict::Ok,
            1 => Verdict::Degraded("planted".into()),
            _ => Verdict::Poisoned("planted hard".into()),
        })
    }

    #[test]
    fn escalations_debounce_and_recoveries_clear_immediately() {
        let breach = Arc::new(AtomicU64::new(0));
        let mut dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .debounce(3)
            .build();
        assert!(dog.tick());
        assert_eq!(dog.status(), "OK");

        // One transient breaching sample: absorbed.
        breach.store(1, Ordering::Relaxed);
        dog.tick();
        breach.store(0, Ordering::Relaxed);
        dog.tick();
        assert_eq!(dog.status(), "OK");
        assert_eq!(dog.transitions(), 0, "transient produced no event");

        // A persistent breach crosses the debounce.
        breach.store(1, Ordering::Relaxed);
        dog.tick();
        dog.tick();
        assert_eq!(dog.status(), "OK", "two ticks, debounce is three");
        dog.tick();
        assert_eq!(dog.status(), "DEGRADED");
        assert_eq!(dog.transitions(), 1);

        // Recovery is immediate.
        breach.store(0, Ordering::Relaxed);
        dog.tick();
        assert_eq!(dog.status(), "OK");
        assert_eq!(dog.transitions(), 2);
    }

    #[test]
    fn poisoned_outranks_degraded_in_overall_health() {
        let breach = Arc::new(AtomicU64::new(2));
        let mut dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .invariant(Invariant::new("steady", || Verdict::Ok))
            .debounce(1)
            .build();
        dog.tick();
        assert_eq!(dog.status(), "POISONED");
        let health = dog.health_json();
        assert_eq!(health.get("status").unwrap().as_str(), Some("POISONED"));
        assert_eq!(
            health.get("schema").unwrap().as_str(),
            Some("cso-health v1")
        );
        let checks = health.get("checks").unwrap().as_arr().unwrap();
        assert_eq!(checks.len(), 2);
        let reasons = health.get("reasons").unwrap().as_arr().unwrap();
        assert_eq!(reasons.len(), 1, "only the breached check has a reason");
    }

    #[test]
    fn transitions_land_in_the_event_ring_and_gauges() {
        let registry = Registry::new();
        let breach = Arc::new(AtomicU64::new(0));
        let mut dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .registry(&registry)
            .debounce(1)
            .build();
        dog.tick();
        let snap = registry.snapshot();
        let gauge = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        assert_eq!(gauge("cso_watch_flip"), Some(0.0));
        assert_eq!(gauge("cso_watch_health"), Some(0.0));

        breach.store(1, Ordering::Relaxed);
        dog.tick();
        let snap = registry.snapshot();
        let gauge = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        assert_eq!(gauge("cso_watch_flip"), Some(1.0));
        assert_eq!(gauge("cso_watch_health"), Some(1.0));

        let alerts = dog.alerts_json();
        assert_eq!(
            alerts.get("schema").unwrap().as_str(),
            Some("cso-alerts v1")
        );
        let active = alerts.get("active").unwrap().as_arr().unwrap();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].get("check").unwrap().as_str(), Some("flip"));
        let recent = alerts.get("recent").unwrap().as_arr().unwrap();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].get("to").unwrap().as_str(), Some("DEGRADED"));
        assert_eq!(recent[0].get("reason").unwrap().as_str(), Some("planted"));
    }

    #[test]
    fn the_event_ring_is_bounded() {
        let breach = Arc::new(AtomicU64::new(0));
        let mut dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .debounce(1)
            .build();
        // recent_cap defaults to 256; flap far past it.
        for round in 0..300 {
            breach.store(u64::from(round % 2 == 0), Ordering::Relaxed);
            dog.tick();
        }
        let recent = dog.alerts_json();
        let ring = recent.get("recent").unwrap().as_arr().unwrap().len();
        assert!(ring <= 256, "ring kept {ring}");
        assert_eq!(dog.transitions(), 300, "every flap transitioned");
    }

    #[test]
    fn jsonl_export_appends_one_parseable_object_per_transition() {
        let dir = std::env::temp_dir().join(format!(
            "cso-watch-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let breach = Arc::new(AtomicU64::new(0));
        let mut dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .debounce(1)
            .jsonl(&path)
            .build();
        dog.tick();
        breach.store(1, Ordering::Relaxed);
        dog.tick();
        breach.store(0, Ordering::Relaxed);
        dog.tick();
        let text = std::fs::read_to_string(&path).expect("jsonl written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        for line in lines {
            let event = Json::parse(line).expect("each line parses alone");
            assert_eq!(event.get("kind").unwrap().as_str(), Some("invariant"));
            assert!(event.get("t_ms").unwrap().as_u64().is_some());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn a_spawned_watchdog_evaluates_on_its_own() {
        let breach = Arc::new(AtomicU64::new(1));
        let dog = Watchdog::builder()
            .invariant(flip_invariant(&breach))
            .cadence(Duration::from_millis(1))
            .debounce(2)
            .spawn();
        let deadline = Instant::now() + Duration::from_secs(5);
        while dog.status() == "OK" && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(dog.status(), "DEGRADED", "background thread detected it");
        dog.stop();
    }
}
