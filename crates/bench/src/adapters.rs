//! Uniform adapters over every stack/queue implementation, so the
//! experiment binaries can sweep a whole suite with one driver.

use cso_core::CsConfig;
use cso_locks::{OsLock, TasLock, TicketLock};
use cso_queue::{CsQueue, EnqueueOutcome, LockQueue, MsQueue, NonBlockingQueue};
use cso_stack::{
    CsStack, EliminationStack, LockStack, NonBlockingStack, PushOutcome, TreiberStack,
};

/// A stack under benchmark: push returns `false` on `Full` (unbounded
/// stacks always return `true`).
pub trait BenchStack: Send + Sync {
    /// Implementation name shown in tables.
    fn name(&self) -> &'static str;

    /// Pushes on behalf of process `proc`.
    fn push(&self, proc: usize, value: u32) -> bool;

    /// Pops on behalf of process `proc`.
    fn pop(&self, proc: usize) -> Option<u32>;

    /// Fraction of operations that took a lock path, if the
    /// implementation distinguishes paths.
    fn locked_fraction(&self) -> Option<f64> {
        None
    }
}

/// The contention-sensitive stack (Figure 3), paper configuration.
pub struct CsAdapter(pub CsStack<u32>);

impl BenchStack for CsAdapter {
    fn name(&self) -> &'static str {
        "cs-stack"
    }

    fn push(&self, proc: usize, value: u32) -> bool {
        self.0.push(proc, value) == PushOutcome::Pushed
    }

    fn pop(&self, proc: usize) -> Option<u32> {
        self.0.pop(proc).into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(self.0.path_stats().locked_fraction())
    }
}

/// The non-blocking stack (Figure 2).
pub struct NbAdapter(pub NonBlockingStack<u32>);

impl BenchStack for NbAdapter {
    fn name(&self) -> &'static str {
        "nb-stack"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value) == PushOutcome::Pushed
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop().into_option()
    }
}

/// Treiber's lock-free stack.
pub struct TreiberAdapter(pub TreiberStack<u32>);

impl BenchStack for TreiberAdapter {
    fn name(&self) -> &'static str {
        "treiber"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value);
        true
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop()
    }
}

/// Elimination back-off stack.
pub struct EliminationAdapter(pub EliminationStack<u32>);

impl BenchStack for EliminationAdapter {
    fn name(&self) -> &'static str {
        "elimination"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value);
        true
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop()
    }
}

/// Everything under one TAS lock.
pub struct LockTasAdapter(pub LockStack<u32, TasLock>);

impl BenchStack for LockTasAdapter {
    fn name(&self) -> &'static str {
        "lock(tas)"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value) == PushOutcome::Pushed
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop().into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Everything under one ticket lock.
pub struct LockTicketAdapter(pub LockStack<u32, TicketLock>);

impl BenchStack for LockTicketAdapter {
    fn name(&self) -> &'static str {
        "lock(ticket)"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value) == PushOutcome::Pushed
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop().into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Everything under one OS (parking_lot) mutex.
pub struct LockOsAdapter(pub LockStack<u32, OsLock>);

impl BenchStack for LockOsAdapter {
    fn name(&self) -> &'static str {
        "lock(os)"
    }

    fn push(&self, _proc: usize, value: u32) -> bool {
        self.0.push(value) == PushOutcome::Pushed
    }

    fn pop(&self, _proc: usize) -> Option<u32> {
        self.0.pop().into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// A `CsStack` with an explicit ablation config (experiment E8).
pub struct CsConfigAdapter {
    label: &'static str,
    stack: CsStack<u32>,
}

impl CsConfigAdapter {
    /// Builds a stack under `config` with the given display label.
    #[must_use]
    pub fn new(
        label: &'static str,
        capacity: usize,
        n: usize,
        config: CsConfig,
    ) -> CsConfigAdapter {
        CsConfigAdapter {
            label,
            stack: CsStack::with_config(capacity, TasLock::new(), n, config),
        }
    }
}

impl BenchStack for CsConfigAdapter {
    fn name(&self) -> &'static str {
        self.label
    }

    fn push(&self, proc: usize, value: u32) -> bool {
        self.stack.push(proc, value) == PushOutcome::Pushed
    }

    fn pop(&self, proc: usize) -> Option<u32> {
        self.stack.pop(proc).into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(self.stack.path_stats().locked_fraction())
    }
}

/// The standard stack suite swept by E3/E5: the paper's two lock-free
/// constructions, three fully locked baselines, Treiber and the
/// elimination stack.
#[must_use]
pub fn stack_suite(capacity: usize, n: usize) -> Vec<Box<dyn BenchStack>> {
    vec![
        Box::new(CsAdapter(CsStack::new(capacity, n))),
        Box::new(NbAdapter(NonBlockingStack::new(capacity))),
        Box::new(TreiberAdapter(TreiberStack::new())),
        Box::new(EliminationAdapter(EliminationStack::new(2))),
        Box::new(LockTasAdapter(LockStack::new(capacity))),
        Box::new(LockTicketAdapter(LockStack::with_lock(
            capacity,
            TicketLock::new(),
        ))),
        Box::new(LockOsAdapter(LockStack::with_lock(capacity, OsLock::new()))),
    ]
}

/// A queue under benchmark.
pub trait BenchQueue: Send + Sync {
    /// Implementation name shown in tables.
    fn name(&self) -> &'static str;

    /// Enqueues on behalf of process `proc`.
    fn enqueue(&self, proc: usize, value: u32) -> bool;

    /// Dequeues on behalf of process `proc`.
    fn dequeue(&self, proc: usize) -> Option<u32>;
}

/// The contention-sensitive queue.
pub struct CsQueueAdapter(pub CsQueue<u32>);

impl BenchQueue for CsQueueAdapter {
    fn name(&self) -> &'static str {
        "cs-queue"
    }

    fn enqueue(&self, proc: usize, value: u32) -> bool {
        self.0.enqueue(proc, value) == EnqueueOutcome::Enqueued
    }

    fn dequeue(&self, proc: usize) -> Option<u32> {
        self.0.dequeue(proc).into_option()
    }
}

/// The non-blocking queue.
pub struct NbQueueAdapter(pub NonBlockingQueue<u32>);

impl BenchQueue for NbQueueAdapter {
    fn name(&self) -> &'static str {
        "nb-queue"
    }

    fn enqueue(&self, _proc: usize, value: u32) -> bool {
        self.0.enqueue(value) == EnqueueOutcome::Enqueued
    }

    fn dequeue(&self, _proc: usize) -> Option<u32> {
        self.0.dequeue().into_option()
    }
}

/// Michael–Scott queue.
pub struct MsQueueAdapter(pub MsQueue<u32>);

impl BenchQueue for MsQueueAdapter {
    fn name(&self) -> &'static str {
        "ms-queue"
    }

    fn enqueue(&self, _proc: usize, value: u32) -> bool {
        self.0.enqueue(value);
        true
    }

    fn dequeue(&self, _proc: usize) -> Option<u32> {
        self.0.dequeue()
    }
}

/// Everything under one TAS lock.
pub struct LockQueueAdapter(pub LockQueue<u32, TasLock>);

impl BenchQueue for LockQueueAdapter {
    fn name(&self) -> &'static str {
        "lock-queue(tas)"
    }

    fn enqueue(&self, _proc: usize, value: u32) -> bool {
        self.0.enqueue(value) == EnqueueOutcome::Enqueued
    }

    fn dequeue(&self, _proc: usize) -> Option<u32> {
        self.0.dequeue().into_option()
    }
}

/// The standard queue suite swept by E6.
#[must_use]
pub fn queue_suite(capacity: usize, n: usize) -> Vec<Box<dyn BenchQueue>> {
    vec![
        Box::new(CsQueueAdapter(CsQueue::new(capacity, n))),
        Box::new(NbQueueAdapter(NonBlockingQueue::new(capacity))),
        Box::new(MsQueueAdapter(MsQueue::new())),
        Box::new(LockQueueAdapter(LockQueue::new(capacity))),
    ]
}

/// Pre-fills a stack with `count` values from process 0.
pub fn prefill_stack(stack: &dyn BenchStack, count: usize) {
    for v in 0..count as u32 {
        assert!(
            stack.push(0, v),
            "prefill exceeded capacity of {}",
            stack.name()
        );
    }
}

/// Pre-fills a queue with `count` values from process 0.
pub fn prefill_queue(queue: &dyn BenchQueue, count: usize) {
    for v in 0..count as u32 {
        assert!(
            queue.enqueue(0, v),
            "prefill exceeded capacity of {}",
            queue.name()
        );
    }
}

/// The standard timed driver: `threads` threads issue operations from
/// `mix` with `think_iters` pause instructions between operations.
/// Returns per-thread completed-operation counts (`Full`/`Empty`
/// answers count — they are completed operations).
pub fn drive_stack(
    stack: &dyn BenchStack,
    threads: usize,
    duration: std::time::Duration,
    mix: crate::workload::OpMix,
    think_iters: u32,
) -> crate::measure::RunResult {
    use std::sync::atomic::Ordering;
    crate::measure::timed_run(threads, duration, |thread, stop| {
        let mut rng = crate::workload::thread_rng(thread, 0xBEEF);
        let mut ops = 0u64;
        let mut value = thread as u32;
        while !stop.load(Ordering::Relaxed) {
            if mix.next_is_push(&mut rng) {
                stack.push(thread, value);
                value = value.wrapping_add(threads as u32);
            } else {
                stack.pop(thread);
            }
            ops += 1;
            crate::workload::think(think_iters);
        }
        ops
    })
}

/// The queue twin of [`drive_stack`].
pub fn drive_queue(
    queue: &dyn BenchQueue,
    threads: usize,
    duration: std::time::Duration,
    mix: crate::workload::OpMix,
    think_iters: u32,
) -> crate::measure::RunResult {
    use std::sync::atomic::Ordering;
    crate::measure::timed_run(threads, duration, |thread, stop| {
        let mut rng = crate::workload::thread_rng(thread, 0xF00D);
        let mut ops = 0u64;
        let mut value = thread as u32;
        while !stop.load(Ordering::Relaxed) {
            if mix.next_is_push(&mut rng) {
                queue.enqueue(thread, value);
                value = value.wrapping_add(threads as u32);
            } else {
                queue.dequeue(thread);
            }
            ops += 1;
            crate::workload::think(think_iters);
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_suite_round_trips() {
        for stack in stack_suite(64, 4) {
            assert!(stack.push(0, 7), "{}", stack.name());
            assert_eq!(stack.pop(1), Some(7), "{}", stack.name());
            assert_eq!(stack.pop(2), None, "{}", stack.name());
        }
    }

    #[test]
    fn queue_suite_round_trips() {
        for queue in queue_suite(64, 4) {
            assert!(queue.enqueue(0, 7), "{}", queue.name());
            assert!(queue.enqueue(0, 8), "{}", queue.name());
            assert_eq!(queue.dequeue(1), Some(7), "FIFO: {}", queue.name());
            assert_eq!(queue.dequeue(1), Some(8), "{}", queue.name());
        }
    }

    #[test]
    fn lock_fractions_are_sensible() {
        let suite = stack_suite(64, 2);
        for stack in &suite {
            stack.push(0, 1);
            stack.pop(0);
            if let Some(fraction) = stack.locked_fraction() {
                assert!((0.0..=1.0).contains(&fraction), "{}", stack.name());
            }
        }
    }

    #[test]
    fn ablation_adapter_works() {
        let adapter = CsConfigAdapter::new("cs/no-flag", 16, 2, CsConfig::NO_FLAG);
        assert!(adapter.push(0, 3));
        assert_eq!(adapter.pop(1), Some(3));
        assert_eq!(adapter.name(), "cs/no-flag");
    }

    #[test]
    fn prefill_fills_exactly() {
        let adapter = CsAdapter(CsStack::new(64, 2));
        prefill_stack(&adapter, 10);
        let mut drained = 0;
        while adapter.pop(0).is_some() {
            drained += 1;
        }
        assert_eq!(drained, 10);

        let q = CsQueueAdapter(CsQueue::new(64, 2));
        prefill_queue(&q, 10);
        let mut drained = 0;
        while q.dequeue(0).is_some() {
            drained += 1;
        }
        assert_eq!(drained, 10);
    }

    #[test]
    fn drive_stack_reports_ops_for_every_thread() {
        let adapter = CsAdapter(CsStack::new(1024, 3));
        prefill_stack(&adapter, 100);
        let result = drive_stack(
            &adapter,
            3,
            std::time::Duration::from_millis(30),
            crate::workload::OpMix::BALANCED,
            0,
        );
        assert_eq!(result.per_thread.len(), 3);
        assert!(result.total_ops() > 0);
    }

    #[test]
    fn drive_queue_reports_ops_for_every_thread() {
        let q = CsQueueAdapter(CsQueue::new(1024, 2));
        prefill_queue(&q, 100);
        let result = drive_queue(
            &q,
            2,
            std::time::Duration::from_millis(30),
            crate::workload::OpMix::BALANCED,
            4,
        );
        assert_eq!(result.per_thread.len(), 2);
        assert!(result.total_ops() > 0);
    }
}
