//! CI smoke test for the live-metrics pipeline: attach a registry to
//! a working `CsStack`, scrape it over real HTTP, and validate both
//! exposition formats end to end.
//!
//! Exits non-zero (via panic) if the Prometheus page is malformed,
//! the JSON snapshot disagrees with the object's own telemetry, or
//! the periodic dump fails to appear.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use cso_bench::measure::timed_run;
use cso_bench::workload::{thread_rng, OpMix};
use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_metrics::prom::validate_prometheus;
use cso_metrics::{Json, MetricsServer, PeriodicDump, Registry};
use cso_stack::CsStack;

const THREADS: usize = 4;

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to scrape endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header terminator");
    (head.to_owned(), body.to_owned())
}

fn main() {
    println!("metrics smoke: registry + scrape endpoint + periodic dump");

    let registry = Registry::new();
    let stack: CsStack<u32> =
        CsStack::with_config(8192, TasLock::new(), THREADS, CsConfig::COMBINING);
    stack.attach_metrics(&registry, "stack");
    let dump_path =
        std::env::temp_dir().join(format!("cso-metrics-smoke-{}.json", std::process::id()));
    let dump = PeriodicDump::spawn(
        registry.clone(),
        dump_path.clone(),
        Duration::from_millis(50),
    );
    let server = MetricsServer::bind(registry.clone(), "127.0.0.1:0").expect("bind scrape port");
    println!("scraping http://{}/metrics", server.addr());

    // A short contended run so every path (fast, locked, combining)
    // has a chance to fire.
    let result = timed_run(THREADS, Duration::from_millis(200), |thread, stop| {
        let mut rng = thread_rng(thread, 0x540CE);
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            if OpMix::BALANCED.next_is_push(&mut rng) {
                stack.push(thread, thread as u32);
            } else {
                stack.pop(thread);
            }
            ops += 1;
        }
        ops
    });
    println!("workload: {} ops", result.total_ops());

    // 1. Prometheus text page: structurally valid, names present.
    let (head, page) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "bad content type: {head}"
    );
    if let Err((line, text)) = validate_prometheus(&page) {
        panic!("malformed Prometheus exposition at line {line}: {text:?}");
    }
    for name in [
        "stack_ops_fast_total",
        "stack_ops_locked_total",
        "stack_fast_aborts_total",
        "stack_lock_acquires_total",
        "stack_gate_abort_ewma",
        "stack_fast_ns",
    ] {
        assert!(page.contains(name), "scrape page is missing {name}");
    }
    println!("prometheus page: {} lines, validated", page.lines().count());

    // 2. JSON snapshot: parses, and the path counters agree with the
    // object's own telemetry (the workload is stopped, so the two
    // reads race nothing).
    let (head, body) = http_get(server.addr(), "/metrics.json");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let snapshot = Json::parse(&body).expect("JSON snapshot parses");
    let counter = |name: &str| {
        snapshot
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("JSON snapshot is missing counter {name}"))
    };
    let fast = counter("stack_ops_fast_total");
    let locked = counter("stack_ops_locked_total");
    let combined = counter("stack_ops_combined_total");
    let stats = stack.path_stats();
    assert_eq!(fast, stats.fast, "fast-path counter drifted");
    assert_eq!(
        locked + combined,
        stats.locked,
        "locked + combined must equal the internal locked counter"
    );
    assert_eq!(
        fast + locked + combined,
        result.total_ops(),
        "every completed operation is on exactly one path"
    );
    println!("json snapshot: fast={fast} locked={locked} combined={combined}");

    // 3. The 404 path stays a 404.
    let (head, _) = http_get(server.addr(), "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "bad status: {head}");

    // 4. Periodic dump: final write on stop, parseable, same counters.
    dump.stop();
    let dumped = std::fs::read_to_string(&dump_path).expect("dump file exists");
    let dumped = Json::parse(&dumped).expect("dump file parses");
    assert_eq!(
        dumped
            .get("counters")
            .and_then(|c| c.get("stack_ops_fast_total"))
            .and_then(Json::as_u64),
        Some(fast),
        "dump disagrees with the scrape"
    );
    let _ = std::fs::remove_file(&dump_path);

    server.shutdown();
    println!("metrics smoke: OK");
}
