//! E13 — the contention-adaptive escalation ladder.
//!
//! Four variants of the contention-sensitive stack, all with the
//! Theorem-1 fast path *on* (a solo weak op still costs exactly six
//! counted accesses in every one of them), differing only in which
//! middle rungs of the escalation ladder are armed:
//!
//! * `cs/plain` — [`CsConfig::PAPER`]: abort goes straight to the
//!   §4.4-boosted lock;
//! * `cs/cm` — [`CsConfig::with_cas_backoff`]: failure-history-driven
//!   backoff paces a few weak-op retries before the lock;
//! * `cs/elim` — [`CsConfig::with_elimination`]: aborted inverse
//!   operations rendezvous at an exchanger before anyone raises
//!   `CONTENTION` or takes the lock;
//! * `cs/both` — [`CsConfig::LADDER`]: the full ladder.
//!
//! Under a symmetric push/pop mix with zero think time most aborts
//! have an inverse partner in flight, so the ladder should convert
//! lock escalations into retries and rendezvous: throughput rises and
//! the locked fraction falls. The acceptance bar is `cs/both` ≥ 1.3×
//! `cs/plain` at ≥ 8 threads.
//!
//! A second sweep (the *rescue* cells, the E12 regime) forces the
//! fast path off so every operation would otherwise pay the lock,
//! then arms the full ladder on top: the contention-management rung
//! completes the weak op off the lock and the elimination rung pairs
//! inverses at the exchanger. On a host whose fast path never aborts
//! (e.g. one core, where interleaving only happens at preemption
//! quanta) this is the sweep where the ladder's effect is visible.
//!
//! Besides the table, the run writes a machine-readable
//! `results/BENCH_e13_escalation.json` in the shared report shape
//! (`CSO_BENCH_OUT_DIR` overrides the directory) so CI can validate
//! the numbers.

use cso_bench::adapters::{drive_stack, prefill_stack, BenchStack};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_metrics::Json;
use cso_stack::{CsStack, PushOutcome};

/// The four ladder ablations, in escalation order.
const VARIANTS: [(&str, CsConfig); 4] = [
    ("cs/plain", CsConfig::PAPER),
    ("cs/cm", CsConfig::PAPER.with_cas_backoff()),
    ("cs/elim", CsConfig::PAPER.with_elimination()),
    ("cs/both", CsConfig::LADDER),
];

/// A contention-sensitive stack under one ladder ablation.
struct LadderAdapter {
    label: &'static str,
    stack: CsStack<u32>,
}

impl LadderAdapter {
    fn new(label: &'static str, n: usize, config: CsConfig) -> LadderAdapter {
        LadderAdapter {
            label,
            stack: CsStack::with_config(65_000, TasLock::new(), n, config),
        }
    }
}

impl BenchStack for LadderAdapter {
    fn name(&self) -> &'static str {
        self.label
    }

    fn push(&self, proc: usize, value: u32) -> bool {
        self.stack.push(proc, value) == PushOutcome::Pushed
    }

    fn pop(&self, proc: usize) -> Option<u32> {
        self.stack.pop(proc).into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(self.stack.path_stats().locked_fraction())
    }
}

/// One variant's numbers at one thread count.
struct Sample {
    ops_per_sec: f64,
    locked_fraction: f64,
    eliminated_fraction: f64,
    eliminated_pairs: u64,
}

/// One measured cell: all four variants at one thread count.
struct Cell {
    threads: usize,
    samples: [Sample; 4],
}

impl Cell {
    /// `cs/both` over `cs/plain`.
    fn speedup(&self) -> f64 {
        if self.samples[0].ops_per_sec > 0.0 {
            self.samples[3].ops_per_sec / self.samples[0].ops_per_sec
        } else {
            0.0
        }
    }
}

fn measure(threads: usize) -> Cell {
    let duration = cell_duration();
    let samples = VARIANTS.map(|(label, config)| {
        let adapter = LadderAdapter::new(label, threads, config);
        prefill_stack(&adapter, 16_384);
        adapter.stack.reset_path_stats();
        let run = drive_stack(&adapter, threads, duration, OpMix::BALANCED, 0);
        let paths = adapter.stack.path_stats();
        let total = paths.total().max(1);
        Sample {
            ops_per_sec: run.ops_per_sec(),
            locked_fraction: paths.locked_fraction(),
            eliminated_fraction: paths.eliminated as f64 / total as f64,
            eliminated_pairs: adapter.stack.eliminated_pairs(),
        }
    });
    Cell { threads, samples }
}

/// One rescue cell: forced-slow plain vs forced-slow + full ladder,
/// plus an elimination-only variant (no retry rung, so every aborted
/// op goes straight to the exchanger — the rendezvous machinery in
/// isolation).
struct RescueCell {
    threads: usize,
    plain_ops_per_sec: f64,
    ladder_ops_per_sec: f64,
    ladder_locked_fraction: f64,
    ladder_eliminated_pairs: u64,
    elim_ops_per_sec: f64,
    elim_eliminated_pairs: u64,
}

impl RescueCell {
    fn speedup(&self) -> f64 {
        if self.plain_ops_per_sec > 0.0 {
            self.ladder_ops_per_sec / self.plain_ops_per_sec
        } else {
            0.0
        }
    }
}

fn measure_rescue(threads: usize) -> RescueCell {
    let duration = cell_duration();

    let plain = LadderAdapter::new("slow/plain", threads, CsConfig::PAPER.without_fast_path());
    prefill_stack(&plain, 16_384);
    plain.stack.reset_path_stats();
    let plain_run = drive_stack(&plain, threads, duration, OpMix::BALANCED, 0);

    let ladder = LadderAdapter::new(
        "slow/ladder",
        threads,
        CsConfig::PAPER
            .without_fast_path()
            .with_cas_backoff()
            .with_elimination(),
    );
    prefill_stack(&ladder, 16_384);
    ladder.stack.reset_path_stats();
    let ladder_run = drive_stack(&ladder, threads, duration, OpMix::BALANCED, 0);

    let elim = LadderAdapter::new(
        "slow/elim",
        threads,
        CsConfig::PAPER.without_fast_path().with_elimination(),
    );
    prefill_stack(&elim, 16_384);
    elim.stack.reset_path_stats();
    let elim_run = drive_stack(&elim, threads, duration, OpMix::BALANCED, 0);

    RescueCell {
        threads,
        plain_ops_per_sec: plain_run.ops_per_sec(),
        ladder_ops_per_sec: ladder_run.ops_per_sec(),
        ladder_locked_fraction: ladder.stack.path_stats().locked_fraction(),
        ladder_eliminated_pairs: ladder.stack.eliminated_pairs(),
        elim_ops_per_sec: elim_run.ops_per_sec(),
        elim_eliminated_pairs: elim.stack.eliminated_pairs(),
    }
}

fn json_rescue_cells(cells: &[RescueCell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|cell| {
                Json::obj()
                    .field("threads", cell.threads as u64)
                    .field("plain_ops_per_sec", cell.plain_ops_per_sec)
                    .field("ladder_ops_per_sec", cell.ladder_ops_per_sec)
                    .field("speedup", cell.speedup())
                    .field("ladder_locked_fraction", cell.ladder_locked_fraction)
                    .field("ladder_eliminated_pairs", cell.ladder_eliminated_pairs)
                    .field("elim_ops_per_sec", cell.elim_ops_per_sec)
                    .field("elim_eliminated_pairs", cell.elim_eliminated_pairs)
            })
            .collect(),
    )
}

fn json_cells(cells: &[Cell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|cell| {
                let mut obj = Json::obj().field("threads", cell.threads as u64);
                for ((label, _), sample) in VARIANTS.iter().zip(&cell.samples) {
                    let key = label.trim_start_matches("cs/");
                    obj = obj
                        .field(&format!("{key}_ops_per_sec"), sample.ops_per_sec)
                        .field(&format!("{key}_locked_fraction"), sample.locked_fraction)
                        .field(
                            &format!("{key}_eliminated_fraction"),
                            sample.eliminated_fraction,
                        )
                        .field(&format!("{key}_eliminated_pairs"), sample.eliminated_pairs);
                }
                obj.field("speedup", cell.speedup())
            })
            .collect(),
    )
}

fn main() {
    println!("E13: escalation ladder ablations (fast path on everywhere)");
    println!("({} ms per cell, 50/50 mix)\n", cell_duration().as_millis());

    let cells: Vec<Cell> = thread_counts().into_iter().map(measure).collect();

    let mut table = Table::new(&[
        "threads",
        "plain ops/s",
        "cm ops/s",
        "elim ops/s",
        "both ops/s",
        "both/plain",
        "plain lock%",
        "both lock%",
        "both elim%",
        "pairs",
    ]);
    for cell in &cells {
        let s = &cell.samples;
        table.row(vec![
            cell.threads.to_string(),
            fmt_rate(s[0].ops_per_sec),
            fmt_rate(s[1].ops_per_sec),
            fmt_rate(s[2].ops_per_sec),
            fmt_rate(s[3].ops_per_sec),
            format!("{:.2}x", cell.speedup()),
            format!("{:.1}%", s[0].locked_fraction * 100.0),
            format!("{:.1}%", s[3].locked_fraction * 100.0),
            format!("{:.1}%", s[3].eliminated_fraction * 100.0),
            s[3].eliminated_pairs.to_string(),
        ]);
    }
    table.print();

    println!("\nRescue sweep: fast path forced off (every op would pay the lock),");
    println!("plain vs the full ladder layered on top.\n");

    let rescue: Vec<RescueCell> = thread_counts().into_iter().map(measure_rescue).collect();

    let mut rescue_table = Table::new(&[
        "threads",
        "plain ops/s",
        "ladder ops/s",
        "speedup",
        "ladder lock%",
        "ladder pairs",
        "elim ops/s",
        "elim pairs",
    ]);
    for cell in &rescue {
        rescue_table.row(vec![
            cell.threads.to_string(),
            fmt_rate(cell.plain_ops_per_sec),
            fmt_rate(cell.ladder_ops_per_sec),
            format!("{:.2}x", cell.speedup()),
            format!("{:.1}%", cell.ladder_locked_fraction * 100.0),
            cell.ladder_eliminated_pairs.to_string(),
            fmt_rate(cell.elim_ops_per_sec),
            cell.elim_eliminated_pairs.to_string(),
        ]);
    }
    rescue_table.print();

    BenchReport::new("e13_escalation")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .metric("cells", json_cells(&cells))
        .metric("rescue_cells", json_rescue_cells(&rescue))
        .write();

    println!("\nReading: every variant keeps the six-access solo fast path; the");
    println!("ladder only changes what an *aborted* weak op does next. Backoff-paced");
    println!("retries absorb transient interference, elimination pairs inverse");
    println!("operations off to the side, and both together should shrink the locked");
    println!("fraction — the serial share that bounds scalability — as threads grow.");
    println!("The rescue sweep shows the same ladder where lock pressure is real:");
    println!("with the fast path off, plain pays a lock tenure per op while the");
    println!("ladder completes off the lock (locked fraction → 0).");
    cso_bench::tracing::emit("e13_escalation");
}
