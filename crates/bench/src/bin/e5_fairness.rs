//! E5 — starvation-freedom as measured fairness.
//!
//! At maximum contention, compares per-thread completion counts
//! across implementations. The Figure 3 stack (starvation-free via
//! the §4.4 `FLAG`/`TURN` booster) should keep the per-thread spread
//! tight; the merely non-blocking and TAS-locked baselines may
//! starve individual threads.

use cso_bench::adapters::{drive_stack, prefill_stack, stack_suite, CsConfigAdapter};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_core::CsConfig;

fn main() {
    let threads = *thread_counts().last().unwrap_or(&4);
    println!("E5: per-thread fairness at {threads} threads, 50/50 mix, no think time");
    println!(
        "({} ms per cell; Jain index: 1.0 = perfectly fair)\n",
        cell_duration().as_millis()
    );

    let mut table = Table::new(&["impl", "ops/s", "min ops", "max ops", "max/min", "jain"]);

    let mut run = |stack: &dyn cso_bench::adapters::BenchStack| {
        prefill_stack(stack, 4096);
        let result = drive_stack(stack, threads, cell_duration(), OpMix::BALANCED, 0);
        let min = result.min_ops().max(1);
        table.row(vec![
            stack.name().to_owned(),
            fmt_rate(result.ops_per_sec()),
            result.min_ops().to_string(),
            result.max_ops().to_string(),
            format!("{:.2}", result.max_ops() as f64 / min as f64),
            format!("{:.4}", result.jain_index()),
        ]);
    };

    for stack in stack_suite(8192, threads) {
        run(stack.as_ref());
    }
    // The E8-style unfair ablation, for contrast: same algorithm, no
    // FLAG/TURN booster.
    let unfair = CsConfigAdapter::new("cs/unfair", 8192, threads, CsConfig::UNFAIR);
    run(&unfair);

    table.print();

    BenchReport::new("e5_fairness")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("threads", threads as u64)
        .config("mix", "50/50")
        .table("rows", &table)
        .write();

    println!("\nExpected shape: cs-stack and lock(ticket) (both starvation-free) hold");
    println!("the tightest max/min; nb-stack, lock(tas) and cs/unfair may starve a");
    println!("thread under pressure.");
    cso_bench::tracing::emit("e5_fairness");
}
