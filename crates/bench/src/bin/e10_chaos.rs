//! E10 — graceful degradation under injected faults (`--features
//! chaos`).
//!
//! §5 of the paper concedes the Figure 3 transformation survives
//! crashes only outside the critical section. This experiment arms the
//! fail-point registry at adversarial program points and measures what
//! actually degrades on a live `CsStack`:
//!
//! * abort storms (fast-path vetoes, weak-op ⊥) cost throughput but
//!   never correctness — the lock fraction absorbs the damage;
//! * panics *inside* the locked slow path are survived by the RAII
//!   guard (counted as `poisoned`), with values conserved exactly;
//! * a holder stalled forever wedges unbounded `push`, while
//!   `try_push_for` degrades to clean `TimedOut` answers.
//!
//! Run with `cargo run --release --features chaos --bin e10_chaos`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use cso_bench::adapters::{drive_stack, prefill_stack, CsAdapter};
use cso_bench::cell_duration;
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_pct, fmt_rate, Table};
use cso_bench::tracing::{drive_stack_timed, poisoning_causes, PathHists};
use cso_bench::workload::OpMix;
use cso_memory::chaos::{self, Fault, Plan};
use cso_stack::{CsStack, PopOutcome, PushOutcome};
use cso_trace::probe;

const THREADS: usize = 4;

/// One timed cell under whatever faults are currently armed.
fn timed_cell(label: &str, table: &mut Table) {
    let adapter = CsAdapter(CsStack::new(8192, THREADS));
    prefill_stack(&adapter, 4096);
    adapter.0.reset_path_stats();
    let result = drive_stack(&adapter, THREADS, cell_duration(), OpMix::BALANCED, 0);
    let stats = adapter.0.path_stats();
    let faults = adapter.0.fault_stats();
    table.row(vec![
        label.to_string(),
        result.total_ops().to_string(),
        fmt_rate(result.ops_per_sec()),
        fmt_pct(stats.locked_fraction()),
        faults.poisoned.to_string(),
        faults.timeouts.to_string(),
    ]);
}

/// Panic storm: roughly one in fifty locked slow-path entries dies.
/// Every panic must be survived and every value conserved.
fn panic_storm(table: &mut Table) {
    const OPS_PER_THREAD: u64 = 4_000;
    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 8));
    chaos::arm_plan("cs::locked", Plan::one_in(Fault::Panic, 50));
    // The storm panics on purpose, hundreds of times; silence the
    // per-panic backtrace chatter for the duration.
    std::panic::set_hook(Box::new(|_| {}));

    let stack: CsStack<u32> = CsStack::new(1 << 14, THREADS);
    let (pushed, popped): (u64, u64) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|proc| {
                let stack = &stack;
                s.spawn(move || {
                    let (mut pushed, mut popped) = (0u64, 0u64);
                    for i in 0..OPS_PER_THREAD {
                        if i % 2 == 0 {
                            let v = (proc as u64 * OPS_PER_THREAD + i) as u32;
                            match catch_unwind(AssertUnwindSafe(|| stack.push(proc, v))) {
                                Ok(PushOutcome::Pushed) => pushed += 1,
                                Ok(PushOutcome::Full) | Err(_) => {}
                            }
                        } else {
                            match catch_unwind(AssertUnwindSafe(|| stack.pop(proc))) {
                                Ok(PopOutcome::Popped(_)) => popped += 1,
                                Ok(PopOutcome::Empty) | Err(_) => {}
                            }
                        }
                    }
                    (pushed, popped)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no unwind may escape catch_unwind"))
            .fold((0, 0), |(p, q), (a, b)| (p + a, q + b))
    });
    let _ = std::panic::take_hook();
    chaos::reset();

    // Conservation: survivors = successful pushes − successful pops.
    let mut drained = 0u64;
    while let PopOutcome::Popped(_) = stack.pop(0) {
        drained += 1;
    }
    assert_eq!(
        drained,
        pushed - popped,
        "a poisoned operation leaked or destroyed a value"
    );

    let stats = stack.path_stats();
    let faults = stack.fault_stats();
    assert!(faults.poisoned > 0, "the storm never hit the slow path");
    table.row(vec![
        "panic 1/50 @ cs::locked".to_string(),
        (pushed + popped).to_string(),
        "-".to_string(),
        fmt_pct(stats.locked_fraction()),
        faults.poisoned.to_string(),
        faults.timeouts.to_string(),
    ]);
}

/// The §5 nightmare: the holder stalls forever. Unbounded callers
/// would hang; deadline-bounded callers get clean timeouts, and
/// service resumes once the wedge clears.
fn stall_and_deadline(table: &mut Table) {
    const ATTEMPTS: u64 = 20;
    let stack: CsStack<u32> = CsStack::new(64, THREADS);
    chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
    chaos::arm_plan("cs::locked", Plan::once(Fault::StallForever));

    let mut timeouts = 0u64;
    std::thread::scope(|s| {
        let stack = &stack;
        s.spawn(move || {
            // Sacrificial op: vetoed off the fast path, then parked
            // while holding the lock.
            let _ = stack.push(0, 1);
        });
        while chaos::fires("cs::locked") == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        for i in 0..ATTEMPTS {
            if stack
                .try_push_for(1, 100 + i as u32, Duration::from_millis(5))
                .is_err()
            {
                timeouts += 1;
            }
        }
        // Release the wedge so the sacrificial thread can finish.
        chaos::reset();
    });
    assert_eq!(
        timeouts, ATTEMPTS,
        "a wedged lock must time every caller out"
    );
    assert_eq!(
        stack.push(1, 2),
        PushOutcome::Pushed,
        "service must resume after the wedge clears"
    );

    let faults = stack.fault_stats();
    table.row(vec![
        "stall @ cs::locked + 5ms deadline".to_string(),
        ATTEMPTS.to_string(),
        "-".to_string(),
        "-".to_string(),
        faults.poisoned.to_string(),
        faults.timeouts.to_string(),
    ]);
}

/// Per-path operation latency under an abort storm: the "veto" cell
/// again, but timing every operation into the histogram of the path it
/// completed on. Without `--features trace` the completion path is
/// unknown and every sample lands in the `unknown` row.
fn latency_cell() {
    let adapter = CsAdapter(CsStack::new(8192, THREADS));
    prefill_stack(&adapter, 4096);
    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 8));
    let hists = PathHists::new();
    let _ = drive_stack_timed(&adapter, THREADS, cell_duration(), OpMix::BALANCED, &hists);
    chaos::reset();
    println!("\nPer-path operation latency, veto 1/8 fast paths:");
    hists.table().print();
}

fn main() {
    // Mirror every fail-point fire into the probe stream (no-op
    // without `--features trace`), so the trace can name the fail
    // point behind each poisoning.
    cso_trace::install_chaos_hook();
    println!("E10: graceful degradation of the cs-stack under injected faults");
    println!(
        "({THREADS} threads, 50/50 mix, {} ms per timed cell)\n",
        cell_duration().as_millis()
    );

    let mut table = Table::new(&[
        "scenario",
        "ops",
        "ops/s",
        "lock path",
        "poisoned",
        "timeouts",
    ]);

    chaos::reset();
    timed_cell("baseline (no faults)", &mut table);

    chaos::arm_plan("cs::fast", Plan::one_in(Fault::SpuriousAbort, 2));
    timed_cell("veto 1/2 fast paths", &mut table);
    chaos::reset();

    chaos::arm_plan("stack::push", Plan::one_in(Fault::SpuriousAbort, 4));
    chaos::arm_plan("stack::pop", Plan::one_in(Fault::SpuriousAbort, 4));
    timed_cell("abort 1/4 weak ops", &mut table);
    chaos::reset();

    chaos::arm_plan(
        "cs::lock-wait",
        Plan::one_in(Fault::Delay(Duration::from_micros(5)), 8),
    );
    chaos::arm_plan("tas::acquire", Plan::one_in(Fault::Yield, 4));
    timed_cell("delay/yield in lock path", &mut table);
    chaos::reset();

    panic_storm(&mut table);
    stall_and_deadline(&mut table);

    table.print();

    BenchReport::new("e10_chaos")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("threads", THREADS as u64)
        .config("mix", "50/50")
        .table("scenarios", &table)
        .write();

    latency_cell();

    if probe::enabled() {
        let causes = poisoning_causes(&probe::collect());
        if !causes.is_empty() {
            println!("\nPoisonings by causal fail point:");
            for (site, count) in causes {
                println!("  {site:<24} {count}");
            }
        }
    }

    println!("\nReading the table:");
    println!("- abort storms move work onto the lock path; throughput bends, answers stay right;");
    println!("- every `poisoned` is a panic survived *inside* the critical section — the guard");
    println!("  released the lock and restored CONTENTION, and the drain confirmed conservation;");
    println!("- `timeouts` are the §5 wedge made visible: try_push_for reports TimedOut instead");
    println!("  of hanging, and service resumes once the stall clears.");
    cso_bench::tracing::emit("e10_chaos");
}
