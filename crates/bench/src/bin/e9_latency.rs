//! E9 (supplementary) — per-operation latency tails.
//!
//! Throughput (E3) hides tail behaviour: a starvation-free design is
//! precisely a bound on the *tail*. This harness samples push+pop
//! pair latency for every stack implementation, solo and with a
//! background interferer thread, and reports percentiles. The
//! starvation-free cs-stack should keep its p999 close to its p50
//! even with interference; the merely non-blocking designs may not.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cso_bench::adapters::{prefill_stack, stack_suite, BenchStack};
use cso_bench::jsonreport::BenchReport;
use cso_bench::measure::{sample_latency, LatencySummary};
use cso_bench::report::Table;

const SAMPLES: usize = 20_000;
const WARMUP: usize = 2_000;

fn row(table: &mut Table, name: &str, mode: &str, summary: LatencySummary) {
    table.row(vec![
        name.to_owned(),
        mode.to_owned(),
        summary.p50.to_string(),
        summary.p90.to_string(),
        summary.p99.to_string(),
        summary.p999.to_string(),
        summary.max.to_string(),
    ]);
}

fn main() {
    println!("E9: push+pop pair latency percentiles (ns), {SAMPLES} samples");
    println!("(single-op medians are timer-granularity bound; read the tails)\n");

    let mut table = Table::new(&["impl", "mode", "p50", "p90", "p99", "p99.9", "max"]);

    for stack in stack_suite(8192, 2) {
        prefill_stack(stack.as_ref(), 1024);

        // Solo.
        let summary = sample_latency(
            || {
                stack.push(0, 1);
                stack.pop(0);
            },
            SAMPLES,
            WARMUP,
        );
        row(&mut table, stack.name(), "solo", summary);

        // With one background interferer.
        let stop = Arc::new(AtomicBool::new(false));
        let summary = std::thread::scope(|s| {
            let stack_ref: &dyn BenchStack = stack.as_ref();
            let stop_bg = Arc::clone(&stop);
            s.spawn(move || {
                while !stop_bg.load(Ordering::Relaxed) {
                    stack_ref.push(1, 2);
                    stack_ref.pop(1);
                }
            });
            let summary = sample_latency(
                || {
                    stack.push(0, 1);
                    stack.pop(0);
                },
                SAMPLES,
                WARMUP,
            );
            stop.store(true, Ordering::Relaxed);
            summary
        });
        row(&mut table, stack.name(), "contended", summary);
    }

    table.print();

    BenchReport::new("e9_latency")
        .config("samples", SAMPLES as u64)
        .config("warmup", WARMUP as u64)
        .table("rows", &table)
        .write();

    println!("\nReading: the interferer inflates the tail (p99.9, max) of every");
    println!("implementation via preemption; the paper's claim is about the *fast");
    println!("path* staying lock-free — compare each impl's contended tail against");
    println!("its own solo tail.");
    cso_bench::tracing::emit("e9_latency");
}
