//! E16 — the watchdog overhead guard and live health surface.
//!
//! Four phases, each with a hard assertion (the binary exits nonzero
//! on violation, so CI can gate on it):
//!
//! 1. **Overhead guard** — the e3-style throughput workload runs
//!    twice: watchdog disarmed, then fully armed (all catalogue
//!    invariants, SLOs, gauges, HTTP surface, 25 ms cadence). The
//!    armed/disarmed throughput ratio must stay within a generous
//!    noise bound — runtime verification that taxes the object it
//!    verifies would never stay deployed.
//! 2. **Clean-run silence** — across the armed run the watchdog must
//!    report `OK` with **zero** transitions: no false alerts from
//!    racy reads, in-flight operations, or scheduler noise.
//! 3. **Live surface** — `/health`, `/alerts.json`, `/causal.json`
//!    and `/metrics` are scraped over real HTTP and validated:
//!    schemas, status fields, `cso_watch_*` and `cso_build_info`
//!    series.
//! 4. **Planted violation** — a conservation leak (the Figure-1
//!    help-after-CAS mutant's observable) is planted while the
//!    watchdog runs; it must flip `/health` to `DEGRADED` within a
//!    bounded window, and repairing the books must clear it again.
//!
//! Writes `results/BENCH_e16_watch.json` in the shared report shape.
//! Runs with or without `--features trace` — the aggregator-fed
//! checks see real probe data only under trace, the closure-fed ones
//! either way.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cso_bench::jsonreport::BenchReport;
use cso_bench::measure::timed_run;
use cso_bench::workload::{thread_rng, OpMix};
use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_metrics::{Json, MetricsServer, Registry};
use cso_profile::{profile_routes, Harvester, LiveAggregator};
use cso_stack::CsStack;
use cso_watch::{watch_routes, Invariant, SloSpec, Watchdog};

const THREADS: usize = 4;
const WINDOW: Duration = Duration::from_millis(300);
/// Armed throughput must stay above this fraction of disarmed — a
/// deliberately loose bound so scheduler noise on a loaded CI box
/// cannot fail the build, while a watchdog that serialized the
/// workload (or snapshotted per-op) still would.
const NOISE_FLOOR: f64 = 0.5;
/// The planted leak must be flagged within this window (the watchdog
/// ticks every 25 ms and debounces 2 samples, so this is ~20x slack).
const DETECT_WITHIN: Duration = Duration::from_secs(2);

/// Shared op books the workload maintains and the watchdog samples.
struct Books {
    pushes: AtomicU64,
    pops: AtomicU64,
    size: AtomicI64,
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: e16\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header terminator");
    (head.to_owned(), body.to_owned())
}

/// One measurement window. Under `trace` the workload paces itself
/// like e15's lossless phase (1 ms breath per 32 ops) so the 2 ms
/// harvester provably keeps every ring ahead of the probe stream —
/// an unpaced 4-thread burst outruns *any* consumer (e15 phase 1),
/// and the resulting loss would be a true alert, not a false one.
/// Without `trace` the workload runs flat out, which is the config
/// whose armed/disarmed ratio isolates the watchdog machinery.
fn run_window(stack: &CsStack<u32>, books: &Books) -> u64 {
    let paced = cfg!(feature = "trace");
    timed_run(THREADS, WINDOW, |thread, stop| {
        let mut rng = thread_rng(thread, 0xE16);
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            if OpMix::BALANCED.next_is_push(&mut rng) {
                if stack.push(thread, thread as u32).is_pushed() {
                    books.pushes.fetch_add(1, Ordering::Relaxed);
                    books.size.fetch_add(1, Ordering::Relaxed);
                }
            } else if stack.pop(thread).is_popped() {
                books.pops.fetch_add(1, Ordering::Relaxed);
                books.size.fetch_sub(1, Ordering::Relaxed);
            }
            ops += 1;
            if paced && ops % 32 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        ops
    })
    .total_ops()
}

fn main() {
    println!("E16: watchdog overhead guard + live health surface");
    println!("({THREADS} threads, {WINDOW:?} windows, noise floor {NOISE_FLOOR})\n");

    let stack: Arc<CsStack<u32>> = Arc::new(CsStack::with_config(
        65_000,
        TasLock::new(),
        THREADS,
        CsConfig::PAPER,
    ));
    let books = Arc::new(Books {
        pushes: AtomicU64::new(0),
        pops: AtomicU64::new(0),
        size: AtomicI64::new(0),
    });

    // ---- Phase 1a: disarmed baseline. ------------------------------
    let disarmed_ops = run_window(&stack, &books);
    println!(
        "phase 1 (disarmed): {disarmed_ops} ops ({:.0} ops/s)",
        disarmed_ops as f64 / WINDOW.as_secs_f64()
    );

    // ---- Arm everything: harvester, watchdog, registry, HTTP. ------
    // The disarmed window ran with no consumer, so under `trace` its
    // probe stream wrapped the rings; clear them so the first harvest
    // does not book that backlog as capture loss.
    cso_trace::probe::clear();
    let registry = Registry::new();
    registry.register_build_info();
    let harvester =
        Harvester::start_with(Arc::new(LiveAggregator::new()), Duration::from_millis(2));
    let agg = harvester.aggregator();
    agg.register_metrics(&registry);
    let conservation = {
        let (p, o, s) = (Arc::clone(&books), Arc::clone(&books), Arc::clone(&books));
        Invariant::conservation(
            "conservation",
            4 * THREADS as u64,
            move || p.pushes.load(Ordering::Relaxed),
            move || o.pops.load(Ordering::Relaxed),
            move || s.size.load(Ordering::Relaxed),
        )
    };
    let specs = SloSpec::parse(
        "served budget=0.01 short=5s long=30s good=fast,eliminated,locked,combined,combiner",
    )
    .expect("spec parses");
    let dog = Watchdog::builder()
        .invariant(conservation)
        .invariant(Invariant::bypass_bound(&agg))
        .invariant(Invariant::poison_free(&agg))
        .invariant(Invariant::lossless_rings(&agg))
        .invariant(Invariant::path_ceiling(&agg, "fast", 1_000_000_000))
        .slos(specs)
        .aggregator(Arc::clone(&agg))
        .registry(&registry)
        .spawn();
    let server = MetricsServer::bind_with_routes(
        registry.clone(),
        "127.0.0.1:0",
        profile_routes(Arc::clone(&agg)).merge(watch_routes(&dog)),
    )
    .expect("bind");
    println!(
        "armed: watchdog + harvester + http://{}/health",
        server.addr()
    );

    // ---- Phase 1b: armed run. --------------------------------------
    let armed_ops = run_window(&stack, &books);
    let ratio = armed_ops as f64 / disarmed_ops as f64;
    println!(
        "phase 1 (armed):    {armed_ops} ops ({:.0} ops/s) — ratio {ratio:.3}",
        armed_ops as f64 / WINDOW.as_secs_f64()
    );
    assert!(
        ratio >= NOISE_FLOOR,
        "armed watchdog cost {:.0}% throughput (floor {:.0}%)",
        (1.0 - ratio) * 100.0,
        (1.0 - NOISE_FLOOR) * 100.0
    );

    // ---- Phase 2: the clean run raised nothing. --------------------
    std::thread::sleep(Duration::from_millis(100)); // a few quiesced ticks
    assert_eq!(dog.status(), "OK", "{:?}", dog.alerts_json());
    assert_eq!(
        dog.transitions(),
        0,
        "clean workload flapped: {:?}",
        dog.alerts_json()
    );
    println!("phase 2: clean run, 0 transitions, status OK");

    // ---- Phase 3: the live surface, over real HTTP. ----------------
    let (head, body) = http_get(server.addr(), "/health");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let health = Json::parse(&body).expect("/health parses");
    assert_eq!(
        health.get("schema").and_then(Json::as_str),
        Some("cso-health v1")
    );
    assert_eq!(health.get("status").and_then(Json::as_str), Some("OK"));
    let checks = health.get("checks").and_then(Json::as_arr).expect("checks");
    assert_eq!(checks.len(), 5, "all five armed checks are reported");

    let (head, body) = http_get(server.addr(), "/alerts.json");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let alerts = Json::parse(&body).expect("/alerts.json parses");
    assert_eq!(
        alerts.get("schema").and_then(Json::as_str),
        Some("cso-alerts v1")
    );
    assert_eq!(
        alerts
            .get("active")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );

    let (head, body) = http_get(server.addr(), "/causal.json");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    let causal = Json::parse(&body).expect("/causal.json parses");
    assert_eq!(
        causal.get("schema").and_then(Json::as_str),
        Some("cso-causal v1")
    );
    let attribution = causal
        .get("coverage")
        .and_then(|c| c.get("attribution"))
        .and_then(Json::as_f64)
        .expect("attribution");
    assert!(
        (0.0..=1.0).contains(&attribution),
        "attribution {attribution}"
    );

    let (head, page) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    for name in [
        "cso_watch_health",
        "cso_watch_conservation",
        "cso_watch_bypass_bound",
        "cso_watch_slo_served_firing",
        "cso_build_info",
        "cso_process_uptime_seconds",
        "cso_harvest_ingested_total",
    ] {
        assert!(page.contains(name), "scrape page is missing {name}");
    }
    println!("phase 3: /health /alerts.json /causal.json /metrics all validated");
    println!("         causal attribution {attribution:.4}");

    // ---- Phase 4: a planted leak flips health, repair clears it. ---
    const LEAK: u64 = 100; // far beyond the 4n slack
    books.pushes.fetch_add(LEAK, Ordering::Relaxed);
    let planted = Instant::now();
    while dog.status() == "OK" {
        assert!(
            planted.elapsed() < DETECT_WITHIN,
            "leak not flagged within {DETECT_WITHIN:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let detect_ms = planted.elapsed().as_millis() as u64;
    assert_eq!(dog.status(), "DEGRADED");
    let (_, body) = http_get(server.addr(), "/health");
    let health = Json::parse(&body).expect("/health parses");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("DEGRADED")
    );
    let reasons = health
        .get("reasons")
        .and_then(Json::as_arr)
        .expect("reasons");
    assert!(
        reasons
            .iter()
            .any(|r| r.as_str().is_some_and(|s| s.contains("conservation leak"))),
        "{body}"
    );
    println!("phase 4: planted {LEAK}-op leak flagged DEGRADED in {detect_ms} ms");

    // Repair the books: the next clean sample recovers immediately.
    books.pushes.fetch_sub(LEAK, Ordering::Relaxed);
    let repaired = Instant::now();
    while dog.status() != "OK" {
        assert!(
            repaired.elapsed() < DETECT_WITHIN,
            "repair not recognized within {DETECT_WITHIN:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(dog.transitions(), 2, "one escalation + one recovery");
    println!(
        "phase 4: repair recovered to OK in {} ms",
        repaired.elapsed().as_millis()
    );

    let alerts_doc = dog.alerts_json();
    let health_doc = dog.health_json();
    dog.stop();
    server.shutdown();
    let _ = harvester.stop();

    BenchReport::new("e16_watch")
        .config("threads", THREADS as u64)
        .config("window_ms", WINDOW.as_millis() as u64)
        .config("noise_floor", NOISE_FLOOR)
        .config("cadence_ms", 25u64)
        .config("debounce_ticks", 2u64)
        .config("trace", cfg!(feature = "trace"))
        .metric(
            "overhead",
            Json::obj()
                .field("disarmed_ops", disarmed_ops)
                .field("armed_ops", armed_ops)
                .field("ratio", ratio),
        )
        .metric(
            "detection",
            Json::obj()
                .field("planted_leak", LEAK)
                .field("detect_ms", detect_ms)
                .field("transitions", 2u64),
        )
        .metric("causal_attribution", attribution)
        .metric("health", health_doc)
        .metric("alerts", alerts_doc)
        .write();

    println!("\nReading: arming the full watchdog (five invariants, an SLO engine,");
    println!("gauges, and the HTTP surface) costs throughput within scheduler noise —");
    println!("the checks sample uncounted atomics and debounce, they never lock the");
    println!("structures. The same configuration that stays silent across a clean");
    println!("concurrent run flags a planted conservation leak within a bounded");
    println!("window and clears the moment the books balance again.");
}
