//! E7 — the lock substrate, and the §4.4 deadlock-free →
//! starvation-free booster.
//!
//! Reports acquisitions/s and per-thread fairness for every lock in
//! `cso-locks`, including `StarvationFree<TasLock>` — the exact
//! mechanism Figure 3 uses for its slow path. The interesting
//! comparison: boosting a TAS lock costs some throughput but repairs
//! its fairness.

use std::sync::atomic::Ordering;

use cso_bench::jsonreport::BenchReport;
use cso_bench::measure::{timed_run, RunResult};
use cso_bench::report::{fmt_rate, Table};
use cso_bench::{cell_duration, thread_counts};
use cso_locks::{
    Anonymous, ClhLock, LamportFastLock, McsLock, OsLock, ProcLock, StarvationFree, TasLock,
    TicketLock, TournamentLock, TtasLock,
};

fn drive(lock: &(impl ProcLock + ?Sized), threads: usize) -> RunResult {
    timed_run(threads, cell_duration(), |thread, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            lock.lock(thread);
            // Tiny critical section.
            std::hint::black_box(ops);
            lock.unlock(thread);
            ops += 1;
        }
        ops
    })
}

fn main() {
    let threads = *thread_counts().last().unwrap_or(&4);
    println!("E7: lock substrate at {threads} threads, empty critical section");
    println!("({} ms per cell)\n", cell_duration().as_millis());

    let mut table = Table::new(&[
        "lock", "acq/s", "min ops", "max ops", "max/min", "jain", "progress",
    ]);

    let mut run = |name: &str, progress: &str, lock: &dyn ProcLock| {
        let result = drive(lock, threads);
        let min = result.min_ops().max(1);
        table.row(vec![
            name.to_owned(),
            fmt_rate(result.ops_per_sec()),
            result.min_ops().to_string(),
            result.max_ops().to_string(),
            format!("{:.2}", result.max_ops() as f64 / min as f64),
            format!("{:.4}", result.jain_index()),
            progress.to_owned(),
        ]);
    };

    run(
        "tas",
        "deadlock-free",
        &Anonymous::new(TasLock::new(), threads),
    );
    run(
        "ttas+backoff",
        "deadlock-free",
        &Anonymous::new(TtasLock::new(), threads),
    );
    run(
        "ticket",
        "starvation-free",
        &Anonymous::new(TicketLock::new(), threads),
    );
    run(
        "os(parking_lot)",
        "deadlock-free",
        &Anonymous::new(OsLock::new(), threads),
    );
    run("clh", "starvation-free", &ClhLock::new(threads));
    run("mcs", "starvation-free", &McsLock::new(threads));
    run(
        "peterson-tree",
        "starvation-free",
        &TournamentLock::new(threads),
    );
    run(
        "lamport-fast",
        "deadlock-free",
        &LamportFastLock::new(threads),
    );
    run(
        "tas + §4.4 booster",
        "starvation-free",
        &StarvationFree::new(TasLock::new(), threads),
    );

    table.print();

    BenchReport::new("e7_locks")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("threads", threads as u64)
        .table("rows", &table)
        .write();

    println!("\nExpected shape: the §4.4 booster trades some raw rate for fairness —");
    println!("its max/min must be far tighter than bare tas; queue locks (ticket,");
    println!("clh, mcs) are fair by construction.");
    cso_bench::tracing::emit("e7_locks");
}
