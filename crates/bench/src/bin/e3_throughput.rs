//! E3/E4 throughput series — stack implementations across thread
//! counts.
//!
//! The performance story the paper argues for: the
//! contention-sensitive stack should track the lock-free stacks when
//! contention is rare (here: 1 thread, or high think time) while the
//! fully locked baselines pay the lock on every operation.

use cso_bench::adapters::{drive_stack, prefill_stack, stack_suite};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_metrics::Json;

fn main() {
    println!("E3: stack throughput (ops/s), 50/50 push/pop, prefilled half");
    println!("({} ms per cell)\n", cell_duration().as_millis());

    let threads_list = thread_counts();
    let mut headers: Vec<String> = vec!["impl".into()];
    headers.extend(threads_list.iter().map(|t| format!("{t} thr")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    // One fresh suite per thread count (so prefill and stats are
    // clean); iterate implementation-major for the table rows.
    let names: Vec<&'static str> = stack_suite(8192, 32).iter().map(|s| s.name()).collect();
    let mut rows: Vec<Vec<String>> = names.iter().map(|n| vec![(*n).to_owned()]).collect();
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); names.len()];

    for &threads in &threads_list {
        let suite = stack_suite(8192, threads.max(1));
        for (i, stack) in suite.iter().enumerate() {
            prefill_stack(stack.as_ref(), 4096);
            let result = drive_stack(stack.as_ref(), threads, cell_duration(), OpMix::BALANCED, 0);
            rows[i].push(fmt_rate(result.ops_per_sec()));
            rates[i].push(result.ops_per_sec());
        }
    }

    for row in rows {
        table.row(row);
    }
    table.print();

    let json_rows: Vec<Json> = names
        .iter()
        .zip(rates.iter())
        .map(|(name, per_thread)| {
            let mut row = Json::obj().field("impl", *name);
            for (&threads, &rate) in threads_list.iter().zip(per_thread.iter()) {
                row = row.field(&format!("threads_{threads}"), rate);
            }
            row
        })
        .collect();
    BenchReport::new("e3_throughput")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .config(
            "threads",
            Json::Arr(threads_list.iter().map(|&t| Json::U64(t as u64)).collect()),
        )
        .metric("ops_per_sec", Json::Arr(json_rows))
        .write();

    println!("\nExpected shape: at 1 thread the lock-free family (cs, nb, treiber)");
    println!("clusters together and beats the lock(...) rows; under contention the");
    println!("cs-stack must stay within the lock-free cluster (its lock engages only");
    println!("when operations actually interfere).");
    cso_bench::tracing::emit("e3_throughput");
}
