//! E12 — flat combining on the slow path.
//!
//! Both variants run with the fast path compiled *out*
//! ([`CsConfig::without_fast_path`]), so every operation goes through
//! the slow path and the experiment isolates what happens under the
//! lock:
//!
//! * `slow/plain` — the paper's slow path: each operation takes the
//!   §4.4-boosted lock, applies its own weak op, releases;
//! * `slow/combining` — the lock winner serves every request posted
//!   in the publication list before releasing
//!   ([`CsConfig::with_combining`]).
//!
//! Under real contention one lock tenure amortizes over the whole
//! pending batch, so combining throughput should *rise* (or at least
//! hold) with the thread count while the plain lock's hand-off costs
//! grow. The acceptance bar is combining ≥ 1.5× plain at ≥ 8 threads.
//!
//! Besides the table, the run writes a machine-readable
//! `results/BENCH_e12_combining.json` in the shared report shape
//! (`CSO_BENCH_OUT_DIR` overrides the directory) so CI can validate
//! the numbers.

use cso_bench::adapters::{drive_stack, prefill_stack, BenchStack};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_core::{CombiningStats, CsConfig};
use cso_locks::TasLock;
use cso_metrics::Json;
use cso_stack::{CsStack, PushOutcome};

/// A forced-slow-path stack under one of the two slow-path designs.
struct SlowPathAdapter {
    label: &'static str,
    stack: CsStack<u32>,
}

impl SlowPathAdapter {
    fn new(label: &'static str, n: usize, config: CsConfig) -> SlowPathAdapter {
        SlowPathAdapter {
            label,
            stack: CsStack::with_config(65_000, TasLock::new(), n, config),
        }
    }
}

impl BenchStack for SlowPathAdapter {
    fn name(&self) -> &'static str {
        self.label
    }

    fn push(&self, proc: usize, value: u32) -> bool {
        self.stack.push(proc, value) == PushOutcome::Pushed
    }

    fn pop(&self, proc: usize) -> Option<u32> {
        self.stack.pop(proc).into_option()
    }

    fn locked_fraction(&self) -> Option<f64> {
        Some(self.stack.path_stats().locked_fraction())
    }
}

/// One measured cell: both variants at one thread count.
struct Cell {
    threads: usize,
    plain_ops_per_sec: f64,
    combining_ops_per_sec: f64,
    combining: CombiningStats,
}

impl Cell {
    fn speedup(&self) -> f64 {
        if self.plain_ops_per_sec > 0.0 {
            self.combining_ops_per_sec / self.plain_ops_per_sec
        } else {
            0.0
        }
    }
}

fn measure(threads: usize) -> Cell {
    let duration = cell_duration();

    let plain = SlowPathAdapter::new("slow/plain", threads, CsConfig::PAPER.without_fast_path());
    prefill_stack(&plain, 16_384);
    plain.stack.reset_path_stats();
    let plain_run = drive_stack(&plain, threads, duration, OpMix::BALANCED, 0);

    let combining = SlowPathAdapter::new(
        "slow/combining",
        threads,
        CsConfig::PAPER.without_fast_path().with_combining(),
    );
    prefill_stack(&combining, 16_384);
    combining.stack.reset_path_stats();
    let combining_run = drive_stack(&combining, threads, duration, OpMix::BALANCED, 0);

    Cell {
        threads,
        plain_ops_per_sec: plain_run.ops_per_sec(),
        combining_ops_per_sec: combining_run.ops_per_sec(),
        combining: combining.stack.combining_stats(),
    }
}

fn json_cells(cells: &[Cell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|cell| {
                Json::obj()
                    .field("threads", cell.threads as u64)
                    .field("plain_ops_per_sec", cell.plain_ops_per_sec)
                    .field("combining_ops_per_sec", cell.combining_ops_per_sec)
                    .field("speedup", cell.speedup())
                    .field("batches", cell.combining.batches)
                    .field("combined", cell.combining.combined)
                    .field("max_batch", cell.combining.max_batch)
                    .field("avg_batch", cell.combining.avg_batch())
            })
            .collect(),
    )
}

fn main() {
    println!("E12: plain-lock vs flat-combining slow path (fast path disabled)");
    println!("({} ms per cell, 50/50 mix)\n", cell_duration().as_millis());

    let cells: Vec<Cell> = thread_counts().into_iter().map(measure).collect();

    let mut table = Table::new(&[
        "threads",
        "plain ops/s",
        "combining ops/s",
        "speedup",
        "batches",
        "avg batch",
        "max batch",
    ]);
    for cell in &cells {
        table.row(vec![
            cell.threads.to_string(),
            fmt_rate(cell.plain_ops_per_sec),
            fmt_rate(cell.combining_ops_per_sec),
            format!("{:.2}x", cell.speedup()),
            cell.combining.batches.to_string(),
            format!("{:.2}", cell.combining.avg_batch()),
            cell.combining.max_batch.to_string(),
        ]);
    }
    table.print();

    BenchReport::new("e12_combining")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .metric("cells", json_cells(&cells))
        .write();

    println!("\nReading: with the fast path off, every operation pays the lock.");
    println!("Plain hand-off serializes lock acquisitions; combining amortizes one");
    println!("acquisition over the whole posted batch, so the gap widens with the");
    println!("thread count (avg batch tracks how many requests a tenure serves).");
    cso_bench::tracing::emit("e12_combining");
}
