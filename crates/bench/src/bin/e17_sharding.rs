//! E17 — sharded elastic multi-lane scaling.
//!
//! The question: past what the escalation ladder can absorb, does
//! splitting one Figure-3 cell into N independent lanes behind the
//! cso-shard router actually buy throughput — and what does each
//! ordering discipline pay for it?
//!
//! Three parts:
//!
//! 1. **Amortized sweep** (fast path on): single cell vs strict and
//!    relaxed sharding across the thread grid. On a machine with more
//!    threads than cores the fast path rarely aborts, so these rows
//!    cluster — the sweep documents that sharding costs nothing when
//!    contention is cheap.
//! 2. **Forced-contention sweep** — the acceptance regime, E12/E13
//!    precedent: the fast path is forced off and a fixed
//!    [`Fault::Delay`] is armed inside the lock-held section
//!    (`cs::locked`), modelling a critical section with real latency
//!    (I/O, page faults, long combine batches). A single cell
//!    serializes every delay behind one lock; relaxed lanes overlap
//!    them, so throughput scales with the lane count even on one core
//!    — while strict mode's order latch serializes lane selection
//!    *across* lanes and stays at the single-cell floor (the "order
//!    tax" the k-relaxed mode exists to dodge). The run **asserts**
//!    `relaxed/8 ≥ 4× cell` whenever a 32-thread cell is present.
//! 3. **Solo budget audit**: a solo push/pop through every sharded
//!    mode (strict, relaxed, elastic-contracted) must cost exactly the
//!    Theorem-1 budget of the underlying cell — 6 counted accesses for
//!    the stack, 7 for the queue. Asserted unconditionally.
//!
//! Besides the tables, the run writes a machine-readable
//! `results/BENCH_e17_sharding.json` in the shared report shape
//! (`CSO_BENCH_OUT_DIR` overrides the directory) so CI can validate
//! the numbers.

use std::time::Duration;

use cso_bench::adapters::{drive_stack, prefill_stack, BenchStack};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_memory::chaos::{self, Fault, Plan};
use cso_memory::CountScope;
use cso_metrics::Json;
use cso_queue::{DequeueOutcome, EnqueueOutcome};
use cso_shard::{ShardConfig, ShardedCsQueue, ShardedCsStack};
use cso_stack::{CsStack, PopOutcome, PushOutcome};

const CAPACITY: usize = 8192;
const PREFILL: usize = CAPACITY / 2;
/// Simulated in-lock latency for the forced sweep.
const LOCK_DELAY: Duration = Duration::from_micros(50);

/// One variant of the sweep: a single cell or a sharded wrapper.
/// A handful of these exist per sweep and the benchmark loop matches
/// through a reference, so boxing the large variant would only add a
/// pointer hop to the measured path.
#[allow(clippy::large_enum_variant)]
enum Subject {
    Cell(CsStack<u32>),
    Shard(ShardedCsStack<u32>),
}

struct Variant {
    label: &'static str,
    subject: Subject,
}

impl Variant {
    fn cell(cs: CsConfig, n: usize) -> Variant {
        Variant {
            label: "cell",
            subject: Subject::Cell(CsStack::with_config(CAPACITY, TasLock::new(), n, cs)),
        }
    }

    fn shard(label: &'static str, config: ShardConfig, n: usize) -> Variant {
        Variant {
            label,
            subject: Subject::Shard(ShardedCsStack::new(CAPACITY, n, config)),
        }
    }

    fn shard_stats(&self) -> Option<cso_shard::RouterStats> {
        match &self.subject {
            Subject::Cell(_) => None,
            Subject::Shard(s) => Some(s.router_stats()),
        }
    }
}

impl BenchStack for Variant {
    fn name(&self) -> &'static str {
        self.label
    }

    fn push(&self, proc: usize, value: u32) -> bool {
        match &self.subject {
            Subject::Cell(s) => s.push(proc, value) == PushOutcome::Pushed,
            Subject::Shard(s) => s.push(proc, value) == PushOutcome::Pushed,
        }
    }

    fn pop(&self, proc: usize) -> Option<u32> {
        match &self.subject {
            Subject::Cell(s) => s.pop(proc).into_option(),
            Subject::Shard(s) => s.pop(proc).into_option(),
        }
    }
}

/// The variant grid for one sweep. `k = CAPACITY` keeps every relaxed
/// lane at its natural `capacity / lanes` size, so the configured
/// relaxation bound is what the lane layout implies.
fn variants(cs: CsConfig, n: usize) -> Vec<Variant> {
    vec![
        Variant::cell(cs, n),
        Variant::shard("strict/2", ShardConfig::strict(2).with_cs(cs), n),
        Variant::shard("strict/8", ShardConfig::strict(8).with_cs(cs), n),
        Variant::shard(
            "relaxed/2",
            ShardConfig::relaxed(2, CAPACITY).with_cs(cs),
            n,
        ),
        Variant::shard(
            "relaxed/4",
            ShardConfig::relaxed(4, CAPACITY).with_cs(cs),
            n,
        ),
        Variant::shard(
            "relaxed/8",
            ShardConfig::relaxed(8, CAPACITY).with_cs(cs),
            n,
        ),
        Variant::shard(
            "elastic/8",
            ShardConfig::relaxed(8, CAPACITY).with_elastic().with_cs(cs),
            n,
        ),
    ]
}

/// Runs one sweep over the thread grid; returns (labels, rates) with
/// `rates[variant][thread_idx]`, plus the router stats of the elastic
/// variant at the widest thread count.
#[allow(clippy::type_complexity)]
fn sweep(
    threads_list: &[usize],
    cs: CsConfig,
) -> (
    Vec<&'static str>,
    Vec<Vec<f64>>,
    Option<cso_shard::RouterStats>,
) {
    let labels: Vec<&'static str> = variants(cs, 1).iter().map(|v| v.label).collect();
    let mut rates: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    let mut elastic_stats = None;
    for &threads in threads_list {
        for (i, variant) in variants(cs, threads.max(1)).into_iter().enumerate() {
            prefill_stack(&variant, PREFILL);
            let run = drive_stack(&variant, threads, cell_duration(), OpMix::BALANCED, 0);
            rates[i].push(run.ops_per_sec());
            if variant.label == "elastic/8" {
                elastic_stats = variant.shard_stats();
            }
        }
    }
    (labels, rates, elastic_stats)
}

fn print_sweep(title: &str, threads_list: &[usize], labels: &[&str], rates: &[Vec<f64>]) {
    println!("{title}");
    let mut headers: Vec<String> = vec!["impl".into()];
    headers.extend(threads_list.iter().map(|t| format!("{t} thr")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for (label, row) in labels.iter().zip(rates) {
        let mut cells = vec![(*label).to_owned()];
        cells.extend(row.iter().map(|&r| fmt_rate(r)));
        table.row(cells);
    }
    table.print();
    println!();
}

fn json_rows(threads_list: &[usize], labels: &[&str], rates: &[Vec<f64>]) -> Json {
    Json::Arr(
        labels
            .iter()
            .zip(rates)
            .map(|(label, row)| {
                let mut obj = Json::obj().field("impl", *label);
                for (&threads, &rate) in threads_list.iter().zip(row) {
                    obj = obj.field(&format!("threads_{threads}"), rate);
                }
                obj
            })
            .collect(),
    )
}

/// Solo counted-access budgets through every sharded mode: the router
/// must be invisible to Theorem 1.
fn audit_budgets() -> Json {
    chaos::reset();
    let configs = [
        ("strict", ShardConfig::strict(4)),
        ("relaxed", ShardConfig::relaxed(4, 8)),
        ("elastic", ShardConfig::relaxed(4, 8).with_elastic()),
    ];
    let mut out = Json::obj();
    for (name, config) in configs {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(16, 2, config);
        let scope = CountScope::start();
        assert_eq!(stack.push(0, 7), PushOutcome::Pushed);
        let push_cost = scope.take().total();
        let scope = CountScope::start();
        assert_eq!(stack.pop(0), PopOutcome::Popped(7));
        let pop_cost = scope.take().total();
        assert_eq!(push_cost, 6, "{name}: solo sharded push must cost 6");
        assert_eq!(pop_cost, 6, "{name}: solo sharded pop must cost 6");

        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(16, 2, config);
        let scope = CountScope::start();
        assert_eq!(queue.enqueue(0, 7), EnqueueOutcome::Enqueued);
        let enq_cost = scope.take().total();
        let scope = CountScope::start();
        assert_eq!(queue.dequeue(0), DequeueOutcome::Dequeued(7));
        let deq_cost = scope.take().total();
        assert_eq!(enq_cost, 7, "{name}: solo sharded enqueue must cost 7");
        assert_eq!(deq_cost, 7, "{name}: solo sharded dequeue must cost 7");

        out = out.field(
            name,
            Json::obj()
                .field("stack_push", push_cost)
                .field("stack_pop", pop_cost)
                .field("queue_enqueue", enq_cost)
                .field("queue_dequeue", deq_cost),
        );
        println!(
            "  {name:>8}: stack {push_cost}/{pop_cost}, queue {enq_cost}/{deq_cost} counted accesses"
        );
    }
    out
}

fn stats_json(stats: &cso_shard::RouterStats) -> Json {
    Json::obj()
        .field("pushes", stats.pushes)
        .field("pops", stats.pops)
        .field("steals", stats.steals)
        .field("spills", stats.spills)
        .field("splits", stats.splits)
        .field("merges", stats.merges)
        .field("heals", stats.heals)
        .field("active_lanes", stats.active_lanes as u64)
}

fn main() {
    let threads_list = thread_counts();
    println!("E17: sharded elastic multi-lane scaling, 50/50 push/pop, prefilled half");
    println!(
        "({} ms per cell, capacity {CAPACITY}, k = capacity for relaxed lanes)\n",
        cell_duration().as_millis()
    );

    println!("Solo budget audit (router must preserve Theorem 1 exactly):");
    let budgets = audit_budgets();
    println!();

    // Part 1: fast path on — sharding must not cost anything when the
    // cell absorbs contention on its own.
    chaos::reset();
    let (labels, amortized, _) = sweep(&threads_list, CsConfig::PAPER);
    print_sweep(
        "Amortized sweep (fast path on):",
        &threads_list,
        &labels,
        &amortized,
    );

    // Part 2: forced contention — fast path off, a fixed delay inside
    // every lock tenure. One cell serializes the delays; relaxed lanes
    // overlap them.
    chaos::reset();
    chaos::arm_plan("cs::locked", Plan::one_in(Fault::Delay(LOCK_DELAY), 1));
    let (_, forced, elastic_stats) = sweep(&threads_list, CsConfig::PAPER.without_fast_path());
    chaos::reset();
    print_sweep(
        &format!(
            "Forced-contention sweep (fast path off, {}us in-lock delay):",
            LOCK_DELAY.as_micros()
        ),
        &threads_list,
        &labels,
        &forced,
    );

    let cell_row = labels.iter().position(|&l| l == "cell").expect("cell row");
    let relaxed8_row = labels
        .iter()
        .position(|&l| l == "relaxed/8")
        .expect("relaxed/8 row");
    let mut speedup_at_32 = None;
    if let Some(t32) = threads_list.iter().position(|&t| t == 32) {
        let speedup = forced[relaxed8_row][t32] / forced[cell_row][t32];
        println!("relaxed/8 over cell at 32 threads (forced): {speedup:.2}x");
        assert!(
            speedup >= 4.0,
            "acceptance: relaxed/8 must be >= 4x the single cell at 32 threads \
             under forced contention (got {speedup:.2}x)"
        );
        speedup_at_32 = Some(speedup);
    } else {
        println!("(32-thread cell absent — raise CSO_MAX_THREADS to arm the 4x assertion)");
    }

    if let Some(ref stats) = elastic_stats {
        println!(
            "elastic/8 at {} threads: active {} lanes, {} splits, {} merges, \
             {} steals, {} spills",
            threads_list.last().unwrap_or(&0),
            stats.active_lanes,
            stats.splits,
            stats.merges,
            stats.steals,
            stats.spills
        );
    }

    let mut report = BenchReport::new("e17_sharding")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .config("capacity", CAPACITY as u64)
        .config("lock_delay_us", LOCK_DELAY.as_micros() as u64)
        .config(
            "threads",
            Json::Arr(threads_list.iter().map(|&t| Json::U64(t as u64)).collect()),
        )
        .metric("solo_budgets", budgets)
        .metric(
            "amortized_ops_per_sec",
            json_rows(&threads_list, &labels, &amortized),
        )
        .metric(
            "forced_ops_per_sec",
            json_rows(&threads_list, &labels, &forced),
        );
    if let Some(speedup) = speedup_at_32 {
        report = report.metric("forced_speedup_relaxed8_at_32", speedup);
    }
    if let Some(ref stats) = elastic_stats {
        report = report.metric("elastic_router", stats_json(stats));
    }
    report.write();

    println!("\nReading: the solo audit pins the router's fast-path cost at zero");
    println!("counted accesses. Amortized rows cluster (the cell already absorbs");
    println!("cheap contention); the forced sweep is where lanes matter — relaxed");
    println!("sharding overlaps lock tenures that a single cell must serialize,");
    println!("while strict mode pays the order latch and stays at the floor. The");
    println!("elastic variant should converge on the relaxed/8 row once the gate");
    println!("fans out, and fold back to one lane (six-access solo budget intact)");
    println!("when contention drains.");
    cso_bench::tracing::emit("e17_sharding");
}
