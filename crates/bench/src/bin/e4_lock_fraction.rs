//! E4 — how often does the contention-sensitive stack actually lock?
//!
//! Sweeps threads × think time and reports the fraction of operations
//! that fell back to the lock path (lines 04–13 of Figure 3). The
//! contention-sensitivity claim is that this fraction tracks *actual*
//! interference: zero when solo, shrinking as think time grows.

use cso_bench::adapters::{drive_stack, prefill_stack, CsAdapter};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_pct, fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_stack::CsStack;

fn main() {
    println!("E4: fraction of cs-stack operations taking the lock path");
    println!(
        "(50/50 mix, prefilled half, {} ms per cell)\n",
        cell_duration().as_millis()
    );

    let think_list = [0u32, 64, 512, 4096];
    let mut headers: Vec<String> = vec!["threads".into()];
    headers.extend(think_list.iter().map(|t| format!("think={t}")));
    headers.push("ops/s (think=0)".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for threads in thread_counts() {
        let mut cells = vec![threads.to_string()];
        let mut rate_at_zero = String::new();
        for &think in &think_list {
            let adapter = CsAdapter(CsStack::new(8192, threads.max(1)));
            prefill_stack(&adapter, 4096);
            adapter.0.reset_path_stats();
            let result = drive_stack(&adapter, threads, cell_duration(), OpMix::BALANCED, think);
            let fraction = adapter.0.path_stats().locked_fraction();
            if threads == 1 {
                assert_eq!(fraction, 0.0, "a solo thread must never take the lock");
            }
            cells.push(fmt_pct(fraction));
            if think == 0 {
                rate_at_zero = fmt_rate(result.ops_per_sec());
            }
        }
        cells.push(rate_at_zero);
        table.row(cells);
    }

    table.print();
    let wall_clock_table = table;
    println!("\nRow `threads = 1` is Theorem 1's lock-free fast path (must be 0.00%).");
    println!("Longer think time = less interference = smaller lock fraction.");
    println!("NOTE: on few-core hosts wall-clock interleaving is quantum-grained, so");
    println!("the measured fractions under-state contention; part 2 interleaves per");
    println!("shared access in the virtual-memory model.\n");

    // ----------------------------------------------------------------
    // Part 2: per-access interleaving of the full Figure 3 machine.
    // An operation that completed in exactly 6 accesses took the fast
    // path; more means it retried or went through the lock.
    // ----------------------------------------------------------------
    println!("E4 part 2: slow-path fraction under per-access random interleaving");
    println!("(Figure 3 machines, 400 random schedules per cell)\n");

    use cso_explore::algos::cs_stack::{cs_stack_layout, strong_stack_factory};
    use cso_explore::explorer::{explore_random, ExploreConfig};
    use cso_lincheck::specs::stack::SpecStackOp;

    let mut table = Table::new(&["procs", "ops", "fast (6 acc)", "slow", "slow fraction"]);
    for procs in 1..=4usize {
        let layout = cs_stack_layout(64, procs);
        let scripts: Vec<Vec<SpecStackOp>> = (0..procs)
            .map(|p| vec![SpecStackOp::Push(p as u32), SpecStackOp::Pop])
            .collect();
        let mut fast = 0u64;
        let mut slow = 0u64;
        let config = ExploreConfig {
            max_steps_per_op: 20_000,
            max_executions: usize::MAX,
        };
        explore_random(
            &layout.initial_mem_with(&[1, 2]),
            &scripts,
            strong_stack_factory(layout),
            &config,
            400,
            0xE4,
            |t| {
                for op in &t.op_steps {
                    if op.steps == 6 {
                        fast += 1;
                    } else {
                        slow += 1;
                    }
                }
            },
        );
        if procs == 1 {
            assert_eq!(slow, 0, "a solo process never leaves the fast path");
        }
        table.row(vec![
            procs.to_string(),
            (fast + slow).to_string(),
            fast.to_string(),
            slow.to_string(),
            fmt_pct(slow as f64 / (fast + slow) as f64),
        ]);
    }
    table.print();

    BenchReport::new("e4_lock_fraction")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .config("model_schedules", 400u64)
        .table("wall_clock", &wall_clock_table)
        .table("model_interleaved", &table)
        .write();

    println!("\nContention-sensitivity, quantified: the lock engages exactly as often");
    println!("as operations actually interfere.");
    cso_bench::tracing::emit("e4_lock_fraction");
}
