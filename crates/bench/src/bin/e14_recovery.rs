//! E14 — crash tolerance: kill-at-every-step recovery of the slow
//! path (`--features chaos`).
//!
//! §5 of the paper concedes that a process crashing inside the
//! critical section wedges the Figure 3 transformation forever. This
//! experiment arms `Fault::StallForever` at every fail point a
//! slow-path operation crosses — before the lock, waiting at
//! FLAG/TURN, holding the lock, releasing it, after posting a
//! publication record, and mid-combining with claimed records — and
//! *never* revives the victim. With a [`RecoveryPolicy`] configured,
//! the survivors must:
//!
//! * complete every one of their own operations (bounded
//!   time-to-recover, reported per kill site);
//! * keep the exactly-once guarantee: the victim's marker value is on
//!   the stack iff the kill landed *after* its operation applied;
//! * recover through the cheapest sufficient mechanism — nothing for a
//!   pre-lock death, a TURN unwedge for a FLAG/TURN death, one lock
//!   succession for an under-lock death, one tombstone for an orphaned
//!   publication record.
//!
//! Run with `cargo run --release --features chaos --bin e14_recovery`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cso_bench::jsonreport::BenchReport;
use cso_bench::report::Table;
use cso_core::{CsConfig, RecoveryPolicy};
use cso_locks::TasLock;
use cso_memory::chaos::{self, Fault, Plan};
use cso_stack::{CsStack, PopOutcome, PushOutcome};

const THREADS: usize = 4;
/// Suspicion is lease-driven in this experiment (no explicit
/// `mark_dead`): recovery starts only after the victim's heartbeat
/// goes `GRACE` stale, so time-to-recover genuinely includes failure
/// *detection*, not just the takeover.
const GRACE: Duration = Duration::from_millis(25);
const POLICY: RecoveryPolicy = RecoveryPolicy {
    grace: GRACE,
    max_successions: 8,
    backoff: Duration::from_millis(1),
};

/// The victim's value: on the stack afterwards iff the kill site is
/// past the point where its operation applied.
const MARKER: u32 = 9_000_000;
/// The first survivor operation after the kill — its latency is the
/// reported time-to-recover.
const FIRST: u32 = 8_000_000;
/// Post-recovery burst, per surviving process.
const BURST: u32 = 200;
/// Any recovery slower than this is a wedge, not a recovery.
const TTR_CEILING: Duration = Duration::from_secs(5);

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        thread::sleep(Duration::from_millis(1));
    }
}

fn recovering_stack(combining: bool) -> Arc<CsStack<u32>> {
    let base = if combining {
        CsConfig::COMBINING
    } else {
        CsConfig::PAPER
    };
    // No fast path: every operation must cross the kill site.
    let config = base.without_fast_path().with_recovery(POLICY);
    Arc::new(CsStack::with_config(8192, TasLock::new(), THREADS, config))
}

/// Drains on a throwaway thread so the flood of pop events lands in
/// its own trace ring instead of evicting the (rare, interesting)
/// recovery events from the caller's.
fn drain(stack: &CsStack<u32>, proc: usize) -> Vec<u32> {
    thread::scope(|s| {
        s.spawn(move || {
            let mut out = Vec::new();
            while let PopOutcome::Popped(v) = stack.pop(proc) {
                out.push(v);
            }
            out
        })
        .join()
        .expect("the drain does not panic")
    })
}

/// What each kill site must cost, and whether the victim's operation
/// counts as applied.
struct Expect {
    successions: u64,
    reclaimed: u64,
    marker_applied: bool,
}

/// One kill: park a victim forever at `site`, then let the survivors
/// recover. Returns the time-to-recover in milliseconds.
#[allow(clippy::needless_pass_by_value)]
fn kill_scenario(
    label: &str,
    site: &'static str,
    combining: bool,
    past_grace: bool,
    expect: Expect,
    table: &mut Table,
) -> f64 {
    let stack = recovering_stack(combining);
    let fired = chaos::fires(site);
    chaos::arm_plan(site, Plan::once(Fault::StallForever));

    // The victim: parked forever at the fail point, never revived.
    // The thread (and its Arc) leak by design — a fail-stop crash.
    {
        let stack = Arc::clone(&stack);
        thread::spawn(move || {
            let _ = stack.push(0, MARKER);
        });
    }
    wait_until(site, || chaos::fires(site) > fired);
    if past_grace {
        // Orphaned-record reclamation is suspicion-gated: until the
        // victim's lease expires, a combiner *helps* its record (the
        // operation would complete normally). Wait the lease out so
        // the sweep must tombstone instead.
        thread::sleep(GRACE * 3);
    }

    // Time-to-recover: the first survivor operation after the kill.
    let t0 = Instant::now();
    assert_eq!(stack.push(1, FIRST), PushOutcome::Pushed, "{label}: wedged");
    let ttr = t0.elapsed();
    assert!(ttr < TTR_CEILING, "{label}: recovery took {ttr:?}");

    // Post-recovery burst: every survivor completes every operation.
    thread::scope(|s| {
        for proc in 1..THREADS {
            let stack = &stack;
            s.spawn(move || {
                let p = proc as u32;
                for i in 0..BURST {
                    assert_eq!(stack.push(proc, p * 10_000 + i), PushOutcome::Pushed);
                }
            });
        }
    });

    let stats = stack.recovery_stats().expect("recovery is configured");
    assert_eq!(stats.successions, expect.successions, "{label}");
    assert_eq!(stats.reclaimed, expect.reclaimed, "{label}");
    assert!(!stats.failed, "{label}: budget of 8 must absorb one crash");
    assert!(!stack.is_poisoned(), "{label}");

    // Conservation: exactly the survivors' values, plus the marker iff
    // the kill landed after the victim's push applied.
    let drained = drain(&stack, 1);
    let mut want: BTreeSet<u32> = (1..THREADS as u32)
        .flat_map(|p| (0..BURST).map(move |i| p * 10_000 + i))
        .collect();
    want.insert(FIRST);
    if expect.marker_applied {
        want.insert(MARKER);
    }
    assert_eq!(drained.len(), want.len(), "{label}: lost or duplicated");
    let got: BTreeSet<u32> = drained.into_iter().collect();
    assert_eq!(got, want, "{label}: wrong survivors");

    let ttr_ms = ttr.as_secs_f64() * 1e3;
    table.row(vec![
        label.to_string(),
        site.to_string(),
        format!("{ttr_ms:.2}"),
        stats.successions.to_string(),
        stats.reclaimed.to_string(),
        if expect.marker_applied { "yes" } else { "no" }.to_string(),
    ]);
    ttr_ms
}

/// The hardest kill: a *combiner* parked forever between claiming
/// another process's record and applying it. The survivor must seize
/// the corpse's lock tenure, poison the orphaned claims (possibly its
/// own record's), repost, and finish its workload — with every value
/// applied at most once.
fn combiner_kill(table: &mut Table) -> f64 {
    const OPS: u32 = 2_000;
    const PROBE: u32 = 8_500_000;
    for _attempt in 0..10 {
        let stack = recovering_stack(true);
        let fired = chaos::fires("cs::combine");
        chaos::arm_plan("cs::combine", Plan::once(Fault::StallForever));
        let done: Arc<[AtomicBool; 2]> = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
        for proc in 0..2u32 {
            let stack = Arc::clone(&stack);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for i in 0..OPS {
                    let v = proc * 1_000_000 + i;
                    assert_eq!(stack.push(proc as usize, v), PushOutcome::Pushed);
                }
                done[proc as usize].store(true, Ordering::Release);
            });
        }
        // The fail point only fires on a tenure that actually claimed
        // a record; with two posters racing that is near-certain, but
        // retry from scratch if both workers drain without a kill.
        let killed = loop {
            if chaos::fires("cs::combine") > fired {
                break true;
            }
            if done[0].load(Ordering::Acquire) && done[1].load(Ordering::Acquire) {
                break false;
            }
            thread::sleep(Duration::from_millis(1));
        };
        if !killed {
            continue;
        }

        // One worker is now parked forever holding the lock, with the
        // other worker's record claimed and unapplied.
        let t0 = Instant::now();
        assert_eq!(stack.push(2, PROBE), PushOutcome::Pushed, "combiner wedge");
        let ttr = t0.elapsed();
        assert!(ttr < TTR_CEILING, "combiner succession took {ttr:?}");
        wait_until("the surviving worker", || {
            done[0].load(Ordering::Acquire) || done[1].load(Ordering::Acquire)
        });
        let survivor: u32 = u32::from(done[1].load(Ordering::Acquire));
        let victim = 1 - survivor;

        let stats = stack.recovery_stats().expect("recovery is configured");
        assert_eq!(stats.successions, 1, "exactly one seizure of the corpse");
        assert!(
            stack.fault_stats().record_poisoned >= 1,
            "the orphaned claim must be poisoned and reposted"
        );
        assert!(!stats.failed);

        // Exactly-once: no duplicates; the survivor's and prober's
        // values all present; the victim applied some prefix.
        let drained = drain(&stack, 3);
        let got: BTreeSet<u32> = drained.iter().copied().collect();
        assert_eq!(got.len(), drained.len(), "a value applied twice");
        assert!(got.contains(&PROBE));
        for i in 0..OPS {
            assert!(
                got.contains(&(survivor * 1_000_000 + i)),
                "survivor value {i} lost"
            );
        }
        let victim_applied = (0..OPS)
            .filter(|i| got.contains(&(victim * 1_000_000 + i)))
            .count();
        assert!(victim_applied < OPS as usize, "the victim was parked");

        let ttr_ms = ttr.as_secs_f64() * 1e3;
        table.row(vec![
            "combiner dies mid-batch".to_string(),
            "cs::combine".to_string(),
            format!("{ttr_ms:.2}"),
            stats.successions.to_string(),
            stats.reclaimed.to_string(),
            format!("{victim_applied}/{OPS} ops"),
        ]);
        return ttr_ms;
    }
    panic!("cs::combine never fired in 10 attempts");
}

fn main() {
    cso_trace::install_chaos_hook();
    println!("E14: crash recovery of the slow path, one kill per site");
    println!(
        "({THREADS} threads, grace {}ms, backoff {}ms, succession budget {}, victims never revived)\n",
        GRACE.as_millis(),
        POLICY.backoff.as_millis(),
        POLICY.max_successions,
    );

    let mut table = Table::new(&[
        "scenario",
        "kill site",
        "ttr ms",
        "successions",
        "reclaimed",
        "victim op applied",
    ]);
    let mut max_ttr: f64 = 0.0;
    let mut cell = |ttr: f64| max_ttr = max_ttr.max(ttr);

    cell(kill_scenario(
        "dies before the lock",
        "cs::lock-wait",
        false,
        false,
        Expect {
            successions: 0,
            reclaimed: 0,
            marker_applied: false,
        },
        &mut table,
    ));
    cell(kill_scenario(
        "dies waiting at FLAG/TURN",
        "sfree::wait",
        false,
        false,
        Expect {
            successions: 0,
            reclaimed: 0,
            marker_applied: false,
        },
        &mut table,
    ));
    cell(kill_scenario(
        "dies holding the lock",
        "cs::locked",
        false,
        false,
        Expect {
            successions: 1,
            reclaimed: 0,
            marker_applied: false,
        },
        &mut table,
    ));
    cell(kill_scenario(
        "dies releasing the lock",
        "sfree::unlock",
        false,
        false,
        Expect {
            successions: 1,
            reclaimed: 0,
            marker_applied: true,
        },
        &mut table,
    ));
    cell(kill_scenario(
        "dies after posting a record",
        "cs::post",
        true,
        true,
        Expect {
            successions: 0,
            reclaimed: 1,
            marker_applied: false,
        },
        &mut table,
    ));
    cell(combiner_kill(&mut table));

    table.print();

    BenchReport::new("e14_recovery")
        .config("threads", THREADS as u64)
        .config("grace_ms", GRACE.as_millis() as u64)
        .config("backoff_ms", POLICY.backoff.as_millis() as u64)
        .config("max_successions", u64::from(POLICY.max_successions))
        .config("burst_per_survivor", u64::from(BURST))
        .metric("max_recover_ms", max_ttr)
        .table("scenarios", &table)
        .write();

    println!("\nReading the table:");
    println!("- `ttr ms` is the first survivor operation's latency after the kill — it includes");
    println!(
        "  lease-expiry failure detection (grace {}ms), so sub-grace rows are kills that",
        GRACE.as_millis()
    );
    println!("  needed no suspicion at all;");
    println!("- `successions` / `reclaimed` show the cheapest sufficient mechanism was used:");
    println!("  nothing pre-lock, a TURN unwedge at FLAG/TURN, one custody seizure under the");
    println!("  lock, one tombstone for the orphaned record;");
    println!("- `victim op applied` pins the exactly-once boundary: the marker survives the");
    println!("  drain iff the kill landed after the victim's operation applied.");
    cso_bench::tracing::emit("e14_recovery");
}
