//! E2 — abortability: ⊥ appears only under contention and grows with
//! it.
//!
//! Drives the bare abortable stack (Figure 1) with 1..N threads and
//! reports the fraction of weak operations that returned ⊥. The
//! one-thread row is the paper's solo-success guarantee: its abort
//! rate must be exactly zero.

use std::sync::atomic::Ordering;

use cso_bench::jsonreport::BenchReport;
use cso_bench::measure::timed_run;
use cso_bench::report::{fmt_pct, fmt_rate, Table};
use cso_bench::workload::{thread_rng, OpMix};
use cso_bench::{cell_duration, thread_counts};
use cso_stack::AbortableStack;

fn main() {
    println!("E2: weak-operation abort rate vs offered contention");
    println!(
        "(abortable stack, 50/50 push/pop, {} ms per cell)\n",
        cell_duration().as_millis()
    );

    let mut table = Table::new(&[
        "threads",
        "attempts/s",
        "push aborts",
        "pop aborts",
        "abort rate",
    ]);

    for threads in thread_counts() {
        let stack: AbortableStack<u32> = AbortableStack::new(8192);
        for v in 0..64 {
            stack.weak_push(v).expect("prefill");
        }
        stack.reset_abort_stats();

        let result = timed_run(threads, cell_duration(), |thread, stop| {
            let mut rng = thread_rng(thread, 2);
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if OpMix::BALANCED.next_is_push(&mut rng) {
                    let _ = stack.weak_push(thread as u32);
                } else {
                    let _ = stack.weak_pop();
                }
                ops += 1;
            }
            ops
        });

        let stats = stack.abort_stats();
        if threads == 1 {
            assert_eq!(
                stats.abort_rate(),
                0.0,
                "solo weak operations must never abort"
            );
        }
        table.row(vec![
            threads.to_string(),
            fmt_rate(result.ops_per_sec()),
            stats.push_aborts.to_string(),
            stats.pop_aborts.to_string(),
            fmt_pct(stats.abort_rate()),
        ]);
    }

    table.print();
    let wall_clock_table = table;
    println!("\nRow `threads = 1` is the paper's solo-success guarantee (rate must be 0).");
    println!("NOTE: on few-core hosts threads interleave only at scheduler quanta, so");
    println!("wall-clock contention windows are rare; part 2 interleaves per access.\n");

    // ----------------------------------------------------------------
    // Part 2: per-access interleaving in the virtual-memory model —
    // the hardware-independent abort-rate curve.
    // ----------------------------------------------------------------
    println!("E2 part 2: abort rate under per-access random interleaving (model)");
    println!("(weak stack machines, 400 random schedules per cell)\n");

    use cso_explore::algos::stack::{stack_layout, weak_stack_factory};
    use cso_explore::explorer::{explore_random, ExploreConfig};
    use cso_lincheck::specs::stack::SpecStackOp;

    let mut table = Table::new(&["procs", "ops", "aborted", "abort rate"]);
    for procs in 1..=6usize {
        let layout = stack_layout(64);
        let scripts: Vec<Vec<SpecStackOp>> = (0..procs)
            .map(|p| {
                vec![
                    SpecStackOp::Push(p as u32),
                    SpecStackOp::Pop,
                    SpecStackOp::Push(100 + p as u32),
                    SpecStackOp::Pop,
                ]
            })
            .collect();
        let mut total_ops = 0u64;
        let mut aborted = 0u64;
        explore_random(
            &layout.initial_mem_with(&[1, 2, 3, 4]),
            &scripts,
            weak_stack_factory(layout),
            &ExploreConfig::default(),
            400,
            0xE2,
            |t| {
                total_ops += t.op_steps.len() as u64;
                aborted += t.op_steps.iter().filter(|s| s.aborted).count() as u64;
            },
        );
        if procs == 1 {
            assert_eq!(aborted, 0, "solo weak operations must never abort");
        }
        table.row(vec![
            procs.to_string(),
            total_ops.to_string(),
            aborted.to_string(),
            fmt_pct(aborted as f64 / total_ops as f64),
        ]);
    }
    table.print();

    BenchReport::new("e2_abort_rate")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .config("model_schedules", 400u64)
        .table("wall_clock", &wall_clock_table)
        .table("model_interleaved", &table)
        .write();

    println!("\nExpected shape: 0% solo, growing with the number of interleaved");
    println!("processes — ⊥ is the price of contention, and only of contention.");
    cso_bench::tracing::emit("e2_abort_rate");
}
