//! E6 — the queue family and the non-interference property.
//!
//! Part 1: throughput of the queue suite (mirrors E3).
//! Part 2: the paper's §1.1 example made measurable — one enqueuer and
//! one dequeuer on a half-full queue never abort each other (abort
//! rate 0), while two same-end threads do conflict.

use std::sync::atomic::Ordering;

use cso_bench::adapters::{drive_queue, prefill_queue, queue_suite};
use cso_bench::jsonreport::BenchReport;
use cso_bench::measure::timed_run;
use cso_bench::report::{fmt_pct, fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_queue::AbortableQueue;

fn main() {
    println!("E6 part 1: queue throughput (ops/s), 50/50 enq/deq, prefilled half");
    println!("({} ms per cell)\n", cell_duration().as_millis());

    let threads_list = thread_counts();
    let mut headers: Vec<String> = vec!["impl".into()];
    headers.extend(threads_list.iter().map(|t| format!("{t} thr")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let names: Vec<&'static str> = queue_suite(8192, 32).iter().map(|q| q.name()).collect();
    let mut rows: Vec<Vec<String>> = names.iter().map(|n| vec![(*n).to_owned()]).collect();
    for &threads in &threads_list {
        let suite = queue_suite(8192, threads.max(1));
        for (i, queue) in suite.iter().enumerate() {
            prefill_queue(queue.as_ref(), 4096);
            let result = drive_queue(queue.as_ref(), threads, cell_duration(), OpMix::BALANCED, 0);
            rows[i].push(fmt_rate(result.ops_per_sec()));
        }
    }
    for row in rows {
        table.row(row);
    }
    table.print();
    let throughput_table = table;

    println!("\nE6 part 2: non-interference (§1.1) — weak-op abort rates by pairing");
    println!(
        "(abortable queue, half-full, 2 threads, {} ms per cell)\n",
        cell_duration().as_millis()
    );

    let mut table = Table::new(&["pairing", "enq aborts", "deq aborts", "abort rate"]);

    // Pairing A: one enqueuer + one dequeuer (opposite ends).
    for (label, roles) in [
        ("enqueuer + dequeuer", [true, false]),
        ("two enqueuers", [true, true]),
        ("two dequeuers", [false, false]),
    ] {
        let queue: AbortableQueue<u32> = AbortableQueue::new(8192);
        for v in 0..4096 {
            queue.weak_enqueue(v).expect("prefill");
        }
        queue.reset_abort_stats();
        timed_run(2, cell_duration(), |thread, stop| {
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if roles[thread] {
                    let _ = queue.weak_enqueue(thread as u32);
                } else {
                    let _ = queue.weak_dequeue();
                }
                ops += 1;
            }
            ops
        });
        let stats = queue.abort_stats();
        if label == "enqueuer + dequeuer" {
            assert_eq!(
                stats.abort_rate(),
                0.0,
                "opposite-end operations must never abort each other"
            );
        }
        table.row(vec![
            label.to_owned(),
            stats.enq_aborts.to_string(),
            stats.deq_aborts.to_string(),
            fmt_pct(stats.abort_rate()),
        ]);
    }

    table.print();

    BenchReport::new("e6_queue")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("mix", "50/50")
        .table("throughput", &throughput_table)
        .table("non_interference", &table)
        .write();

    println!("\nThe `enqueuer + dequeuer` row must read 0.00%: enqueue CASes only TAIL,");
    println!("dequeue only HEAD — the paper's non-interfering operations, realized.");
    cso_bench::tracing::emit("e6_queue");
}
