//! E8 — ablating Figure 3's mechanisms.
//!
//! Three variants of the contention-sensitive stack:
//! * `cs/paper` — Figure 3 verbatim;
//! * `cs/no-flag` — without the `CONTENTION` register (lines
//!   01/07/09): every operation attempts the fast path even while a
//!   lock holder works, so weak-op abort storms grow;
//! * `cs/unfair` — without the `FLAG`/`TURN` booster (lines
//!   04–05/10–11): the slow path degrades to the bare deadlock-free
//!   lock, so fairness collapses under pressure.
//!
//! Plus the contention-free cost of each (the no-flag variant saves
//! the one `CONTENTION` read; locking everything costs the most).

use cso_bench::adapters::{drive_stack, prefill_stack, BenchStack, CsConfigAdapter};
use cso_bench::jsonreport::BenchReport;
use cso_bench::report::{fmt_pct, fmt_rate, Table};
use cso_bench::workload::OpMix;
use cso_bench::{cell_duration, thread_counts};
use cso_core::CsConfig;
use cso_memory::counting::CountScope;

fn variants(threads: usize) -> Vec<CsConfigAdapter> {
    vec![
        CsConfigAdapter::new("cs/paper", 8192, threads, CsConfig::PAPER),
        CsConfigAdapter::new("cs/no-flag", 8192, threads, CsConfig::NO_FLAG),
        CsConfigAdapter::new("cs/unfair", 8192, threads, CsConfig::UNFAIR),
    ]
}

fn main() {
    let threads = *thread_counts().last().unwrap_or(&4);
    println!("E8: Figure 3 mechanism ablations at {threads} threads, 50/50 mix");
    println!("({} ms per cell)\n", cell_duration().as_millis());

    let mut table = Table::new(&[
        "variant",
        "solo accesses/op",
        "ops/s",
        "lock fraction",
        "max/min",
        "jain",
    ]);

    for adapter in variants(threads) {
        // Contention-free cost (one thread, counted).
        adapter.push(0, 1);
        let scope = CountScope::start();
        const SOLO: u64 = 10_000;
        for i in 0..SOLO {
            if i % 2 == 0 {
                adapter.push(0, i as u32);
            } else {
                adapter.pop(0);
            }
        }
        let solo = scope.take().total() as f64 / SOLO as f64;

        // Contended run.
        prefill_stack(&adapter, 4096);
        let result = drive_stack(&adapter, threads, cell_duration(), OpMix::BALANCED, 0);
        let min = result.min_ops().max(1);
        table.row(vec![
            adapter.name().to_owned(),
            format!("{solo:.2}"),
            fmt_rate(result.ops_per_sec()),
            fmt_pct(adapter.locked_fraction().unwrap_or(0.0)),
            format!("{:.2}", result.max_ops() as f64 / min as f64),
            format!("{:.4}", result.jain_index()),
        ]);
    }

    table.print();

    BenchReport::new("e8_ablation")
        .config("bench_ms", cell_duration().as_millis() as u64)
        .config("threads", threads as u64)
        .config("mix", "50/50")
        .table("rows", &table)
        .write();

    println!("\nReading: cs/no-flag shaves the solo cost to 5 accesses but loses the");
    println!("contention gate; cs/unfair keeps the fast path but lets the slow path");
    println!("starve threads (max/min, jain). The paper configuration is the");
    println!("balanced point: 6 solo accesses, gated fallback, starvation-free.");
    cso_bench::tracing::emit("e8_ablation");
}
