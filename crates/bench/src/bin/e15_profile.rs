//! E15 — continuous profiling: harvester losslessness and causal
//! (what-if) bottleneck ranking.
//!
//! Three phases, each with a hard assertion (the binary exits nonzero
//! on violation, so CI can gate on it):
//!
//! 1. **Drops without harvest** — a burst workload overflows every
//!    per-thread probe ring several times with no consumer: the drop
//!    gauge must go nonzero. This is the control showing the rings
//!    really do lose history on their own.
//! 2. **Losslessness under harvest** — the same volume (≥ 10x ring
//!    capacity per thread), paced, with a [`cso_profile::Harvester`]
//!    draining on a 2 ms cadence: the drop gauge must read 0 and the
//!    aggregator must ingest **exactly** the emitted-event delta — the
//!    stream is complete, not merely mostly-complete. The live span
//!    aggregate is printed and embedded in the report.
//! 3. **Causal ranking** — a forced-slow workload
//!    ([`CsConfig::without_fast_path`]) makes the §4.4 lock the known
//!    throughput bound. The causal scanner virtually speeds up each
//!    probe-site class in turn; the two lock classes (`flag-wait`,
//!    whose `lock-acquire` probe sits inside the tenure, and
//!    `lock-handoff`, whose `lock-release` probe does too) must occupy
//!    the top two ranks, and each must strictly outrank `cas-retry`
//!    and `combining` (which the workload barely exercises).
//!
//! Writes `results/BENCH_e15_profile.json` in the shared report shape.
//! Requires `--features trace` (the probe rings are the subject under
//! test).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cso_bench::jsonreport::BenchReport;
use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_metrics::Json;
use cso_profile::causal::{scan, CausalConfig};
use cso_profile::{Harvester, LiveAggregator};
use cso_stack::CsStack;
use cso_trace::probe;
use cso_trace::SiteClass;

/// Worker threads (each gets its own probe ring).
const THREADS: usize = 4;

/// Mirrors `cso-trace`'s per-thread ring capacity (not exported; the
/// losslessness claim only needs a lower bound, so a stale value here
/// would weaken the test, not break it).
const RING_CAPACITY: u64 = 4096;

/// How many times over each ring must overflow in the harvested phase.
const OVERFLOW_FACTOR: u64 = 10;

fn stack(config: CsConfig) -> Arc<CsStack<u32>> {
    let s = Arc::new(CsStack::with_config(
        65_000,
        TasLock::new(),
        THREADS,
        config,
    ));
    for i in 0..16_384 {
        let _ = s.push(0, i);
    }
    s
}

/// Runs `ops` alternating push/pop on `proc`'s behalf. `paced` sleeps
/// 1 ms every 32 ops, bounding the burst any ring sees between harvest
/// passes (and yielding the CPU so the harvester keeps its cadence on
/// a single-core box).
fn run_ops(stack: &CsStack<u32>, proc: usize, ops: u64, paced: bool) {
    for i in 0..ops {
        if i % 2 == 0 {
            let _ = stack.push(proc, i as u32);
        } else {
            let _ = stack.pop(proc);
        }
        if paced && i % 32 == 31 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn spawn_fixed(stack: &Arc<CsStack<u32>>, ops: u64, paced: bool) {
    let workers: Vec<_> = (0..THREADS)
        .map(|proc| {
            let stack = Arc::clone(stack);
            std::thread::spawn(move || run_ops(&stack, proc, ops, paced))
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
}

fn main() {
    println!("E15: continuous profiling — harvester losslessness + causal ranking");
    println!("({THREADS} threads, {RING_CAPACITY}-slot rings)\n");

    // ---- Phase 1: no harvester => the rings overwrite history. ----
    let s = stack(CsConfig::PAPER);
    probe::clear();
    // Unpaced burst, ~3x ring capacity of events per thread (a fast
    // op records at least attempt + completion).
    spawn_fixed(&s, 3 * RING_CAPACITY / 2, false);
    let unharvested_drops = probe::dropped();
    println!("phase 1 (no harvest): drop gauge = {unharvested_drops}");
    assert!(
        unharvested_drops > 0,
        "overflowing rings with no consumer must drop"
    );

    // ---- Phase 2: harvester on => the same rings become lossless. --
    probe::clear();
    let emitted_before = probe::emitted();
    let agg = Arc::new(LiveAggregator::new());
    let harvester = Harvester::start_with(Arc::clone(&agg), Duration::from_millis(2));
    // >= OVERFLOW_FACTOR x ring capacity of events per thread, paced.
    spawn_fixed(&s, OVERFLOW_FACTOR * RING_CAPACITY / 2, true);
    let agg = harvester.stop();
    let emitted = probe::emitted() - emitted_before;
    let harvested_drops = probe::dropped();
    let snap = agg.snapshot();
    println!(
        "phase 2 (harvest @2ms): emitted {emitted} events (~{}x ring capacity per thread), \
         ingested {}, lost {}, drop gauge = {harvested_drops}",
        emitted / (THREADS as u64 * RING_CAPACITY),
        agg.ingested(),
        snap.lost,
    );
    assert!(
        emitted >= THREADS as u64 * OVERFLOW_FACTOR * RING_CAPACITY,
        "phase 2 must overflow each ring >= {OVERFLOW_FACTOR}x (emitted {emitted})"
    );
    assert_eq!(harvested_drops, 0, "harvester kept pace: drop gauge is 0");
    assert_eq!(snap.lost, 0, "no harvest pass observed loss");
    assert_eq!(
        agg.ingested(),
        emitted,
        "every emitted event reached the aggregator exactly once"
    );
    assert!(snap.spans > 0, "the live aggregator reconstructed spans");
    println!("\nlive aggregate:\n{}", snap.render_text());

    // ---- Phase 3: causal ranking on a forced-slow workload. --------
    probe::clear();
    let slow = stack(CsConfig::PAPER.without_fast_path());
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..THREADS)
        .map(|proc| {
            let slow = Arc::clone(&slow);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if i % 2 == 0 {
                        let _ = slow.push(proc, i as u32);
                    } else {
                        let _ = slow.pop(proc);
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    let config = CausalConfig {
        window: Duration::from_millis(100),
        settle: Duration::from_millis(10),
        delay_ns: 20_000,
        rounds: 2,
    };
    let counter = Arc::clone(&ops);
    let report = scan(move || counter.load(Ordering::Relaxed), &config);
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().expect("worker");
    }
    println!("{}", report.render_text());
    let gain_of = |class: SiteClass| -> f64 {
        report
            .gains
            .iter()
            .find(|g| g.class == class)
            .map(|g| g.virtual_speedup(report.baseline_ops))
            .unwrap_or(0.0)
    };
    // The known bottleneck is the lock: both `lock-acquire` (class
    // flag-wait) and `lock-release` (class lock-handoff) are probed
    // inside the tenure, so those two classes carry the delays that
    // serialize everyone and must occupy the top of the ranking —
    // first place between them is a near-tie by construction.
    let lock_classes = [SiteClass::FlagWait, SiteClass::LockHandoff];
    assert!(
        lock_classes.contains(&report.bottleneck().expect("nonempty ranking")),
        "forced-slow workload: a lock class bounds throughput\n{}",
        report.render_text()
    );
    assert!(
        lock_classes.contains(&report.ranking()[1]),
        "both lock classes rank above the cold classes\n{}",
        report.render_text()
    );
    for lock_class in lock_classes {
        for cold_class in [SiteClass::CasRetry, SiteClass::Combining] {
            assert!(
                gain_of(lock_class) > gain_of(cold_class),
                "{} ({:+.3}) must outrank {} ({:+.3})",
                lock_class.name(),
                gain_of(lock_class),
                cold_class.name(),
                gain_of(cold_class),
            );
        }
    }
    probe::clear();

    BenchReport::new("e15_profile")
        .config("threads", THREADS as u64)
        .config("ring_capacity", RING_CAPACITY)
        .config("overflow_factor", OVERFLOW_FACTOR)
        .config("harvest_cadence_ms", 2u64)
        .config("causal_delay_ns", u64::from(config.delay_ns))
        .config("causal_window_ms", config.window.as_millis() as u64)
        .config("causal_rounds", u64::from(config.rounds))
        .metric(
            "losslessness",
            Json::obj()
                .field("unharvested_drops", unharvested_drops)
                .field("emitted", emitted)
                .field("ingested", agg.ingested())
                .field("lost", snap.lost)
                .field("dropped", harvested_drops)
                .field(
                    "overflow_factor_seen",
                    emitted as f64 / (THREADS as f64 * RING_CAPACITY as f64),
                ),
        )
        .metric("live_aggregate", snap.to_json())
        .metric("causal", report.to_json())
        .write();

    println!("\nReading: phase 1 shows the rings genuinely lose history without a");
    println!("consumer; phase 2 shows the background harvester turns the same volume");
    println!("lossless (drop gauge 0, aggregator count == emitted count) while the");
    println!("span aggregate stays live. Phase 3 injects calibrated delays at every");
    println!("probe-site class except one and ranks the exclusions: on a workload");
    println!("where every operation waits for the lock, virtually speeding up the");
    println!("lock's own probe sites buys the most throughput — the causal profiler");
    println!("finds the bottleneck the workload was built around.");
}
