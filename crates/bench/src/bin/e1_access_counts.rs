//! E1 — shared-memory access counts of contention-free operations.
//!
//! Reproduces the paper's step-complexity claims:
//! * Theorem 1: a contention-free `strong_push`/`strong_pop` performs
//!   **6** shared accesses and uses no lock;
//! * §3 / Figure 1: a solo `weak_push`/`weak_pop` performs **5**;
//! * ref \[16\]: Lamport's fast mutex acquires+releases solo in **7**.
//!
//! Every count is *measured* through `cso_memory::counting`, averaged
//! over many operations so a single stray access cannot hide.

use cso_bench::jsonreport::BenchReport;
use cso_bench::report::Table;
use cso_core::CsConfig;
use cso_locks::{LamportFastLock, ProcLock, RawLock, TasLock, TicketLock};
use cso_memory::counting::CountScope;
use cso_queue::{AbortableQueue, CsQueue};
use cso_stack::{AbortableStack, CsStack};

const OPS: u64 = 100_000;

fn measure(label: &str, claim: &str, table: &mut Table, mut op: impl FnMut()) {
    // Warm up (first op on a fresh object may take a boundary path).
    op();
    let scope = CountScope::start();
    for _ in 0..OPS {
        op();
    }
    let counts = scope.take();
    let per_op = counts.total() as f64 / OPS as f64;
    table.row(vec![
        label.to_owned(),
        format!("{:.3}", counts.reads as f64 / OPS as f64),
        format!("{:.3}", counts.writes as f64 / OPS as f64),
        format!("{:.3}", counts.cas as f64 / OPS as f64),
        format!("{per_op:.3}"),
        claim.to_owned(),
    ]);
}

fn main() {
    println!("E1: shared-memory accesses per contention-free operation");
    println!("(measured over {OPS} solo operations each)\n");

    let mut table = Table::new(&[
        "operation",
        "reads",
        "writes",
        "cas",
        "total",
        "paper claim",
    ]);

    // --- Figure 1: weak operations, 5 accesses. ---
    let stack: AbortableStack<u32> = AbortableStack::new(1024);
    let mut toggle = false;
    measure("weak_push + weak_pop (avg)", "5 (§3)", &mut table, || {
        // Alternate so the stack stays near-empty and never hits the
        // Full/Empty early exits.
        if toggle {
            stack.weak_pop().expect("solo never aborts");
        } else {
            stack.weak_push(1).expect("solo never aborts");
        }
        toggle = !toggle;
    });

    // --- Figure 3: strong operations, 6 accesses, no lock. ---
    let cs: CsStack<u32> = CsStack::new(1024, 4);
    let mut toggle = false;
    measure(
        "strong_push + strong_pop (avg)",
        "6 (Theorem 1)",
        &mut table,
        || {
            if toggle {
                cs.pop(0);
            } else {
                cs.push(0, 1);
            }
            toggle = !toggle;
        },
    );
    assert_eq!(
        cs.path_stats().locked,
        0,
        "Theorem 1: no lock in contention-free runs"
    );

    // --- Ablation: without the CONTENTION register it is 5. ---
    let no_flag: CsStack<u32> = CsStack::with_config(1024, TasLock::new(), 4, CsConfig::NO_FLAG);
    let mut toggle = false;
    measure(
        "strong ops, no CONTENTION flag",
        "5 (ablation)",
        &mut table,
        || {
            if toggle {
                no_flag.pop(0);
            } else {
                no_flag.push(0, 1);
            }
            toggle = !toggle;
        },
    );

    // --- The queue analogue: 6 weak / 7 strong. ---
    let queue: AbortableQueue<u32> = AbortableQueue::new(1024);
    let mut toggle = false;
    measure(
        "weak_enqueue + weak_dequeue (avg)",
        "6 (queue ext.)",
        &mut table,
        || {
            if toggle {
                queue.weak_dequeue().expect("solo never aborts");
            } else {
                queue.weak_enqueue(1).expect("solo never aborts");
            }
            toggle = !toggle;
        },
    );

    let csq: CsQueue<u32> = CsQueue::new(1024, 4);
    let mut toggle = false;
    measure(
        "strong enqueue + dequeue (avg)",
        "7 (queue ext.)",
        &mut table,
        || {
            if toggle {
                csq.dequeue(0);
            } else {
                csq.enqueue(0, 1);
            }
            toggle = !toggle;
        },
    );

    // --- Locks: Lamport fast (7), TAS (2), ticket (3ish). ---
    let lamport = LamportFastLock::new(8);
    measure(
        "LamportFast lock+unlock",
        "7 (ref [16])",
        &mut table,
        || {
            lamport.lock(0);
            lamport.unlock(0);
        },
    );

    let tas = TasLock::new();
    measure("TAS lock+unlock", "2 (swap+write)", &mut table, || {
        tas.lock();
        tas.unlock();
    });

    let ticket = TicketLock::new();
    measure(
        "Ticket lock+unlock",
        "4 (2 RMW + 2 r/w)",
        &mut table,
        || {
            ticket.lock();
            ticket.unlock();
        },
    );

    // --- Contrast: the HLM deque's boundary scan is O(capacity) ---
    // (the deque earns its place through the liveness hierarchy, not
    // through step complexity — see DESIGN.md).
    for capacity in [4usize, 64, 1024] {
        let deque: cso_deque::AbortableDeque<u32> = cso_deque::AbortableDeque::new(capacity);
        deque.try_push(cso_deque::End::Right, 0).unwrap();
        let mut toggle = false;
        measure(
            &format!("HLM deque push+pop, cap {capacity}"),
            "O(capacity) scan",
            &mut table,
            || {
                if toggle {
                    deque.try_pop(cso_deque::End::Right).expect("solo");
                } else {
                    deque.try_push(cso_deque::End::Right, 1).expect("solo");
                }
                toggle = !toggle;
            },
        );
    }

    table.print();

    BenchReport::new("e1_access_counts")
        .config("ops_per_cell", OPS)
        .table("rows", &table)
        .write();

    println!("\nNote: the paper's §1.2 announces \"seven\" accesses for the stack while");
    println!("Theorem 1 proves six; the measured six matches the theorem. The seven");
    println!("matches Lamport's fast mutex (ref [16]), measured above.");
    cso_bench::tracing::emit("e1_access_counts");
}
