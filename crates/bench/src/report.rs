//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-column table printed to stdout, matching the row
/// format recorded in `EXPERIMENTS.md`.
///
/// ```
/// use cso_bench::report::Table;
///
/// let mut table = Table::new(&["impl", "threads", "ops/s"]);
/// table.row(vec!["cs-stack".into(), "4".into(), "1.2M".into()]);
/// let rendered = table.render();
/// assert!(rendered.contains("cs-stack"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as an aligned string.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < columns {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The column headers (for JSON re-serialization of the rows).
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Iterates the data rows in insertion order.
    pub fn rows_iter(&self) -> impl Iterator<Item = &Vec<String>> {
        self.rows.iter()
    }
}

/// Formats a rate with engineering suffixes (`1.23M ops/s` style
/// numbers without the unit).
#[must_use]
pub fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(532.0), "532");
        assert_eq!(fmt_rate(15_300.0), "15.3k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_rate(3.1e9), "3.10G");
        assert_eq!(fmt_pct(0.1234), "12.34%");
    }
}
