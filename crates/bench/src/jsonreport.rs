//! Uniform machine-readable experiment reports.
//!
//! Every `e*` binary finishes by assembling a [`BenchReport`] and
//! calling [`BenchReport::write`], producing
//! `results/BENCH_<experiment>.json` with the shared shape
//!
//! ```json
//! {
//!   "experiment": "e3_throughput",
//!   "config": {"bench_ms": 300, "mix": "50/50"},
//!   "metrics": {"rows": [{"impl": "cs-stack", "ops_per_sec": 1.2e6}]}
//! }
//! ```
//!
//! `cso-analyze bench-validate` checks every `BENCH_*.json` against
//! exactly this schema (top-level object, string `experiment`, object
//! `config`, object `metrics`), and `cso-analyze bench-summary` folds
//! the directory into `results/BENCH_summary.json`.
//!
//! Environment knobs: `CSO_BENCH_OUT_DIR` overrides the output
//! directory (default: the checked-in `results/` at the repo root).

use std::path::PathBuf;

use cso_metrics::Json;

use crate::report::Table;

/// Builder for one experiment's JSON report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    experiment: String,
    config: Vec<(String, Json)>,
    metrics: Vec<(String, Json)>,
}

impl BenchReport {
    /// An empty report for `experiment` (e.g. `"e3_throughput"` —
    /// also the `BENCH_<experiment>.json` file stem).
    #[must_use]
    pub fn new(experiment: &str) -> BenchReport {
        BenchReport {
            experiment: experiment.to_owned(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds one configuration entry (thread counts, cell duration,
    /// workload mix, …: the knobs that shaped the run).
    #[must_use]
    pub fn config(mut self, key: &str, value: impl Into<Json>) -> BenchReport {
        self.config.push((key.to_owned(), value.into()));
        self
    }

    /// Adds one measured metric entry.
    #[must_use]
    pub fn metric(mut self, key: &str, value: impl Into<Json>) -> BenchReport {
        self.metrics.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a rendered [`Table`] under `key` as an array of row
    /// objects keyed by the column headers, with best-effort typing:
    /// cells that parse as integers or floats become JSON numbers,
    /// everything else stays a string (so `"1.2M"`-style rendered
    /// rates survive verbatim).
    #[must_use]
    pub fn table(self, key: &str, table: &Table) -> BenchReport {
        let rows: Vec<Json> = table
            .rows_iter()
            .map(|row| {
                let fields = table
                    .headers()
                    .iter()
                    .zip(row.iter())
                    .map(|(h, cell)| (h.clone(), typed_cell(cell)))
                    .collect();
                Json::Obj(fields)
            })
            .collect();
        self.metric(key, Json::Arr(rows))
    }

    /// The report as a JSON value (the exact on-disk shape).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("experiment", self.experiment.as_str())
            .field("config", Json::Obj(self.config.clone()))
            .field("metrics", Json::Obj(self.metrics.clone()))
    }

    /// Where [`BenchReport::write`] will put this report:
    /// `$CSO_BENCH_OUT_DIR/BENCH_<experiment>.json`, defaulting to the
    /// repo's checked-in `results/` directory.
    #[must_use]
    pub fn default_path(&self) -> PathBuf {
        let dir = std::env::var_os("CSO_BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
            });
        dir.join(format!("BENCH_{}.json", self.experiment))
    }

    /// Writes the report to [`BenchReport::default_path`], printing
    /// the destination (or the error — a read-only checkout must not
    /// kill the experiment run).
    pub fn write(&self) {
        let path = self.default_path();
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, self.to_json().render_pretty()) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
        }
    }
}

/// Best-effort typed parse of one rendered table cell.
fn typed_cell(cell: &str) -> Json {
    if let Ok(v) = cell.parse::<u64>() {
        return Json::U64(v);
    }
    if let Ok(v) = cell.parse::<i64>() {
        return Json::I64(v);
    }
    if let Ok(v) = cell.parse::<f64>() {
        return Json::F64(v);
    }
    Json::Str(cell.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_matches_the_shared_schema() {
        let mut table = Table::new(&["impl", "ops"]);
        table.row(vec!["cs-stack".into(), "123".into()]);
        let report = BenchReport::new("e_test")
            .config("bench_ms", 50u64)
            .config("mix", "50/50")
            .table("rows", &table)
            .metric("speedup", 1.5f64);
        let json = report.to_json();
        assert_eq!(
            json.get("experiment").and_then(Json::as_str),
            Some("e_test")
        );
        let config = json.get("config").unwrap();
        assert_eq!(config.get("bench_ms").and_then(Json::as_u64), Some(50));
        let rows = json
            .get("metrics")
            .and_then(|m| m.get("rows"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("impl").and_then(Json::as_str), Some("cs-stack"));
        assert_eq!(rows[0].get("ops").and_then(Json::as_u64), Some(123));
        // Round-trips through the parser.
        let reparsed = Json::parse(&json.render_pretty()).unwrap();
        assert_eq!(
            reparsed.get("experiment").and_then(Json::as_str),
            Some("e_test")
        );
    }

    #[test]
    fn cells_get_best_effort_types() {
        assert_eq!(typed_cell("42"), Json::U64(42));
        assert_eq!(typed_cell("-3"), Json::I64(-3));
        assert_eq!(typed_cell("2.5"), Json::F64(2.5));
        assert_eq!(typed_cell("1.2M"), Json::Str("1.2M".to_owned()));
    }
}
