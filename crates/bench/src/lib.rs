//! Benchmark harness for the `cso` workspace.
//!
//! The paper has no measured evaluation — its claims are analytic
//! (step counts, progress conditions) plus a performance argument
//! (contention-sensitivity beats always-locking when contention is
//! rare). `DESIGN.md` turns those into experiments E1–E8; this crate
//! provides the shared machinery and one binary per experiment:
//!
//! | Binary | Experiment |
//! |---|---|
//! | `e1_access_counts` | Theorem 1 / ref \[16\] shared-access counts |
//! | `e2_abort_rate` | abortability under contention |
//! | `e3_throughput` | stack throughput across implementations |
//! | `e4_lock_fraction` | fraction of operations taking the lock path |
//! | `e5_fairness` | per-thread fairness / starvation |
//! | `e6_queue` | queue family + non-interference |
//! | `e7_locks` | lock substrate comparison + §4.4 booster |
//! | `e8_ablation` | Figure 3 mechanism ablations |
//! | `e9_latency` | per-operation latency tails |
//! | `e10_chaos` | graceful degradation under injected faults |
//!
//! With `--features trace` every binary also collects the probe event
//! stream and exports it (see [`tracing`]).
//!
//! Environment knobs: `CSO_BENCH_MS` (milliseconds per measured cell,
//! default 300), `CSO_MAX_THREADS` (default 8), `CSO_TRACE_OUT`
//! (Chrome trace output path).

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod adapters;
pub mod jsonreport;
pub mod measure;
pub mod microbench;
pub mod report;
pub mod tracing;
pub mod workload;

use std::time::Duration;

/// Milliseconds each measured cell runs for (`CSO_BENCH_MS`, default
/// 300).
#[must_use]
pub fn cell_duration() -> Duration {
    let ms = std::env::var("CSO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// The thread counts swept by the scaling experiments
/// (`CSO_MAX_THREADS` caps the list, default 8).
#[must_use]
pub fn thread_counts() -> Vec<usize> {
    let max = std::env::var("CSO_MAX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64]
        .into_iter()
        .filter(|&t| t <= max)
        .collect()
}
