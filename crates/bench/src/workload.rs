//! Workload generation: operation mixes and think time.

use cso_memory::backoff::XorShift64;

/// A push/pop (or enqueue/dequeue) operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percentage of operations that are pushes/enqueues (0–100).
    pub push_pct: u32,
}

impl OpMix {
    /// The canonical 50/50 mix.
    pub const BALANCED: OpMix = OpMix { push_pct: 50 };
    /// Producer-only workload.
    pub const PUSH_ONLY: OpMix = OpMix { push_pct: 100 };
    /// Consumer-only workload.
    pub const POP_ONLY: OpMix = OpMix { push_pct: 0 };

    /// Draws the next operation kind: `true` = push.
    pub fn next_is_push(&self, rng: &mut XorShift64) -> bool {
        rng.next_below(100) < u64::from(self.push_pct)
    }
}

impl std::fmt::Display for OpMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.push_pct, 100 - self.push_pct)
    }
}

/// Spins for roughly `iters` pause instructions — the "think time"
/// separating an application's object operations. Longer think time =
/// lower offered contention (experiment E4's sweep axis).
#[inline]
pub fn think(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// A per-thread deterministic RNG, decorrelated across threads.
#[must_use]
pub fn thread_rng(thread: usize, seed: u64) -> XorShift64 {
    XorShift64::new(seed ^ ((thread as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_hit_their_ratio_approximately() {
        let mut rng = thread_rng(0, 7);
        let mut pushes = 0;
        for _ in 0..10_000 {
            if OpMix::BALANCED.next_is_push(&mut rng) {
                pushes += 1;
            }
        }
        assert!((4_000..6_000).contains(&pushes), "got {pushes}");
    }

    #[test]
    fn extreme_mixes_are_exact() {
        let mut rng = thread_rng(1, 7);
        for _ in 0..100 {
            assert!(OpMix::PUSH_ONLY.next_is_push(&mut rng));
            assert!(!OpMix::POP_ONLY.next_is_push(&mut rng));
        }
    }

    #[test]
    fn thread_rngs_are_decorrelated() {
        let a = thread_rng(0, 1).next_u64();
        let b = thread_rng(1, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_displays() {
        assert_eq!(OpMix::BALANCED.to_string(), "50/50");
        assert_eq!(OpMix { push_pct: 90 }.to_string(), "90/10");
    }

    #[test]
    fn think_returns() {
        think(0);
        think(100);
    }
}
