//! Fixed-duration throughput measurement.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// The outcome of one timed multi-thread run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Operations completed by each thread.
    pub per_thread: Vec<u64>,
    /// Wall-clock time actually measured, floored by the CPU time the
    /// process consumed divided by the core count (see
    /// [`process_cpu_time`]): a monotonic clock that slips under
    /// virtualization cannot make a cell look faster than the silicon.
    pub elapsed: Duration,
}

impl RunResult {
    /// Total operations completed.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.per_thread.iter().sum()
    }

    /// Aggregate throughput in operations per second.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64()
    }

    /// The least-served thread's operation count.
    #[must_use]
    pub fn min_ops(&self) -> u64 {
        self.per_thread.iter().copied().min().unwrap_or(0)
    }

    /// The most-served thread's operation count.
    #[must_use]
    pub fn max_ops(&self) -> u64 {
        self.per_thread.iter().copied().max().unwrap_or(0)
    }

    /// Jain's fairness index over per-thread counts: 1.0 = perfectly
    /// fair, `1/n` = one thread got everything.
    #[must_use]
    pub fn jain_index(&self) -> f64 {
        let n = self.per_thread.len() as f64;
        let sum: f64 = self.per_thread.iter().map(|&x| x as f64).sum();
        let sum_sq: f64 = self
            .per_thread
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }
}

/// Runs `body(thread_index, &stop)` on `threads` threads for
/// `duration`, after a common barrier. Each body returns the number of
/// operations it completed; bodies must poll `stop` and return
/// promptly once it is set.
///
/// ```
/// use cso_bench::measure::timed_run;
/// use std::sync::atomic::Ordering;
/// use std::time::Duration;
///
/// let result = timed_run(2, Duration::from_millis(20), |_thread, stop| {
///     let mut ops = 0;
///     while !stop.load(Ordering::Relaxed) {
///         ops += 1;
///     }
///     ops
/// });
/// assert_eq!(result.per_thread.len(), 2);
/// assert!(result.total_ops() > 0);
/// ```
pub fn timed_run<F>(threads: usize, duration: Duration, body: F) -> RunResult
where
    F: Fn(usize, &AtomicBool) -> u64 + Sync,
{
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let mut per_thread = vec![0u64; threads];
    let mut elapsed = Duration::ZERO;
    let cpu_before = process_cpu_time();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for thread in 0..threads {
            let body = &body;
            let stop = &stop;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                body(thread, stop)
            }));
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
        for (i, handle) in handles.into_iter().enumerate() {
            per_thread[i] = handle.join().expect("benchmark thread panicked");
        }
        elapsed = start.elapsed();
    });

    // Guard against guest-clock slip. Under virtualization (vCPU
    // steal, hypervisor pause/resume) CLOCK_MONOTONIC can advance far
    // less than the time the cell actually ran, inflating ops/s by an
    // order of magnitude in sporadic cells. Real wall time is never
    // less than the CPU time the process burned divided by the cores
    // it could burn it on, so floor `elapsed` there. On an honest
    // clock the floor is below the measurement (workers never exceed
    // full utilization) and this is a no-op.
    if let (Some(before), Some(after)) = (cpu_before, process_cpu_time()) {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1) as u32;
        let floor = after.saturating_sub(before) / cores;
        if floor > elapsed {
            elapsed = floor;
        }
    }

    RunResult {
        per_thread,
        elapsed,
    }
}

/// Total CPU time (user + system, all threads) this process has
/// consumed, from `/proc/self/stat`; `None` where unavailable.
///
/// Used by [`timed_run`] to bound clock-slip: utime/stime are fields
/// 14 and 15, counted in `USER_HZ` ticks (100/s on every mainstream
/// Linux — the kernel ABI froze the exported value decades ago).
#[must_use]
pub fn process_cpu_time() -> Option<Duration> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The comm field may contain spaces/parens: skip past the last ')'.
    let after_comm = stat.rsplit(')').next()?;
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Percentile summary of sampled operation latencies (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observed.
    pub max: u64,
    /// Number of samples.
    pub samples: usize,
}

/// Samples the latency of `op`, one invocation per sample, after
/// `warmup` unmeasured invocations.
///
/// Timer granularity on most systems is tens of nanoseconds — single
/// operations of a few nanoseconds are better measured with Criterion
/// (`cargo bench`); this sampler is for tail behaviour (p99/p999),
/// where preemption and slow paths dominate.
///
/// ```
/// use cso_bench::measure::sample_latency;
/// let summary = sample_latency(|| { std::hint::black_box(1 + 1); }, 1_000, 100);
/// assert_eq!(summary.samples, 1_000);
/// assert!(summary.p50 <= summary.p99 && summary.p99 <= summary.max);
/// ```
pub fn sample_latency(mut op: impl FnMut(), samples: usize, warmup: usize) -> LatencySummary {
    assert!(samples > 0, "need at least one sample");
    for _ in 0..warmup {
        op();
    }
    let mut laps: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        op();
        laps.push(start.elapsed().as_nanos() as u64);
    }
    laps.sort_unstable();
    let at = |q: f64| laps[((laps.len() - 1) as f64 * q) as usize];
    LatencySummary {
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
        p999: at(0.999),
        max: *laps.last().expect("non-empty"),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_ordered() {
        let summary = sample_latency(std::thread::yield_now, 500, 10);
        assert_eq!(summary.samples, 500);
        assert!(summary.p50 <= summary.p90);
        assert!(summary.p90 <= summary.p99);
        assert!(summary.p99 <= summary.p999);
        assert!(summary.p999 <= summary.max);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let _ = sample_latency(|| {}, 0, 0);
    }

    #[test]
    fn all_threads_report() {
        let result = timed_run(3, Duration::from_millis(30), |_t, stop| {
            let mut ops = 0;
            while !stop.load(Ordering::Relaxed) {
                std::thread::yield_now();
                ops += 1;
            }
            ops
        });
        assert_eq!(result.per_thread.len(), 3);
        assert!(result.total_ops() > 0);
        assert!(result.ops_per_sec() > 0.0);
        assert!(result.min_ops() <= result.max_ops());
    }

    #[test]
    fn process_cpu_time_is_monotonic_where_available() {
        let Some(before) = process_cpu_time() else {
            return; // not Linux: the guard is simply disabled
        };
        // Burn a little CPU so the counter has a chance to move.
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let after = process_cpu_time().expect("available above");
        assert!(after >= before, "{after:?} < {before:?}");
    }

    #[test]
    fn elapsed_never_understates_cpu_share() {
        // A busy 30 ms cell: the corrected elapsed must be at least the
        // cell's CPU share and at least the requested duration.
        let result = timed_run(2, Duration::from_millis(30), |_t, stop| {
            let mut ops = 0;
            while !stop.load(Ordering::Relaxed) {
                ops += 1;
            }
            ops
        });
        assert!(result.elapsed >= Duration::from_millis(30));
    }

    #[test]
    fn jain_index_bounds() {
        let balanced = RunResult {
            per_thread: vec![100, 100, 100],
            elapsed: Duration::from_secs(1),
        };
        assert!((balanced.jain_index() - 1.0).abs() < 1e-9);
        let skewed = RunResult {
            per_thread: vec![300, 0, 0],
            elapsed: Duration::from_secs(1),
        };
        assert!((skewed.jain_index() - 1.0 / 3.0).abs() < 1e-9);
        let empty = RunResult {
            per_thread: vec![0, 0],
            elapsed: Duration::from_secs(1),
        };
        assert_eq!(empty.jain_index(), 1.0);
    }
}
