//! Trace capture for the experiment binaries.
//!
//! Every `e*` binary finishes by calling [`emit`], which is a no-op in
//! untraced builds and, under `--features trace`, prints the event
//! summary table and writes a Chrome `trace_event` JSON next to the
//! target directory (open it in `chrome://tracing` or
//! <https://ui.perfetto.dev>). [`PathHists`] adds the per-path latency
//! dimension: each operation's wall time lands in the histogram of the
//! Figure 3 path it actually completed on, as reported by
//! [`cso_trace::probe::last_path`].
//!
//! Environment knobs: `CSO_TRACE_OUT` overrides the JSON output path
//! (default `target/trace/<bin>.json`).

use std::path::PathBuf;
use std::time::Instant;

use cso_trace::export;
use cso_trace::hist::{HistSnapshot, LogHistogram};
use cso_trace::probe::{self, Event, Path, Trace};

use crate::report::Table;

/// Latency histograms keyed by the completion path of each operation.
///
/// [`PathHists::time`] wraps one operation: the sample is recorded
/// into `fast`, `eliminated` or `locked` when the probe layer knows
/// which path the operation completed on, and into `unknown` otherwise
/// (untraced build, a non-path-reporting implementation, or a
/// timed-out invocation). All histograms are concurrent — one
/// `PathHists` can serve every worker thread of a driver.
#[derive(Default)]
pub struct PathHists {
    /// Operations that completed on the lock-free fast path.
    pub fast: LogHistogram,
    /// Operations that completed by elimination rendezvous.
    pub eliminated: LogHistogram,
    /// Operations that completed under the lock.
    pub locked: LogHistogram,
    /// Operations whose path the probe layer could not attribute.
    pub unknown: LogHistogram,
}

impl PathHists {
    /// Four empty histograms.
    #[must_use]
    pub fn new() -> PathHists {
        PathHists::default()
    }

    /// Times `op` and records the sample in the histogram of the path
    /// it completed on. Returns `op`'s result.
    pub fn time<R>(&self, op: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = op();
        let elapsed = start.elapsed();
        match probe::last_path() {
            Some(Path::Fast) => self.fast.record(elapsed),
            Some(Path::Eliminated) => self.eliminated.record(elapsed),
            Some(Path::Locked) => self.locked.record(elapsed),
            None => self.unknown.record(elapsed),
        }
        out
    }

    /// Renders the non-empty histograms as a `path × percentile`
    /// table (ns with adaptive units).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(&["path", "ops", "mean", "p50", "p90", "p99", "max"]);
        for (label, hist) in [
            ("fast", &self.fast),
            ("eliminated", &self.eliminated),
            ("locked", &self.locked),
            ("unknown", &self.unknown),
        ] {
            if hist.is_empty() {
                continue;
            }
            let s = hist.snapshot();
            table.row(vec![
                label.to_owned(),
                s.count.to_string(),
                HistSnapshot::fmt_ns(s.mean_ns),
                HistSnapshot::fmt_ns(s.p50_ns),
                HistSnapshot::fmt_ns(s.p90_ns),
                HistSnapshot::fmt_ns(s.p99_ns),
                HistSnapshot::fmt_ns(s.max_ns),
            ]);
        }
        table
    }

    /// True when nothing has been timed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fast.is_empty()
            && self.eliminated.is_empty()
            && self.locked.is_empty()
            && self.unknown.is_empty()
    }
}

/// [`crate::adapters::drive_stack`] with per-operation timing: every
/// operation's latency lands in `hists` under the path it completed
/// on. Slower than the untimed driver (two `Instant` reads per op) —
/// use it for the dedicated latency cells, not the throughput sweeps.
pub fn drive_stack_timed(
    stack: &dyn crate::adapters::BenchStack,
    threads: usize,
    duration: std::time::Duration,
    mix: crate::workload::OpMix,
    hists: &PathHists,
) -> crate::measure::RunResult {
    use std::sync::atomic::Ordering;
    crate::measure::timed_run(threads, duration, |thread, stop| {
        let mut rng = crate::workload::thread_rng(thread, 0xBEEF);
        let mut ops = 0u64;
        let mut value = thread as u32;
        while !stop.load(Ordering::Relaxed) {
            if mix.next_is_push(&mut rng) {
                hists.time(|| stack.push(thread, value));
                value = value.wrapping_add(threads as u32);
            } else {
                hists.time(|| stack.pop(thread));
            }
            ops += 1;
        }
        ops
    })
}

/// Attributes each survived poisoning to the chaos fail point that
/// caused it: for every [`Event::SlowPoisoned`], the nearest preceding
/// [`Event::FailPoint`] *on the same thread* is charged. Returns
/// `(site, poisonings)` rows, descending by count. Requires
/// [`cso_trace::install_chaos_hook`] to have been installed before the
/// run (otherwise no fail-point events exist and every poisoning is
/// charged to `"<unattributed>"`).
#[must_use]
pub fn poisoning_causes(trace: &Trace) -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    let mut bump = |site: &'static str| match counts.iter_mut().find(|(s, _)| *s == site) {
        Some((_, n)) => *n += 1,
        None => counts.push((site, 1)),
    };
    for (i, e) in trace.events.iter().enumerate() {
        if e.event != Event::SlowPoisoned {
            continue;
        }
        let cause = trace.events[..i]
            .iter()
            .rev()
            .filter(|c| c.thread == e.thread)
            .find_map(|c| match c.event {
                Event::FailPoint(site) => Some(site),
                _ => None,
            });
        bump(cause.unwrap_or("<unattributed>"));
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    counts
}

/// Ends a traced experiment: prints the event summary and writes the
/// Chrome `trace_event` JSON for `bin` (to `CSO_TRACE_OUT`, or
/// `target/trace/<bin>.json`). Completely silent when probes are not
/// recording (untraced build or [`probe::set_enabled`]`(false)`),
/// so every binary can call this unconditionally.
pub fn emit(bin: &str) {
    if !probe::enabled() {
        return;
    }
    let trace = probe::collect();
    println!();
    print!("{}", export::summary(&trace));
    let path = std::env::var_os("CSO_TRACE_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/trace").join(format!("{bin}.json")));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("trace: cannot create {}: {e}", dir.display());
            return;
        }
    }
    match std::fs::write(&path, export::chrome_trace_json(&trace)) {
        Ok(()) => println!(
            "chrome trace: {} ({} events) — open in chrome://tracing or ui.perfetto.dev",
            path.display(),
            trace.events.len()
        ),
        Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
    }
    // The analyzer input: the same events in the `cso-trace-events v1`
    // TSV form `cso-analyze` consumes.
    let events_path = std::env::var_os("CSO_TRACE_EVENTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/trace").join(format!("{bin}.events.tsv")));
    match std::fs::write(&events_path, export::event_log(&trace)) {
        Ok(()) => println!(
            "event log: {} — analyze with `cso-analyze check {}`",
            events_path.display(),
            events_path.display()
        ),
        Err(e) => eprintln!("trace: cannot write {}: {e}", events_path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_trace::probe::TraceEvent;

    #[test]
    fn path_hists_time_and_render() {
        let hists = PathHists::new();
        assert!(hists.is_empty());
        let out = hists.time(|| 7);
        assert_eq!(out, 7);
        assert!(!hists.is_empty());
        // Without the trace feature the sample is unattributed; with
        // it, no completion probe fired inside the closure, so it is
        // unattributed (or charged to this test thread's previous
        // completion) either way — the table must still render.
        let rendered = hists.table().render();
        assert!(rendered.contains("path"));
    }

    #[test]
    fn poisoning_attribution_charges_same_thread_fail_point() {
        let ev = |thread, seq, event| TraceEvent {
            thread,
            seq,
            wall_ns: seq,
            event,
        };
        let trace = Trace {
            events: vec![
                ev(0, 0, Event::FailPoint("cs::locked")),
                ev(1, 1, Event::FailPoint("stack::push")),
                ev(0, 2, Event::SlowPoisoned),
                ev(1, 3, Event::SlowPoisoned),
                ev(2, 4, Event::SlowPoisoned),
            ],
            dropped: 0,
            truncated: Vec::new(),
        };
        assert_eq!(
            poisoning_causes(&trace),
            vec![("<unattributed>", 1), ("cs::locked", 1), ("stack::push", 1),]
        );
    }

    #[test]
    fn emit_is_silent_when_not_recording() {
        // In untraced builds enabled() is always false; in traced test
        // builds, pause recording so emit() must take the silent path.
        let was = probe::enabled();
        probe::set_enabled(false);
        emit("tracing-test");
        if was {
            probe::set_enabled(true);
        }
        assert!(!std::path::Path::new("target/trace/tracing-test.json").exists());
    }
}
