//! A minimal micro-benchmark harness with a criterion-like surface
//! (`group` / `bench_function` / `Bencher::iter`), used by the
//! `benches/` targets. The workspace builds offline with no external
//! crates, so the statistical machinery is deliberately simple:
//! calibrate a batch size targeting ~5 ms per batch, run a fixed
//! number of timed batches, and report the median ns/iteration
//! (median resists scheduler outliers better than the mean).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timed batches per benchmark (median reported).
const BATCHES: usize = 15;
/// Target wall-clock per timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(5);
/// Upper bound on iterations per batch, calibration aside.
const MAX_BATCH: u64 = 1 << 20;

/// Passed to the benchmark closure; `iter` runs and times the body.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `body`, storing the median ns/iteration.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            start.elapsed()
        });
    }

    /// Criterion-style escape hatch: `run` receives an iteration count
    /// and returns the wall-clock those iterations took. Use when the
    /// body must control its own timing (e.g. spawning threads once
    /// per batch rather than once per iteration).
    pub fn iter_custom(&mut self, mut run: impl FnMut(u64) -> Duration) {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut batch: u64 = 1;
        loop {
            let took = run(batch);
            if took >= BATCH_TARGET || batch >= MAX_BATCH {
                break;
            }
            let scaled = if took.is_zero() {
                batch * 16
            } else {
                let ratio = BATCH_TARGET.as_secs_f64() / took.as_secs_f64();
                // Aim just past the target; cap growth at 16x per step
                // so one noisy fast sample cannot overshoot wildly.
                ((batch as f64 * ratio * 1.2) as u64).clamp(batch + 1, batch * 16)
            };
            batch = scaled.min(MAX_BATCH);
        }
        let mut samples = [0f64; BATCHES];
        for sample in &mut samples {
            *sample = run(batch).as_nanos() as f64 / batch as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[BATCHES / 2];
    }
}

/// A named set of benchmarks, printed as `group/id  median ns/iter`.
pub struct Group {
    name: String,
}

impl Group {
    /// Runs one benchmark and prints its result immediately.
    pub fn bench_function(&mut self, id: impl AsRef<str>, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!(
            "{:<46} {:>12.1} ns/iter",
            format!("{}/{}", self.name, id.as_ref()),
            b.ns_per_iter
        );
    }

    /// Ends the group (marker for the criterion-style call shape).
    pub fn finish(self) {}
}

/// Starts a benchmark group.
pub fn group(name: impl Into<String>) -> Group {
    Group { name: name.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_positive_latency() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box(1u64.wrapping_mul(3)));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn iter_custom_scales_by_batch() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        // Pretend each iteration costs exactly 1 µs.
        b.iter_custom(Duration::from_micros);
        assert!((b.ns_per_iter - 1_000.0).abs() < 1.0);
    }
}
