//! Benchmarks under contention: fixed-work multi-thread runs through
//! the whole stack suite (the regression-tracking twin of experiment
//! E3).
//!
//! The harness measures the wall-clock of completing a fixed batch of
//! operations split across threads (`iter_custom`), which is robust on
//! boxes where thread count exceeds core count.

use cso_bench::microbench;
use std::time::{Duration, Instant};

use cso_bench::adapters::{prefill_stack, stack_suite, BenchStack};
use cso_bench::workload::{thread_rng, OpMix};

const OPS_PER_THREAD: u64 = 5_000;

/// Runs a fixed operation batch on `threads` threads; returns only
/// after every thread finished (the caller times the whole call).
fn contended_batch(stack: &dyn BenchStack, threads: usize) {
    std::thread::scope(|scope| {
        for thread in 0..threads {
            scope.spawn(move || {
                let mut rng = thread_rng(thread, 11);
                for i in 0..OPS_PER_THREAD {
                    if OpMix::BALANCED.next_is_push(&mut rng) {
                        stack.push(thread, i as u32);
                    } else {
                        stack.pop(thread);
                    }
                }
            });
        }
    });
}

fn bench_contended() {
    let mut group = microbench::group("stack_contended_2_threads");

    for stack in stack_suite(16_384, 4) {
        prefill_stack(stack.as_ref(), 2_048);
        group.bench_function(stack.name(), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let start = Instant::now();
                    contended_batch(stack.as_ref(), 2);
                    total += start.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

fn main() {
    bench_contended();
}
