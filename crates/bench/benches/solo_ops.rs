//! Micro-benchmarks: contention-free operation latency for every
//! stack and queue implementation (the regression-tracking twin of
//! experiment E1).

use cso_bench::microbench;
use std::hint::black_box;

use cso_queue::{AbortableQueue, CsQueue, LockQueue, MsQueue, NonBlockingQueue};
use cso_stack::{
    AbortableStack, CsStack, EliminationStack, LockStack, NonBlockingStack, TreiberStack,
};

fn stack_solo() {
    let mut group = microbench::group("stack_solo_push_pop");

    let weak: AbortableStack<u32> = AbortableStack::new(1024);
    group.bench_function("abortable(fig1)", |b| {
        b.iter(|| {
            weak.weak_push(black_box(1)).unwrap();
            black_box(weak.weak_pop().unwrap());
        })
    });

    let nb: NonBlockingStack<u32> = NonBlockingStack::new(1024);
    group.bench_function("non_blocking(fig2)", |b| {
        b.iter(|| {
            nb.push(black_box(1));
            black_box(nb.pop());
        })
    });

    let cs: CsStack<u32> = CsStack::new(1024, 4);
    group.bench_function("contention_sensitive(fig3)", |b| {
        b.iter(|| {
            cs.push(0, black_box(1));
            black_box(cs.pop(0));
        })
    });

    let treiber: TreiberStack<u32> = TreiberStack::new();
    group.bench_function("treiber", |b| {
        b.iter(|| {
            treiber.push(black_box(1));
            black_box(treiber.pop());
        })
    });

    let elim: EliminationStack<u32> = EliminationStack::new(2);
    group.bench_function("elimination", |b| {
        b.iter(|| {
            elim.push(black_box(1));
            black_box(elim.pop());
        })
    });

    let locked: LockStack<u32> = LockStack::new(1024);
    group.bench_function("lock_tas", |b| {
        b.iter(|| {
            locked.push(black_box(1));
            black_box(locked.pop());
        })
    });

    // The deque used as a stack (right end only): its O(capacity)
    // boundary scan shows up directly in the latency.
    for capacity in [8usize, 256] {
        let deque: cso_deque::HlmDeque<u32> = cso_deque::HlmDeque::new(capacity);
        group.bench_function(format!("hlm_deque_cap{capacity}"), |b| {
            b.iter(|| {
                deque.push(cso_deque::End::Right, black_box(1));
                black_box(deque.pop(cso_deque::End::Right));
            })
        });
    }

    group.finish();
}

fn queue_solo() {
    let mut group = microbench::group("queue_solo_enq_deq");

    let weak: AbortableQueue<u32> = AbortableQueue::new(1024);
    group.bench_function("abortable", |b| {
        b.iter(|| {
            weak.weak_enqueue(black_box(1)).unwrap();
            black_box(weak.weak_dequeue().unwrap());
        })
    });

    let nb: NonBlockingQueue<u32> = NonBlockingQueue::new(1024);
    group.bench_function("non_blocking", |b| {
        b.iter(|| {
            nb.enqueue(black_box(1));
            black_box(nb.dequeue());
        })
    });

    let cs: CsQueue<u32> = CsQueue::new(1024, 4);
    group.bench_function("contention_sensitive", |b| {
        b.iter(|| {
            cs.enqueue(0, black_box(1));
            black_box(cs.dequeue(0));
        })
    });

    let ms: MsQueue<u32> = MsQueue::new();
    group.bench_function("michael_scott", |b| {
        b.iter(|| {
            ms.enqueue(black_box(1));
            black_box(ms.dequeue());
        })
    });

    let locked: LockQueue<u32> = LockQueue::new(1024);
    group.bench_function("lock_tas", |b| {
        b.iter(|| {
            locked.enqueue(black_box(1));
            black_box(locked.dequeue());
        })
    });

    group.finish();
}

fn main() {
    stack_solo();
    queue_solo();
}
