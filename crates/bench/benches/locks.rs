//! Micro-benchmarks: uncontended lock acquire/release for every lock
//! in `cso-locks` (the regression-tracking twin of experiment E7's
//! solo column).

use cso_bench::microbench;
use std::hint::black_box;

use cso_locks::{
    Anonymous, ClhLock, LamportFastLock, McsLock, OsLock, ProcLock, RawLock, StarvationFree,
    TasLock, TicketLock, TournamentLock, TtasLock,
};

fn raw_locks() {
    let mut group = microbench::group("lock_uncontended");

    let tas = TasLock::new();
    group.bench_function("tas", |b| {
        b.iter(|| {
            tas.lock();
            black_box(());
            tas.unlock();
        })
    });

    let ttas = TtasLock::new();
    group.bench_function("ttas", |b| {
        b.iter(|| {
            ttas.lock();
            black_box(());
            ttas.unlock();
        })
    });

    let ticket = TicketLock::new();
    group.bench_function("ticket", |b| {
        b.iter(|| {
            ticket.lock();
            black_box(());
            ticket.unlock();
        })
    });

    let os = OsLock::new();
    group.bench_function("os_std_mutex", |b| {
        b.iter(|| {
            os.lock();
            black_box(());
            os.unlock();
        })
    });

    group.finish();
}

fn proc_locks() {
    let mut group = microbench::group("proc_lock_uncontended");

    let clh = ClhLock::new(4);
    group.bench_function("clh", |b| {
        b.iter(|| {
            clh.lock(0);
            black_box(());
            clh.unlock(0);
        })
    });

    let mcs = McsLock::new(4);
    group.bench_function("mcs", |b| {
        b.iter(|| {
            mcs.lock(0);
            black_box(());
            mcs.unlock(0);
        })
    });

    let tree = TournamentLock::new(4);
    group.bench_function("peterson_tree", |b| {
        b.iter(|| {
            tree.lock(0);
            black_box(());
            tree.unlock(0);
        })
    });

    let lamport = LamportFastLock::new(4);
    group.bench_function("lamport_fast", |b| {
        b.iter(|| {
            lamport.lock(0);
            black_box(());
            lamport.unlock(0);
        })
    });

    let boosted = StarvationFree::new(TasLock::new(), 4);
    group.bench_function("tas_boosted_4_4", |b| {
        b.iter(|| {
            boosted.lock(0);
            black_box(());
            boosted.unlock(0);
        })
    });

    let anon = Anonymous::new(TasLock::new(), 4);
    group.bench_function("tas_via_anonymous", |b| {
        b.iter(|| {
            anon.lock(0);
            black_box(());
            anon.unlock(0);
        })
    });

    group.finish();
}

fn main() {
    raw_locks();
    proc_locks();
}
