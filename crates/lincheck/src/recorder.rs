//! Concurrent history recording.

use std::sync::{Arc, Mutex};

use crate::history::{Event, History, ProcId};

/// Records invoke/return events from concurrently running threads
/// into a real-time ordered [`History`].
///
/// The recorder serializes event appends through a mutex, which makes
/// the recorded order a correct real-time order: an `invoke` is
/// appended *before* the operation starts and a `ret` *after* it
/// returns, so if operation A completes before operation B begins, A's
/// return necessarily precedes B's invoke in the log. (The mutex adds
/// contention of its own — recorded runs are for checking, not for
/// performance measurement.)
///
/// ```
/// use cso_lincheck::recorder::Recorder;
///
/// let recorder: Recorder<&str, u32> = Recorder::new();
/// recorder.invoke(0, "pop");
/// recorder.ret(0, 7);
/// let history = recorder.finish();
/// assert_eq!(history.len(), 2);
/// ```
#[derive(Debug)]
pub struct Recorder<Op, Resp> {
    events: Arc<Mutex<Vec<Event<Op, Resp>>>>,
}

impl<Op: Clone, Resp: Clone> Recorder<Op, Resp> {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Recorder<Op, Resp> {
        Recorder {
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Records that `proc` is about to start `op`. Call immediately
    /// before invoking the real operation.
    pub fn invoke(&self, proc: ProcId, op: Op) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(Event::Invoke { proc, op });
    }

    /// Records that `proc`'s operation returned `resp`. Call
    /// immediately after the real operation returns.
    pub fn ret(&self, proc: ProcId, resp: Resp) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(Event::Return { proc, resp });
    }

    /// Cancels `proc`'s pending invocation — for operations that
    /// returned ⊥ (aborted **with no effect**, the abortable-object
    /// contract of the paper): since the operation never took effect,
    /// it is sound to erase it from the history before checking.
    ///
    /// # Panics
    ///
    /// Panics if `proc` has no pending invocation.
    pub fn cancel(&self, proc: ProcId) {
        let mut events = self.events.lock().expect("recorder poisoned");
        let position = events
            .iter()
            .rposition(|event| matches!(event, Event::Invoke { proc: p, .. } if *p == proc))
            .expect("cancel requires a pending invocation");
        // Sanity: the found invoke must really be pending (no return
        // after it for this proc).
        debug_assert!(
            !events[position + 1..]
                .iter()
                .any(|event| matches!(event, Event::Return { proc: p, .. } if *p == proc)),
            "cancel on a completed operation"
        );
        events.remove(position);
    }

    /// Records the invocation and returns a handle pinned to the
    /// *invoking* process.
    ///
    /// Combining slow paths complicate attribution: the thread that
    /// physically applies an operation (the combiner) is not the
    /// thread that invoked it (the waiter whose publication record it
    /// served). Histories must attribute each operation to its
    /// **invoker** — that is the process whose invoke/return window
    /// bounds the linearization point. The handle freezes that
    /// identity at invocation time: [`OpHandle::finish`] and
    /// [`OpHandle::abort`] record under the owner no matter which
    /// thread calls them.
    #[must_use]
    pub fn begin(&self, proc: ProcId, op: Op) -> OpHandle<Op, Resp> {
        self.invoke(proc, op);
        OpHandle {
            recorder: self.clone(),
            proc,
        }
    }

    /// Consumes the recorded events into a [`History`].
    ///
    /// # Panics
    ///
    /// Panics if the recorded events are not well-formed (e.g. a
    /// process invoked twice without returning — a bug in the driver).
    #[must_use]
    pub fn finish(&self) -> History<Op, Resp> {
        let events = self.events.lock().expect("recorder poisoned").clone();
        History::from_events(events)
    }
}

/// A pending invocation pinned to its owner (see [`Recorder::begin`]).
///
/// The handle is `Send`: it may cross to the thread that ends up
/// completing the operation (e.g. a combiner) and still record the
/// return under the process that invoked it.
#[derive(Debug)]
pub struct OpHandle<Op, Resp> {
    recorder: Recorder<Op, Resp>,
    proc: ProcId,
}

impl<Op: Clone, Resp: Clone> OpHandle<Op, Resp> {
    /// The owning (invoking) process.
    #[must_use]
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// Records the response under the invoking process, regardless of
    /// the calling thread.
    pub fn finish(self, resp: Resp) {
        self.recorder.ret(self.proc, resp);
    }

    /// Erases the invocation (the operation returned ⊥ with no
    /// effect); see [`Recorder::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if the owner has no pending invocation.
    pub fn abort(self) {
        self.recorder.cancel(self.proc);
    }
}

impl<Op: Clone, Resp: Clone> Default for Recorder<Op, Resp> {
    fn default() -> Recorder<Op, Resp> {
        Recorder::new()
    }
}

impl<Op, Resp> Clone for Recorder<Op, Resp> {
    fn clone(&self) -> Recorder<Op, Resp> {
        Recorder {
            events: Arc::clone(&self.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_real_time_order_across_threads() {
        let recorder: Recorder<u32, u32> = Recorder::new();
        let r2 = recorder.clone();
        // p0 completes an operation fully before p1 starts.
        recorder.invoke(0, 1);
        recorder.ret(0, 1);
        let t = std::thread::spawn(move || {
            r2.invoke(1, 2);
            r2.ret(1, 2);
        });
        t.join().unwrap();
        let history = recorder.finish();
        let ops = history.operations();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].returned.as_ref().unwrap().1 < ops[1].invoked_at);
    }

    #[test]
    fn cancel_erases_the_pending_invocation() {
        let recorder: Recorder<&str, u32> = Recorder::new();
        recorder.invoke(0, "a");
        recorder.ret(0, 1);
        recorder.invoke(0, "aborted");
        recorder.cancel(0);
        recorder.invoke(1, "b");
        recorder.ret(1, 2);
        let history = recorder.finish();
        let ops = history.operations();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op, "a");
        assert_eq!(ops[1].op, "b");
    }

    #[test]
    #[should_panic(expected = "pending invocation")]
    fn cancel_without_invoke_panics() {
        let recorder: Recorder<&str, u32> = Recorder::new();
        recorder.cancel(0);
    }

    /// The combining-attribution contract: a handle completed by a
    /// *different* thread still records under the invoking process.
    #[test]
    fn handle_attributes_completion_to_the_invoker() {
        let recorder: Recorder<&str, u32> = Recorder::new();
        let handle = recorder.begin(3, "pop");
        assert_eq!(handle.proc(), 3);
        // A "combiner" thread applies the op and reports the response.
        std::thread::spawn(move || handle.finish(7)).join().unwrap();
        let history = recorder.finish();
        let ops = history.operations();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].proc, 3, "owner is the invoker, not the combiner");
        assert_eq!(ops[0].returned.as_ref().unwrap().0, 7);
    }

    #[test]
    fn handle_abort_erases_the_invocation() {
        let recorder: Recorder<&str, u32> = Recorder::new();
        let handle = recorder.begin(0, "aborted");
        handle.abort();
        let history = recorder.finish();
        assert!(history.operations().is_empty());
        assert!(history.pending().is_empty());
    }

    #[test]
    fn concurrent_recording_is_well_formed() {
        let recorder: Recorder<usize, usize> = Recorder::new();
        let handles: Vec<_> = (0..4)
            .map(|proc| {
                let r = recorder.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        r.invoke(proc, i);
                        r.ret(proc, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = recorder.finish(); // panics if ill-formed
        assert_eq!(history.operations().len(), 400);
        assert!(history.pending().is_empty());
    }
}
