//! Ready-made sequential specifications for the paper's objects.

pub mod queue;
pub mod register;
pub mod relaxed;
pub mod stack;
