//! The linearizability decision procedure.
//!
//! Implements the Wing & Gong backtracking search in the formulation
//! popularized by Lowe: repeatedly pick a *minimal* operation (one
//! whose invocation precedes every return of the operations not yet
//! linearized), check that the sequential specification produces the
//! observed response, and recurse; memoize visited (linearized-set,
//! abstract-state) configurations so equivalent interleavings are
//! explored once.
//!
//! Pending operations (invoked, never returned) are handled per the
//! definition: each may either take effect at some point after its
//! invocation (with an arbitrary response, since none was delivered)
//! or not take effect at all.

use std::collections::HashSet;

use crate::history::History;
use crate::spec::{RelaxedSpec, SeqSpec};

/// The verdict of [`check_linearizable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinResult {
    /// The history is linearizable; `witness` lists the operation
    /// indices (into `history.operations()`) in a valid
    /// linearization order.
    Linearizable {
        /// A valid linearization order (operation indices).
        witness: Vec<usize>,
    },
    /// No linearization exists.
    NotLinearizable,
}

impl LinResult {
    /// True when a linearization was found.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinResult::Linearizable { .. })
    }

    /// The witness order, if linearizable.
    #[must_use]
    pub fn witness(&self) -> Option<&[usize]> {
        match self {
            LinResult::Linearizable { witness } => Some(witness),
            LinResult::NotLinearizable => None,
        }
    }
}

/// The verdict of [`check_linearizable_bounded`]: like [`LinResult`]
/// but with an explicit "ran out of budget" case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedLinResult {
    /// A linearization was found within budget.
    Linearizable {
        /// A valid linearization order (operation indices).
        witness: Vec<usize>,
    },
    /// The full configuration space was explored: no linearization.
    NotLinearizable,
    /// The node budget ran out before the search concluded.
    Unknown {
        /// Configurations explored before giving up.
        explored: usize,
    },
}

impl BoundedLinResult {
    /// True when a linearization was found.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, BoundedLinResult::Linearizable { .. })
    }
}

/// Like [`check_linearizable`], but gives up after visiting
/// `max_nodes` distinct (linearized-set, state) configurations,
/// returning [`BoundedLinResult::Unknown`] instead of running for an
/// unbounded time. Use for histories near the 128-operation ceiling,
/// where the worst case is astronomically large even with
/// memoization.
///
/// # Panics
///
/// Panics if the history contains more than 128 operations.
pub fn check_linearizable_bounded<S: SeqSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
    max_nodes: usize,
) -> BoundedLinResult {
    let ops = history.operations();
    assert!(
        ops.len() <= 128,
        "checker supports at most 128 operations per history"
    );
    let completed_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.returned.is_some())
        .fold(0u128, |mask, (i, _)| mask | (1u128 << i));

    struct Search<State> {
        visited: HashSet<(u128, State)>,
        witness: Vec<usize>,
        budget: usize,
        exhausted: bool,
    }

    fn dfs<S: SeqSpec>(
        spec: &S,
        ops: &[crate::history::OpRecord<S::Op, S::Resp>],
        linearized: u128,
        state: &S::State,
        completed_mask: u128,
        search: &mut Search<S::State>,
    ) -> bool {
        if linearized & completed_mask == completed_mask {
            return true;
        }
        if search.visited.len() >= search.budget {
            search.exhausted = true;
            return false;
        }
        if !search.visited.insert((linearized, state.clone())) {
            return false;
        }
        let frontier = ops
            .iter()
            .enumerate()
            .filter(|(i, op)| linearized & (1 << i) == 0 && op.returned.is_some())
            .map(|(_, op)| op.returned.as_ref().expect("filtered").1)
            .min()
            .unwrap_or(usize::MAX);
        for (i, op) in ops.iter().enumerate() {
            if linearized & (1 << i) != 0 || op.invoked_at >= frontier {
                continue;
            }
            let (next_state, resp) = spec.apply(state, &op.op);
            if let Some((actual, _)) = &op.returned {
                if resp != *actual {
                    continue;
                }
            }
            search.witness.push(i);
            if dfs(
                spec,
                ops,
                linearized | (1 << i),
                &next_state,
                completed_mask,
                search,
            ) {
                return true;
            }
            search.witness.pop();
        }
        false
    }

    let mut search = Search {
        visited: HashSet::new(),
        witness: Vec::new(),
        budget: max_nodes,
        exhausted: false,
    };
    let initial = spec.initial();
    if dfs(spec, &ops, 0, &initial, completed_mask, &mut search) {
        BoundedLinResult::Linearizable {
            witness: search.witness,
        }
    } else if search.exhausted {
        BoundedLinResult::Unknown {
            explored: search.visited.len(),
        }
    } else {
        BoundedLinResult::NotLinearizable
    }
}

/// Decides whether `history` is linearizable with respect to `spec`.
///
/// # Panics
///
/// Panics if the history contains more than 128 operations (the
/// checker is designed for the short, adversarial histories produced
/// by stress runs and the model checker, not for bulk logs).
///
/// ```
/// use cso_lincheck::checker::check_linearizable;
/// use cso_lincheck::history::History;
/// use cso_lincheck::specs::register::{RegisterSpec, RegOp, RegResp};
///
/// // Two overlapping writes then a read seeing the first: fine.
/// let mut h = History::new();
/// h.invoke(0, RegOp::Write(1));
/// h.invoke(1, RegOp::Write(2));
/// h.ret(0, RegResp::Done);
/// h.ret(1, RegResp::Done);
/// h.invoke(0, RegOp::Read);
/// h.ret(0, RegResp::Value(1)); // write(2) linearized first
/// assert!(check_linearizable(&RegisterSpec, &h).is_linearizable());
/// ```
pub fn check_linearizable<S: SeqSpec>(spec: &S, history: &History<S::Op, S::Resp>) -> LinResult {
    let ops = history.operations();
    assert!(
        ops.len() <= 128,
        "checker supports at most 128 operations per history"
    );
    let total = ops.len();
    let completed_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.returned.is_some())
        .fold(0u128, |mask, (i, _)| mask | (1u128 << i));

    let mut visited: HashSet<(u128, S::State)> = HashSet::new();
    let mut witness: Vec<usize> = Vec::new();

    fn dfs<S: SeqSpec>(
        spec: &S,
        ops: &[crate::history::OpRecord<S::Op, S::Resp>],
        linearized: u128,
        state: &S::State,
        completed_mask: u128,
        visited: &mut HashSet<(u128, S::State)>,
        witness: &mut Vec<usize>,
    ) -> bool {
        // Success: every completed operation is linearized (pending
        // ones may be dropped).
        if linearized & completed_mask == completed_mask {
            return true;
        }
        if !visited.insert((linearized, state.clone())) {
            return false;
        }
        // The frontier: the earliest return among non-linearized
        // completed operations. Any operation invoked before it is a
        // legal next linearization point.
        let frontier = ops
            .iter()
            .enumerate()
            .filter(|(i, op)| linearized & (1 << i) == 0 && op.returned.is_some())
            .map(|(_, op)| op.returned.as_ref().expect("filtered").1)
            .min()
            .unwrap_or(usize::MAX);

        for (i, op) in ops.iter().enumerate() {
            if linearized & (1 << i) != 0 || op.invoked_at >= frontier {
                continue;
            }
            let (next_state, resp) = spec.apply(state, &op.op);
            if let Some((actual, _)) = &op.returned {
                if resp != *actual {
                    continue; // the spec would answer differently
                }
            }
            // Pending operations linearize with any response.
            witness.push(i);
            if dfs(
                spec,
                ops,
                linearized | (1 << i),
                &next_state,
                completed_mask,
                visited,
                witness,
            ) {
                return true;
            }
            witness.pop();
        }
        false
    }

    let initial = spec.initial();
    if dfs(
        spec,
        &ops,
        0,
        &initial,
        completed_mask,
        &mut visited,
        &mut witness,
    ) {
        debug_assert!(witness.len() >= total.min(witness.len()));
        LinResult::Linearizable { witness }
    } else {
        LinResult::NotLinearizable
    }
}

/// Decides whether `history` is linearizable with respect to a
/// **nondeterministic** (relaxed) specification: the Wing & Gong
/// search, additionally branching over every candidate outcome the
/// spec allows for the chosen operation.
///
/// With a deterministic [`SeqSpec`] (every `SeqSpec` is a
/// [`RelaxedSpec`] with singleton candidates) this agrees exactly with
/// [`check_linearizable`] — the k-relaxed specs in
/// [`crate::specs::relaxed`] with `k = 0` therefore decide strict
/// linearizability.
///
/// # Panics
///
/// Panics if the history contains more than 128 operations.
///
/// ```
/// use cso_lincheck::checker::check_relaxed_linearizable;
/// use cso_lincheck::history::History;
/// use cso_lincheck::specs::relaxed::KStackSpec;
/// use cso_lincheck::specs::stack::{SpecStackOp as Op, SpecStackResp as Resp};
///
/// // Two sequential pushes, then a pop returning the *bottom* value:
/// // distance 1 from the top — illegal strictly, legal for k = 1.
/// let mut h = History::new();
/// h.invoke(0, Op::Push(1));
/// h.ret(0, Resp::Pushed);
/// h.invoke(0, Op::Push(2));
/// h.ret(0, Resp::Pushed);
/// h.invoke(0, Op::Pop);
/// h.ret(0, Resp::Popped(1));
/// assert!(!check_relaxed_linearizable(&KStackSpec::new(4, 0), &h).is_linearizable());
/// assert!(check_relaxed_linearizable(&KStackSpec::new(4, 1), &h).is_linearizable());
/// ```
pub fn check_relaxed_linearizable<S: RelaxedSpec>(
    spec: &S,
    history: &History<S::Op, S::Resp>,
) -> LinResult {
    let ops = history.operations();
    assert!(
        ops.len() <= 128,
        "checker supports at most 128 operations per history"
    );
    let completed_mask: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.returned.is_some())
        .fold(0u128, |mask, (i, _)| mask | (1u128 << i));

    fn dfs<S: RelaxedSpec>(
        spec: &S,
        ops: &[crate::history::OpRecord<S::Op, S::Resp>],
        linearized: u128,
        state: &S::State,
        completed_mask: u128,
        visited: &mut HashSet<(u128, S::State)>,
        witness: &mut Vec<usize>,
    ) -> bool {
        if linearized & completed_mask == completed_mask {
            return true;
        }
        if !visited.insert((linearized, state.clone())) {
            return false;
        }
        let frontier = ops
            .iter()
            .enumerate()
            .filter(|(i, op)| linearized & (1 << i) == 0 && op.returned.is_some())
            .map(|(_, op)| op.returned.as_ref().expect("filtered").1)
            .min()
            .unwrap_or(usize::MAX);
        for (i, op) in ops.iter().enumerate() {
            if linearized & (1 << i) != 0 || op.invoked_at >= frontier {
                continue;
            }
            // Branch over every candidate outcome the relaxed spec
            // allows; completed operations constrain the response,
            // pending ones accept any candidate.
            for (next_state, resp) in spec.candidates(state, &op.op) {
                if let Some((actual, _)) = &op.returned {
                    if resp != *actual {
                        continue;
                    }
                }
                witness.push(i);
                if dfs(
                    spec,
                    ops,
                    linearized | (1 << i),
                    &next_state,
                    completed_mask,
                    visited,
                    witness,
                ) {
                    return true;
                }
                witness.pop();
            }
        }
        false
    }

    let mut visited: HashSet<(u128, S::State)> = HashSet::new();
    let mut witness: Vec<usize> = Vec::new();
    let initial = spec.initial();
    if dfs(
        spec,
        &ops,
        0,
        &initial,
        completed_mask,
        &mut visited,
        &mut witness,
    ) {
        LinResult::Linearizable { witness }
    } else {
        LinResult::NotLinearizable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::register::{RegOp, RegResp, RegisterSpec};
    use crate::specs::stack::{SpecStackOp as Op, SpecStackResp as Resp, StackSpec};

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<Op, Resp> = History::new();
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn sequential_stack_history_linearizes_in_order() {
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Push(2));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Pop);
        h.ret(0, Resp::Popped(2));
        let verdict = check_linearizable(&StackSpec::new(4), &h);
        assert_eq!(verdict.witness(), Some(&[0, 1, 2][..]));
    }

    #[test]
    fn overlapping_pops_can_reorder() {
        // p0 pushes 1 and 2 sequentially; then p0 and p1 pop
        // concurrently and the responses arrive "crossed".
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Push(2));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Pop);
        h.invoke(1, Op::Pop);
        h.ret(0, Resp::Popped(1)); // p0 got the *bottom* value
        h.ret(1, Resp::Popped(2)); // because p1's pop linearized first
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn detects_non_linearizable_stack_history() {
        // Pop returns a value that was never pushed first.
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Pop);
        h.ret(0, Resp::Popped(2));
        assert_eq!(
            check_linearizable(&StackSpec::new(4), &h),
            LinResult::NotLinearizable
        );
    }

    #[test]
    fn detects_real_time_order_violation() {
        // push(1) completes strictly before pop() starts, yet pop says
        // Empty: not linearizable.
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.ret(0, Resp::Pushed);
        h.invoke(1, Op::Pop);
        h.ret(1, Resp::Empty);
        assert_eq!(
            check_linearizable(&StackSpec::new(4), &h),
            LinResult::NotLinearizable
        );
    }

    #[test]
    fn empty_pop_ok_when_overlapping_push() {
        // pop overlaps the push, so Empty is allowed (pop linearizes
        // first).
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.invoke(1, Op::Pop);
        h.ret(1, Resp::Empty);
        h.ret(0, Resp::Pushed);
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn pending_operation_may_take_effect() {
        // p0's push never returns (crashed), but p1's pop sees the
        // value: the pending push must be linearized.
        let mut h = History::new();
        h.invoke(0, Op::Push(9));
        h.invoke(1, Op::Pop);
        h.ret(1, Resp::Popped(9));
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn pending_operation_may_be_dropped() {
        // p0's push never returns and nobody sees the value: also fine.
        let mut h = History::new();
        h.invoke(0, Op::Push(9));
        h.invoke(1, Op::Pop);
        h.ret(1, Resp::Empty);
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn full_outcome_checks_against_capacity() {
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.ret(0, Resp::Pushed);
        h.invoke(0, Op::Push(2));
        h.ret(0, Resp::Full); // capacity 1: correct
        assert!(check_linearizable(&StackSpec::new(1), &h).is_linearizable());
        // With capacity 2 the same history is NOT linearizable (the
        // push could not have failed).
        assert_eq!(
            check_linearizable(&StackSpec::new(2), &h),
            LinResult::NotLinearizable
        );
    }

    #[test]
    fn register_new_old_inversion_is_caught() {
        // w(1) then w(2) sequentially; two sequential reads see 2 then
        // 1 — a new/old inversion, not linearizable.
        let mut h = History::new();
        h.invoke(0, RegOp::Write(1));
        h.ret(0, RegResp::Done);
        h.invoke(0, RegOp::Write(2));
        h.ret(0, RegResp::Done);
        h.invoke(1, RegOp::Read);
        h.ret(1, RegResp::Value(2));
        h.invoke(1, RegOp::Read);
        h.ret(1, RegResp::Value(1));
        assert_eq!(
            check_linearizable(&RegisterSpec, &h),
            LinResult::NotLinearizable
        );
    }

    #[test]
    fn bounded_checker_agrees_when_budget_suffices() {
        let mut h = History::new();
        h.invoke(0, Op::Push(1));
        h.invoke(1, Op::Pop);
        h.ret(0, Resp::Pushed);
        h.ret(1, Resp::Popped(1));
        let spec = StackSpec::new(4);
        match check_linearizable_bounded(&spec, &h, 10_000) {
            BoundedLinResult::Linearizable { .. } => {}
            other => panic!("expected linearizable, got {other:?}"),
        }
        // Non-linearizable histories stay non-linearizable.
        let mut bad = History::new();
        bad.invoke(0, Op::Pop);
        bad.ret(0, Resp::Popped(9));
        assert_eq!(
            check_linearizable_bounded(&spec, &bad, 10_000),
            BoundedLinResult::NotLinearizable
        );
    }

    #[test]
    fn bounded_checker_reports_unknown_on_tiny_budget() {
        // A wide overlapping history with an enormous configuration
        // space and a budget of 1: the search must give up, not hang.
        let mut events = Vec::new();
        for i in 0..12 {
            events.push(crate::history::Event::Invoke {
                proc: i,
                op: Op::Push(i as u32),
            });
        }
        for i in 0..12 {
            events.push(crate::history::Event::Return {
                proc: i,
                resp: Resp::Pushed,
            });
        }
        let h = History::from_events(events);
        match check_linearizable_bounded(&StackSpec::new(16), &h, 1) {
            BoundedLinResult::Unknown { explored } => assert!(explored <= 1),
            // With budget 1 the first path could still succeed for
            // this all-push history (any order works), so accept it.
            BoundedLinResult::Linearizable { .. } => {}
            BoundedLinResult::NotLinearizable => panic!("cannot conclude within budget 1"),
        }
    }

    #[test]
    fn witness_replays_to_observed_responses() {
        let mut h = History::new();
        h.invoke(0, Op::Push(5));
        h.invoke(1, Op::Pop);
        h.ret(0, Resp::Pushed);
        h.ret(1, Resp::Popped(5));
        let spec = StackSpec::new(4);
        let verdict = check_linearizable(&spec, &h);
        let witness = verdict.witness().expect("linearizable").to_vec();
        // Replaying the witness through the spec reproduces every
        // observed response.
        let ops = h.operations();
        let mut state = crate::spec::SeqSpec::initial(&spec);
        for idx in witness {
            let (next, resp) = crate::spec::SeqSpec::apply(&spec, &state, &ops[idx].op);
            if let Some((actual, _)) = &ops[idx].returned {
                assert_eq!(resp, *actual);
            }
            state = next;
        }
    }
}
