//! Sequential specification of the bounded FIFO queue.

use std::collections::VecDeque;

use crate::spec::SeqSpec;

/// Queue operations (checker-side mirror of `cso_queue::QueueOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecQueueOp {
    /// Enqueue a value at the rear.
    Enqueue(u32),
    /// Dequeue from the front.
    Dequeue,
}

impl std::fmt::Display for SpecQueueOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecQueueOp::Enqueue(v) => write!(f, "enqueue({v})"),
            SpecQueueOp::Dequeue => write!(f, "dequeue()"),
        }
    }
}

/// Queue responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecQueueResp {
    /// The value was enqueued.
    Enqueued,
    /// The queue was full.
    Full,
    /// The dequeued value.
    Dequeued(u32),
    /// The queue was empty.
    Empty,
}

impl std::fmt::Display for SpecQueueResp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecQueueResp::Enqueued => write!(f, "ok"),
            SpecQueueResp::Full => write!(f, "full"),
            SpecQueueResp::Dequeued(v) => write!(f, "{v}"),
            SpecQueueResp::Empty => write!(f, "empty"),
        }
    }
}

/// The bounded FIFO queue specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSpec {
    capacity: usize,
}

impl QueueSpec {
    /// A queue of capacity `capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> QueueSpec {
        QueueSpec { capacity }
    }
}

impl SeqSpec for QueueSpec {
    type State = VecDeque<u32>;
    type Op = SpecQueueOp;
    type Resp = SpecQueueResp;

    fn initial(&self) -> VecDeque<u32> {
        VecDeque::new()
    }

    fn apply(&self, state: &VecDeque<u32>, op: &SpecQueueOp) -> (VecDeque<u32>, SpecQueueResp) {
        match op {
            SpecQueueOp::Enqueue(v) => {
                if state.len() == self.capacity {
                    (state.clone(), SpecQueueResp::Full)
                } else {
                    let mut next = state.clone();
                    next.push_back(*v);
                    (next, SpecQueueResp::Enqueued)
                }
            }
            SpecQueueOp::Dequeue => {
                let mut next = state.clone();
                match next.pop_front() {
                    Some(v) => (next, SpecQueueResp::Dequeued(v)),
                    None => (next, SpecQueueResp::Empty),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_linearizable;
    use crate::history::History;

    #[test]
    fn fifo_with_capacity() {
        let spec = QueueSpec::new(2);
        let s0 = spec.initial();
        let (s1, _) = spec.apply(&s0, &SpecQueueOp::Enqueue(1));
        let (s2, _) = spec.apply(&s1, &SpecQueueOp::Enqueue(2));
        let (s3, r) = spec.apply(&s2, &SpecQueueOp::Enqueue(3));
        assert_eq!(r, SpecQueueResp::Full);
        assert_eq!(s3, s2);
        let (_, r) = spec.apply(&s2, &SpecQueueOp::Dequeue);
        assert_eq!(r, SpecQueueResp::Dequeued(1));
        let (_, r) = spec.apply(&s0, &SpecQueueOp::Dequeue);
        assert_eq!(r, SpecQueueResp::Empty);
    }

    #[test]
    fn fifo_order_violation_is_not_linearizable() {
        // enq(1); enq(2) sequentially, then a dequeue (sequential)
        // returning 2: violates FIFO.
        let mut h = History::new();
        h.invoke(0, SpecQueueOp::Enqueue(1));
        h.ret(0, SpecQueueResp::Enqueued);
        h.invoke(0, SpecQueueOp::Enqueue(2));
        h.ret(0, SpecQueueResp::Enqueued);
        h.invoke(1, SpecQueueOp::Dequeue);
        h.ret(1, SpecQueueResp::Dequeued(2));
        assert!(!check_linearizable(&QueueSpec::new(4), &h).is_linearizable());
    }

    #[test]
    fn overlapping_enqueues_allow_either_order() {
        let mut h = History::new();
        h.invoke(0, SpecQueueOp::Enqueue(1));
        h.invoke(1, SpecQueueOp::Enqueue(2));
        h.ret(0, SpecQueueResp::Enqueued);
        h.ret(1, SpecQueueResp::Enqueued);
        h.invoke(0, SpecQueueOp::Dequeue);
        h.ret(0, SpecQueueResp::Dequeued(2)); // 2 first is fine: enqueues overlapped
        assert!(check_linearizable(&QueueSpec::new(4), &h).is_linearizable());
    }
}
