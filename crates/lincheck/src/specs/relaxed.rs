//! k-relaxed sequential specifications (out-of-order distance ≤ k).
//!
//! Following the quantitative-relaxation framing (Henzinger et al.;
//! see PAPERS.md), a *k-relaxed* stack/queue weakens only the removal
//! end and the boundary answers, by a checked distance `k`:
//!
//! * a pop/dequeue may return any element within distance `k` of the
//!   strict answer (top of the stack, front of the queue);
//! * `Empty` is legal while at most `k` elements are resident (an
//!   in-flight operation may not have seen them);
//! * `Full` is legal while at least `capacity − k` elements are
//!   resident.
//!
//! Insertions stay strict (they always append). With `k = 0` both
//! specs are **exactly** the deterministic [`StackSpec`] /
//! [`QueueSpec`] semantics, which the unit tests pin down.
//!
//! These are [`RelaxedSpec`]s — relations, not functions — decided by
//! [`check_relaxed_linearizable`](crate::checker::check_relaxed_linearizable).
//! `cso-shard`'s relaxed mode advertises its bound via
//! `relaxation_bound()`; feeding that bound as `k` here is how
//! `tests/sharding_lincheck.rs` proves the observed relaxation never
//! exceeds the configured one.
//!
//! [`StackSpec`]: crate::specs::stack::StackSpec
//! [`QueueSpec`]: crate::specs::queue::QueueSpec

use std::collections::VecDeque;

use crate::spec::RelaxedSpec;
use crate::specs::queue::{SpecQueueOp, SpecQueueResp};
use crate::specs::stack::{SpecStackOp, SpecStackResp};

/// The k-relaxed bounded LIFO stack specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KStackSpec {
    capacity: usize,
    k: usize,
}

impl KStackSpec {
    /// A stack of capacity `capacity` whose pops may reach `k` deep.
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> KStackSpec {
        KStackSpec { capacity, k }
    }

    /// The relaxation bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl RelaxedSpec for KStackSpec {
    type State = Vec<u32>;
    type Op = SpecStackOp;
    type Resp = SpecStackResp;

    fn initial(&self) -> Vec<u32> {
        Vec::new()
    }

    fn candidates(&self, state: &Vec<u32>, op: &SpecStackOp) -> Vec<(Vec<u32>, SpecStackResp)> {
        match op {
            SpecStackOp::Push(v) => {
                let mut out = Vec::new();
                if state.len() < self.capacity {
                    let mut next = state.clone();
                    next.push(*v);
                    out.push((next, SpecStackResp::Pushed));
                }
                // Full may be answered while ≥ capacity − k resident.
                if state.len() + self.k >= self.capacity {
                    out.push((state.clone(), SpecStackResp::Full));
                }
                out
            }
            SpecStackOp::Pop => {
                let mut out = Vec::new();
                // Any element within distance k of the top.
                if !state.is_empty() {
                    for depth in 0..=self.k.min(state.len() - 1) {
                        let idx = state.len() - 1 - depth;
                        let mut next = state.clone();
                        let v = next.remove(idx);
                        out.push((next, SpecStackResp::Popped(v)));
                    }
                }
                // Empty may be answered while ≤ k resident.
                if state.len() <= self.k {
                    out.push((state.clone(), SpecStackResp::Empty));
                }
                out
            }
        }
    }
}

/// The k-relaxed bounded FIFO queue specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KQueueSpec {
    capacity: usize,
    k: usize,
}

impl KQueueSpec {
    /// A queue of capacity `capacity` whose dequeues may reach `k`
    /// past the front.
    #[must_use]
    pub fn new(capacity: usize, k: usize) -> KQueueSpec {
        KQueueSpec { capacity, k }
    }

    /// The relaxation bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }
}

impl RelaxedSpec for KQueueSpec {
    type State = VecDeque<u32>;
    type Op = SpecQueueOp;
    type Resp = SpecQueueResp;

    fn initial(&self) -> VecDeque<u32> {
        VecDeque::new()
    }

    fn candidates(
        &self,
        state: &VecDeque<u32>,
        op: &SpecQueueOp,
    ) -> Vec<(VecDeque<u32>, SpecQueueResp)> {
        match op {
            SpecQueueOp::Enqueue(v) => {
                let mut out = Vec::new();
                if state.len() < self.capacity {
                    let mut next = state.clone();
                    next.push_back(*v);
                    out.push((next, SpecQueueResp::Enqueued));
                }
                if state.len() + self.k >= self.capacity {
                    out.push((state.clone(), SpecQueueResp::Full));
                }
                out
            }
            SpecQueueOp::Dequeue => {
                let mut out = Vec::new();
                // Any element within distance k of the front.
                if !state.is_empty() {
                    for depth in 0..=self.k.min(state.len() - 1) {
                        let mut next = state.clone();
                        let v = next.remove(depth).expect("depth < len");
                        out.push((next, SpecQueueResp::Dequeued(v)));
                    }
                }
                if state.len() <= self.k {
                    out.push((state.clone(), SpecQueueResp::Empty));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_linearizable, check_relaxed_linearizable};
    use crate::history::History;
    use crate::specs::queue::QueueSpec;
    use crate::specs::stack::StackSpec;

    #[test]
    fn k0_stack_candidates_match_the_strict_spec() {
        use crate::spec::SeqSpec;
        let strict = StackSpec::new(2);
        let relaxed = KStackSpec::new(2, 0);
        for state in [vec![], vec![1], vec![1, 2]] {
            for op in [SpecStackOp::Push(9), SpecStackOp::Pop] {
                let got = relaxed.candidates(&state, &op);
                assert_eq!(got.len(), 1, "k=0 must be deterministic");
                assert_eq!(got[0], strict.apply(&state, &op));
            }
        }
    }

    #[test]
    fn k0_queue_candidates_match_the_strict_spec() {
        use crate::spec::SeqSpec;
        let strict = QueueSpec::new(2);
        let relaxed = KQueueSpec::new(2, 0);
        for state in [VecDeque::new(), VecDeque::from([1]), VecDeque::from([1, 2])] {
            for op in [SpecQueueOp::Enqueue(9), SpecQueueOp::Dequeue] {
                let got = relaxed.candidates(&state, &op);
                assert_eq!(got.len(), 1, "k=0 must be deterministic");
                assert_eq!(got[0], strict.apply(&state, &op));
            }
        }
    }

    #[test]
    fn pop_depth_is_bounded_by_k() {
        // [1, 2, 3]: pop may return 3 (depth 0) or 2 (depth 1) with
        // k = 1, but never 1 (depth 2).
        let spec = KStackSpec::new(8, 1);
        let state = vec![1, 2, 3];
        let popped: Vec<SpecStackResp> = spec
            .candidates(&state, &SpecStackOp::Pop)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(popped.contains(&SpecStackResp::Popped(3)));
        assert!(popped.contains(&SpecStackResp::Popped(2)));
        assert!(!popped.contains(&SpecStackResp::Popped(1)));
        assert!(!popped.contains(&SpecStackResp::Empty), "3 > k resident");
    }

    #[test]
    fn empty_and_full_windows_scale_with_k() {
        let spec = KQueueSpec::new(4, 2);
        // 2 resident ≤ k: Empty is a legal answer.
        let resps: Vec<SpecQueueResp> = spec
            .candidates(&VecDeque::from([1, 2]), &SpecQueueOp::Dequeue)
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(resps.contains(&SpecQueueResp::Empty));
        // 2 resident ≥ capacity − k: Full is a legal answer too.
        let resps: Vec<SpecQueueResp> = spec
            .candidates(&VecDeque::from([1, 2]), &SpecQueueOp::Enqueue(9))
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert!(resps.contains(&SpecQueueResp::Full));
        assert!(resps.contains(&SpecQueueResp::Enqueued));
    }

    #[test]
    fn out_of_order_dequeue_needs_large_enough_k() {
        // enq 1, 2, 3 sequentially; dequeue returns 3 (distance 2).
        let mut h = History::new();
        for v in 1..=3 {
            h.invoke(0, SpecQueueOp::Enqueue(v));
            h.ret(0, SpecQueueResp::Enqueued);
        }
        h.invoke(1, SpecQueueOp::Dequeue);
        h.ret(1, SpecQueueResp::Dequeued(3));
        assert!(!check_relaxed_linearizable(&KQueueSpec::new(8, 1), &h).is_linearizable());
        assert!(check_relaxed_linearizable(&KQueueSpec::new(8, 2), &h).is_linearizable());
        // And the strict checker rejects it outright.
        assert!(!check_linearizable(&QueueSpec::new(8), &h).is_linearizable());
    }

    #[test]
    fn relaxed_checker_with_k0_agrees_with_strict() {
        // A legal strict history passes both checkers.
        let mut h = History::new();
        h.invoke(0, SpecStackOp::Push(1));
        h.invoke(1, SpecStackOp::Pop);
        h.ret(0, SpecStackResp::Pushed);
        h.ret(1, SpecStackResp::Popped(1));
        assert!(check_linearizable(&StackSpec::new(4), &h).is_linearizable());
        assert!(check_relaxed_linearizable(&KStackSpec::new(4, 0), &h).is_linearizable());
        // An illegal one fails both.
        let mut bad = History::new();
        bad.invoke(0, SpecStackOp::Pop);
        bad.ret(0, SpecStackResp::Popped(7));
        assert!(!check_linearizable(&StackSpec::new(4), &bad).is_linearizable());
        assert!(!check_relaxed_linearizable(&KStackSpec::new(4, 0), &bad).is_linearizable());
    }

    #[test]
    fn seqspec_blanket_impl_feeds_the_relaxed_checker() {
        // A deterministic spec run through the relaxed checker.
        let mut h = History::new();
        h.invoke(0, SpecQueueOp::Enqueue(5));
        h.ret(0, SpecQueueResp::Enqueued);
        h.invoke(0, SpecQueueOp::Dequeue);
        h.ret(0, SpecQueueResp::Dequeued(5));
        assert!(check_relaxed_linearizable(&QueueSpec::new(4), &h).is_linearizable());
    }
}
