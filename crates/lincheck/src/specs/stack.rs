//! Sequential specification of the paper's bounded stack.

use crate::spec::SeqSpec;

/// Stack operations (checker-side mirror of `cso_stack::StackOp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecStackOp {
    /// Push a value.
    Push(u32),
    /// Pop the top value.
    Pop,
}

impl std::fmt::Display for SpecStackOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecStackOp::Push(v) => write!(f, "push({v})"),
            SpecStackOp::Pop => write!(f, "pop()"),
        }
    }
}

/// Stack responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecStackResp {
    /// `done`.
    Pushed,
    /// `full`.
    Full,
    /// The popped value.
    Popped(u32),
    /// `empty`.
    Empty,
}

impl std::fmt::Display for SpecStackResp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecStackResp::Pushed => write!(f, "done"),
            SpecStackResp::Full => write!(f, "full"),
            SpecStackResp::Popped(v) => write!(f, "{v}"),
            SpecStackResp::Empty => write!(f, "empty"),
        }
    }
}

/// The bounded LIFO stack specification (§3 of the paper: `weak_push`
/// returns `done`/`full`, `weak_pop` returns the value/`empty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSpec {
    capacity: usize,
}

impl StackSpec {
    /// A stack of capacity `capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> StackSpec {
        StackSpec { capacity }
    }
}

impl SeqSpec for StackSpec {
    type State = Vec<u32>;
    type Op = SpecStackOp;
    type Resp = SpecStackResp;

    fn initial(&self) -> Vec<u32> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<u32>, op: &SpecStackOp) -> (Vec<u32>, SpecStackResp) {
        match op {
            SpecStackOp::Push(v) => {
                if state.len() == self.capacity {
                    (state.clone(), SpecStackResp::Full)
                } else {
                    let mut next = state.clone();
                    next.push(*v);
                    (next, SpecStackResp::Pushed)
                }
            }
            SpecStackOp::Pop => {
                let mut next = state.clone();
                match next.pop() {
                    Some(v) => (next, SpecStackResp::Popped(v)),
                    None => (next, SpecStackResp::Empty),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_with_capacity() {
        let spec = StackSpec::new(2);
        let s0 = spec.initial();
        let (s1, r1) = spec.apply(&s0, &SpecStackOp::Push(1));
        assert_eq!(r1, SpecStackResp::Pushed);
        let (s2, _) = spec.apply(&s1, &SpecStackOp::Push(2));
        let (s3, r3) = spec.apply(&s2, &SpecStackOp::Push(3));
        assert_eq!(r3, SpecStackResp::Full);
        assert_eq!(s3, s2);
        let (_, r4) = spec.apply(&s3, &SpecStackOp::Pop);
        assert_eq!(r4, SpecStackResp::Popped(2));
        let (empty, r5) = spec.apply(&s0, &SpecStackOp::Pop);
        assert_eq!(r5, SpecStackResp::Empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn display_renders() {
        assert_eq!(SpecStackOp::Push(3).to_string(), "push(3)");
        assert_eq!(SpecStackResp::Empty.to_string(), "empty");
    }
}
