//! Sequential specification of an atomic `Compare&Swap` register.

use crate::spec::SeqSpec;

/// Register operations (§2.2 of the paper: read, write,
/// `Compare&Swap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// Read the register.
    Read,
    /// Write a value.
    Write(u64),
    /// `C&S(old, new)`.
    Cas(u64, u64),
}

/// Register responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegResp {
    /// The value read.
    Value(u64),
    /// A write completed.
    Done,
    /// Whether the `C&S` succeeded.
    Swapped(bool),
}

/// The atomic register specification (initial value 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegisterSpec;

impl SeqSpec for RegisterSpec {
    type State = u64;
    type Op = RegOp;
    type Resp = RegResp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, op: &RegOp) -> (u64, RegResp) {
        match op {
            RegOp::Read => (*state, RegResp::Value(*state)),
            RegOp::Write(v) => (*v, RegResp::Done),
            RegOp::Cas(old, new) => {
                if state == old {
                    (*new, RegResp::Swapped(true))
                } else {
                    (*state, RegResp::Swapped(false))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_semantics_match_the_paper() {
        let spec = RegisterSpec;
        let s0 = spec.initial();
        let (s1, r1) = spec.apply(&s0, &RegOp::Cas(0, 5));
        assert_eq!((s1, r1), (5, RegResp::Swapped(true)));
        let (s2, r2) = spec.apply(&s1, &RegOp::Cas(0, 9));
        assert_eq!((s2, r2), (5, RegResp::Swapped(false)));
        let (_, r3) = spec.apply(&s2, &RegOp::Read);
        assert_eq!(r3, RegResp::Value(5));
        let (s4, r4) = spec.apply(&s2, &RegOp::Write(1));
        assert_eq!((s4, r4), (1, RegResp::Done));
    }
}
