//! Sequential specifications.

use std::hash::Hash;

/// A sequential specification of a concurrent object: a deterministic
/// state machine mapping (state, operation) to (state, response).
///
/// This is the "sequential specification on total operations" of the
/// paper's §1.1 — the standard linearizability is defined against.
/// States must be hashable so the checker can memoize configurations.
pub trait SeqSpec {
    /// The abstract object state.
    type State: Clone + Eq + Hash;
    /// Operation descriptors.
    type Op: Clone;
    /// Operation responses.
    type Resp: Clone + Eq;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, producing the next state and the
    /// response a sequential execution would deliver.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp);
}

/// A **nondeterministic** sequential specification: applying an
/// operation may legally produce any one of several (state, response)
/// outcomes.
///
/// This is the shape k-relaxed objects take (Henzinger et al.,
/// "quantitative relaxation"): a k-relaxed pop may return any of the
/// top k + 1 elements, so the specification is a relation, not a
/// function. The checker
/// ([`check_relaxed_linearizable`](crate::checker::check_relaxed_linearizable))
/// branches over the candidates whose response matches the observed
/// one.
///
/// Every deterministic [`SeqSpec`] is trivially a `RelaxedSpec` with a
/// singleton candidate set; the blanket impl below provides that, so
/// the relaxed checker with a strict spec decides plain
/// linearizability.
pub trait RelaxedSpec {
    /// The abstract object state.
    type State: Clone + Eq + Hash;
    /// Operation descriptors.
    type Op: Clone;
    /// Operation responses.
    type Resp: Clone + Eq;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Every (next-state, response) pair a sequential execution could
    /// legally produce for `op` in `state`. Must be non-empty and
    /// deterministic as a *set* (same inputs, same candidates).
    fn candidates(&self, state: &Self::State, op: &Self::Op) -> Vec<(Self::State, Self::Resp)>;
}

impl<S: SeqSpec> RelaxedSpec for S {
    type State = S::State;
    type Op = S::Op;
    type Resp = S::Resp;

    fn initial(&self) -> Self::State {
        SeqSpec::initial(self)
    }

    fn candidates(&self, state: &Self::State, op: &Self::Op) -> Vec<(Self::State, Self::Resp)> {
        vec![SeqSpec::apply(self, state, op)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CounterSpec;

    impl SeqSpec for CounterSpec {
        type State = u64;
        type Op = u64;
        type Resp = u64;

        fn initial(&self) -> u64 {
            0
        }

        fn apply(&self, state: &u64, op: &u64) -> (u64, u64) {
            (state + op, state + op)
        }
    }

    #[test]
    fn specs_are_pure_state_machines() {
        let spec = CounterSpec;
        // (Qualified calls: the RelaxedSpec blanket impl also applies.)
        let s0 = SeqSpec::initial(&spec);
        let (s1, r1) = spec.apply(&s0, &5);
        assert_eq!((s1, r1), (5, 5));
        // Reapplying from the same state gives the same result.
        assert_eq!(spec.apply(&s0, &5), (5, 5));
    }

    #[test]
    fn every_seqspec_is_a_singleton_relaxed_spec() {
        let spec = CounterSpec;
        let s0 = RelaxedSpec::initial(&spec);
        assert_eq!(spec.candidates(&s0, &5), vec![(5, 5)]);
    }
}
