//! Sequential specifications.

use std::hash::Hash;

/// A sequential specification of a concurrent object: a deterministic
/// state machine mapping (state, operation) to (state, response).
///
/// This is the "sequential specification on total operations" of the
/// paper's §1.1 — the standard linearizability is defined against.
/// States must be hashable so the checker can memoize configurations.
pub trait SeqSpec {
    /// The abstract object state.
    type State: Clone + Eq + Hash;
    /// Operation descriptors.
    type Op: Clone;
    /// Operation responses.
    type Resp: Clone + Eq;

    /// The object's initial state.
    fn initial(&self) -> Self::State;

    /// Applies `op` to `state`, producing the next state and the
    /// response a sequential execution would deliver.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Resp);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CounterSpec;

    impl SeqSpec for CounterSpec {
        type State = u64;
        type Op = u64;
        type Resp = u64;

        fn initial(&self) -> u64 {
            0
        }

        fn apply(&self, state: &u64, op: &u64) -> (u64, u64) {
            (state + op, state + op)
        }
    }

    #[test]
    fn specs_are_pure_state_machines() {
        let spec = CounterSpec;
        let s0 = spec.initial();
        let (s1, r1) = spec.apply(&s0, &5);
        assert_eq!((s1, r1), (5, 5));
        // Reapplying from the same state gives the same result.
        assert_eq!(spec.apply(&s0, &5), (5, 5));
    }
}
