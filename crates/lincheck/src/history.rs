//! Concurrent histories: real-time ordered invoke/return events.

use std::fmt;

/// A process identity within a history.
pub type ProcId = usize;

/// One event of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<Op, Resp> {
    /// Process `proc` started operation `op`.
    Invoke {
        /// The invoking process.
        proc: ProcId,
        /// The operation being invoked.
        op: Op,
    },
    /// Process `proc`'s current operation returned `resp`.
    Return {
        /// The returning process.
        proc: ProcId,
        /// The response delivered.
        resp: Resp,
    },
}

/// A history: a real-time ordered sequence of invoke/return events,
/// well-formed per process (a process alternates invoke → return).
///
/// ```
/// use cso_lincheck::history::History;
///
/// let mut h: History<&str, u32> = History::new();
/// h.invoke(0, "pop");
/// h.invoke(1, "pop"); // overlapping with p0's pop
/// h.ret(1, 7);
/// h.ret(0, 9);
/// assert_eq!(h.operations().len(), 2);
/// assert!(h.pending().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct History<Op, Resp> {
    events: Vec<Event<Op, Resp>>,
}

/// One operation extracted from a history: its invocation position,
/// operation, and (if completed) response and return position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord<Op, Resp> {
    /// The invoking process.
    pub proc: ProcId,
    /// The operation.
    pub op: Op,
    /// Position of the invoke event in the history.
    pub invoked_at: usize,
    /// The response and the position of the return event; `None` for
    /// a pending operation.
    pub returned: Option<(Resp, usize)>,
}

impl<Op: Clone, Resp: Clone> History<Op, Resp> {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> History<Op, Resp> {
        History { events: Vec::new() }
    }

    /// Appends an invocation by `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` already has a pending operation (histories
    /// are per-process sequential).
    pub fn invoke(&mut self, proc: ProcId, op: Op) {
        assert!(
            !self.has_pending(proc),
            "process {proc} invoked an operation while one is pending"
        );
        self.events.push(Event::Invoke { proc, op });
    }

    /// Appends a return by `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` has no pending operation.
    pub fn ret(&mut self, proc: ProcId, resp: Resp) {
        assert!(
            self.has_pending(proc),
            "process {proc} returned without a pending operation"
        );
        self.events.push(Event::Return { proc, resp });
    }

    fn has_pending(&self, proc: ProcId) -> bool {
        let mut pending = false;
        for event in &self.events {
            match event {
                Event::Invoke { proc: p, .. } if *p == proc => pending = true,
                Event::Return { proc: p, .. } if *p == proc => pending = false,
                _ => {}
            }
        }
        pending
    }

    /// The raw event sequence.
    #[must_use]
    pub fn events(&self) -> &[Event<Op, Resp>] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the history has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts the operations (completed and pending) in invocation
    /// order.
    #[must_use]
    pub fn operations(&self) -> Vec<OpRecord<Op, Resp>> {
        let mut records: Vec<OpRecord<Op, Resp>> = Vec::new();
        // Per-process stack of indices into `records` awaiting return.
        let mut open: std::collections::HashMap<ProcId, usize> = std::collections::HashMap::new();
        for (pos, event) in self.events.iter().enumerate() {
            match event {
                Event::Invoke { proc, op } => {
                    open.insert(*proc, records.len());
                    records.push(OpRecord {
                        proc: *proc,
                        op: op.clone(),
                        invoked_at: pos,
                        returned: None,
                    });
                }
                Event::Return { proc, resp } => {
                    let idx = open
                        .remove(proc)
                        .expect("well-formed history: return matches an invoke");
                    records[idx].returned = Some((resp.clone(), pos));
                }
            }
        }
        records
    }

    /// The operations that never returned (crashed or still running
    /// when recording stopped).
    #[must_use]
    pub fn pending(&self) -> Vec<OpRecord<Op, Resp>> {
        self.operations()
            .into_iter()
            .filter(|r| r.returned.is_none())
            .collect()
    }

    /// Builds a history directly from an event vector.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is not well-formed (a process invokes
    /// while pending, or returns while idle).
    #[must_use]
    pub fn from_events(events: Vec<Event<Op, Resp>>) -> History<Op, Resp> {
        let mut history = History::new();
        for event in events {
            match event {
                Event::Invoke { proc, op } => history.invoke(proc, op),
                Event::Return { proc, resp } => history.ret(proc, resp),
            }
        }
        history
    }
}

impl<Op: fmt::Display, Resp: fmt::Display> fmt::Display for History<Op, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            match event {
                Event::Invoke { proc, op } => writeln!(f, "p{proc} ── invoke {op}")?,
                Event::Return { proc, resp } => writeln!(f, "p{proc} ←─ return {resp}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_pair_invokes_with_returns() {
        let mut h: History<&str, u32> = History::new();
        h.invoke(0, "a");
        h.invoke(1, "b");
        h.ret(0, 10);
        h.invoke(0, "c");
        h.ret(1, 20);

        let ops = h.operations();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].op, "a");
        assert_eq!(ops[0].returned.as_ref().unwrap().0, 10);
        assert_eq!(ops[1].op, "b");
        assert_eq!(ops[1].returned.as_ref().unwrap().0, 20);
        assert_eq!(ops[2].op, "c");
        assert!(ops[2].returned.is_none());
        assert_eq!(h.pending().len(), 1);
    }

    #[test]
    #[should_panic(expected = "while one is pending")]
    fn double_invoke_panics() {
        let mut h: History<&str, u32> = History::new();
        h.invoke(0, "a");
        h.invoke(0, "b");
    }

    #[test]
    #[should_panic(expected = "without a pending operation")]
    fn orphan_return_panics() {
        let mut h: History<&str, u32> = History::new();
        h.ret(0, 1);
    }

    #[test]
    fn from_events_round_trips() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(0, 1);
        h.ret(0, 2);
        let rebuilt = History::from_events(h.events().to_vec());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.len(), 2);
        assert!(!rebuilt.is_empty());
    }
}
