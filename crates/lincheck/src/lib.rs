//! Linearizability checking for concurrent-object histories.
//!
//! Linearizability (Herlihy & Wing, the paper's safety condition,
//! §1.1) holds when "the operation invocations issued by the processes
//! appear as if they have been executed sequentially, each invocation
//! appearing as being executed instantaneously at some point of the
//! time line between its start event and its end event".
//!
//! This crate decides that property for recorded histories:
//!
//! * [`history`] — invoke/return event sequences ([`History`]);
//! * [`recorder`] — a concurrent [`Recorder`] producing real-time
//!   ordered histories from live runs;
//! * [`spec`] — the [`SeqSpec`] trait: a sequential specification as a
//!   pure state-transition function;
//! * [`checker`] — the decision procedure: the Wing & Gong
//!   backtracking search with Lowe-style memoization of
//!   (linearized-set, state) configurations;
//! * [`specs`] — ready-made specifications for the paper's objects
//!   (bounded stack, bounded queue, CAS register) plus the k-relaxed
//!   variants decided by [`check_relaxed_linearizable`] against the
//!   nondeterministic [`RelaxedSpec`] trait.
//!
//! # Example
//!
//! ```
//! use cso_lincheck::checker::check_linearizable;
//! use cso_lincheck::history::History;
//! use cso_lincheck::specs::stack::{StackSpec, SpecStackOp as Op, SpecStackResp as Resp};
//!
//! // p0: push(1) then pop() overlapping nothing — a sequential history.
//! let mut history = History::new();
//! history.invoke(0, Op::Push(1));
//! history.ret(0, Resp::Pushed);
//! history.invoke(0, Op::Pop);
//! history.ret(0, Resp::Popped(1));
//!
//! let verdict = check_linearizable(&StackSpec::new(4), &history);
//! assert!(verdict.is_linearizable());
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod checker;
pub mod history;
pub mod recorder;
pub mod spec;
pub mod specs;

pub use checker::{
    check_linearizable, check_linearizable_bounded, check_relaxed_linearizable, BoundedLinResult,
    LinResult,
};
pub use history::{Event, History};
pub use recorder::{OpHandle, Recorder};
pub use spec::{RelaxedSpec, SeqSpec};
