//! The two lock interfaces used across the workspace.
//!
//! * [`RawLock`] — anonymous locks (`lock()`/`unlock()`), enough for
//!   TAS/TTAS/ticket locks and OS mutexes;
//! * [`ProcLock`] — identity-indexed locks (`lock(i)`/`unlock(i)` for
//!   `i ∈ 0..n`), required by algorithms that keep per-process state,
//!   like the paper's §4.4 `FLAG`/`TURN` booster, CLH/MCS queue locks,
//!   Peterson trees and Lamport's fast mutex.

use cso_memory::backoff::{Deadline, Spinner};

use crate::guard::{LockGuard, ProcLockGuard};

/// An anonymous mutual-exclusion lock.
///
/// # Contract
///
/// [`RawLock::unlock`] must only be called by the thread that currently
/// holds the lock (i.e. whose matching [`RawLock::lock`] or successful
/// [`RawLock::try_lock`] has not been unlocked yet). Violating this is
/// a logic error — the locks in this crate are word-based, so memory
/// safety is preserved, but mutual exclusion is not. Prefer
/// [`RawLock::lock_guard`], which ties the release to a guard's drop.
pub trait RawLock: Send + Sync {
    /// Acquires the lock, spinning or blocking until it is available.
    fn lock(&self);

    /// Releases the lock. See the trait-level contract.
    fn unlock(&self);

    /// Attempts to acquire the lock without waiting; returns whether
    /// the acquisition succeeded.
    fn try_lock(&self) -> bool;

    /// Attempts to acquire the lock until `deadline` expires; returns
    /// whether the acquisition succeeded. The default implementation
    /// polls [`RawLock::try_lock`] through a [`Spinner`], so it never
    /// sleeps past the deadline even over a blocking inner lock.
    ///
    /// ```
    /// use cso_locks::{RawLock, TasLock};
    /// use cso_memory::backoff::Deadline;
    /// use std::time::Duration;
    ///
    /// let lock = TasLock::new();
    /// lock.lock();
    /// assert!(!lock.try_lock_until(Deadline::after(Duration::from_millis(1))));
    /// lock.unlock();
    /// assert!(lock.try_lock_until(Deadline::NEVER));
    /// lock.unlock();
    /// ```
    fn try_lock_until(&self, deadline: Deadline) -> bool {
        let mut spinner = Spinner::new();
        loop {
            if self.try_lock() {
                return true;
            }
            if !spinner.spin_deadline(deadline) {
                return false;
            }
        }
    }

    /// Acquires the lock and returns a guard that releases it on drop
    /// (including on unwind).
    ///
    /// ```
    /// use cso_locks::{RawLock, TasLock};
    /// let lock = TasLock::new();
    /// let guard = lock.lock_guard();
    /// assert!(!lock.try_lock());
    /// drop(guard);
    /// assert!(lock.try_lock());
    /// lock.unlock();
    /// ```
    fn lock_guard(&self) -> LockGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock();
        // SAFETY-free: the guard only pairs the unlock with this lock.
        LockGuard::new(self)
    }

    /// Runs `f` inside the critical section.
    fn with<R>(&self, f: impl FnOnce() -> R) -> R
    where
        Self: Sized,
    {
        let _guard = self.lock_guard();
        f()
    }
}

/// A mutual-exclusion lock indexed by process identity.
///
/// The paper's processes are `p_0..p_{n-1}` (we use 0-based ids; the
/// paper is 1-based). A `ProcLock` serves at most [`ProcLock::n`]
/// processes, each of which must pass its own identity consistently.
///
/// # Contract
///
/// * `proc` must be `< self.n()` and must not be used concurrently by
///   two threads;
/// * [`ProcLock::unlock`] must be called with the identity that
///   acquired the lock.
///
/// Violations are logic errors (possible loss of mutual exclusion or a
/// panic), never memory unsafety.
pub trait ProcLock: Send + Sync {
    /// Maximum number of processes this lock instance serves.
    fn n(&self) -> usize;

    /// Acquires the lock on behalf of process `proc`.
    fn lock(&self, proc: usize);

    /// Releases the lock on behalf of process `proc`.
    fn unlock(&self, proc: usize);

    /// Acquires on behalf of `proc` and returns a drop guard.
    fn lock_proc_guard(&self, proc: usize) -> ProcLockGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock(proc);
        ProcLockGuard::new(self, proc)
    }

    /// Runs `f` inside the critical section on behalf of `proc`.
    fn with_proc<R>(&self, proc: usize, f: impl FnOnce() -> R) -> R
    where
        Self: Sized,
    {
        let _guard = self.lock_proc_guard(proc);
        f()
    }
}

/// Adapts any [`RawLock`] into a [`ProcLock`] that ignores identities.
///
/// Useful to run the proc-indexed benchmark harness over anonymous
/// locks.
///
/// ```
/// use cso_locks::{Anonymous, ProcLock, TicketLock};
/// let lock = Anonymous::new(TicketLock::new(), 8);
/// lock.lock(3);
/// lock.unlock(3);
/// ```
#[derive(Debug)]
pub struct Anonymous<L> {
    inner: L,
    n: usize,
}

impl<L: RawLock> Anonymous<L> {
    /// Wraps `inner`, declaring it usable by `n` processes.
    pub fn new(inner: L, n: usize) -> Anonymous<L> {
        Anonymous { inner, n }
    }

    /// Returns the wrapped lock.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: RawLock> ProcLock for Anonymous<L> {
    fn n(&self) -> usize {
        self.n
    }

    fn lock(&self, proc: usize) {
        debug_assert!(proc < self.n);
        self.inner.lock();
    }

    fn unlock(&self, proc: usize) {
        debug_assert!(proc < self.n);
        self.inner.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TasLock;

    #[test]
    fn with_returns_closure_value() {
        let lock = TasLock::new();
        let out = lock.with(|| 41 + 1);
        assert_eq!(out, 42);
        assert!(lock.try_lock(), "lock must be free after with()");
        lock.unlock();
    }

    #[test]
    fn guard_releases_on_panic() {
        let lock = TasLock::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = lock.lock_guard();
            panic!("boom");
        }));
        assert!(result.is_err());
        assert!(lock.try_lock(), "guard must release on unwind");
        lock.unlock();
    }

    #[test]
    fn anonymous_adapter_is_a_proc_lock() {
        crate::testutil::stress_proc(Anonymous::new(TasLock::new(), 4), 4, 2_000);
    }

    #[test]
    fn with_proc_runs_in_cs() {
        let lock = Anonymous::new(TasLock::new(), 2);
        let v = lock.with_proc(1, || "ok");
        assert_eq!(v, "ok");
    }
}
