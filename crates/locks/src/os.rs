//! OS-assisted mutex baseline.

use std::sync::{Condvar, Mutex, MutexGuard};

use crate::raw::RawLock;

/// A [`RawLock`] over a blocking OS primitive (`std`'s mutex plus a
/// condition variable) — the "traditional lock-based synchronization"
/// the paper's introduction contrasts with. Contended acquirers sleep
/// in the kernel instead of spinning.
///
/// The `std` pair is used (rather than an external raw-mutex crate)
/// because [`RawLock`] needs split `lock()`/`unlock()` calls, which a
/// guard-based `Mutex<()>` cannot express, and the workspace builds
/// with no external dependencies.
///
/// Unlike the register-based locks in this crate, its internal accesses
/// are *not* recorded by [`cso_memory::counting`].
///
/// ```
/// use cso_locks::{OsLock, RawLock};
/// let lock = OsLock::new();
/// lock.with(|| { /* critical section */ });
/// ```
pub struct OsLock {
    held: Mutex<bool>,
    freed: Condvar,
}

impl std::fmt::Debug for OsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsLock")
            .field("locked", &*self.state())
            .finish()
    }
}

impl OsLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> OsLock {
        OsLock {
            held: Mutex::new(false),
            freed: Condvar::new(),
        }
    }

    /// The inner mutex only protects the `held` flag for instants;
    /// a panic inside it is unreachable from this module, but clear
    /// the poison anyway so one crashed thread cannot wedge the lock.
    fn state(&self) -> MutexGuard<'_, bool> {
        self.held.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for OsLock {
    fn default() -> OsLock {
        OsLock::new()
    }
}

impl RawLock for OsLock {
    fn lock(&self) {
        let mut held = self.state();
        while *held {
            held = self.freed.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        *held = true;
    }

    fn unlock(&self) {
        *self.state() = false;
        self.freed.notify_one();
    }

    fn try_lock(&self) -> bool {
        let mut held = self.state();
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_raw;

    #[test]
    fn try_lock_reports_state() {
        let lock = OsLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_raw(OsLock::new(), 4, 2_500);
    }

    #[test]
    fn contended_lock_wakes_sleepers() {
        use std::sync::Arc;
        let lock = Arc::new(OsLock::new());
        lock.lock();
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.lock();
                lock.unlock();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        lock.unlock();
        waiter.join().expect("sleeping waiter must be woken");
    }
}
