//! OS-assisted mutex baseline.

use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;

use crate::raw::RawLock;

/// A [`RawLock`] over `parking_lot`'s raw mutex — the state-of-practice
/// blocking lock, included as a baseline in the lock and stack
/// benchmarks (E4, E7).
///
/// Unlike the register-based locks in this crate, its internal accesses
/// are *not* recorded by [`cso_memory::counting`]; it represents the
/// "traditional lock-based synchronization" the paper's introduction
/// contrasts with.
///
/// ```
/// use cso_locks::{OsLock, RawLock};
/// let lock = OsLock::new();
/// lock.with(|| { /* critical section */ });
/// ```
pub struct OsLock {
    raw: RawMutex,
}

impl std::fmt::Debug for OsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsLock")
            .field("locked", &self.raw.is_locked())
            .finish()
    }
}

impl OsLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> OsLock {
        OsLock {
            raw: RawMutex::INIT,
        }
    }
}

impl Default for OsLock {
    fn default() -> OsLock {
        OsLock::new()
    }
}

impl RawLock for OsLock {
    fn lock(&self) {
        self.raw.lock();
    }

    fn unlock(&self) {
        // SAFETY: the `RawLock` contract requires the caller to hold
        // the lock, which is exactly `RawMutex::unlock`'s requirement.
        unsafe { self.raw.unlock() };
    }

    fn try_lock(&self) -> bool {
        self.raw.try_lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_raw;

    #[test]
    fn try_lock_reports_state() {
        let lock = OsLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_raw(OsLock::new(), 4, 2_500);
    }
}
