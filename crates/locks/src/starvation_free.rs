//! The deadlock-free → starvation-free lock booster (§4.4 of the
//! paper).
//!
//! In Figure 3 the starred lines 04–06 and 10–12 form, in the authors'
//! words, "a starvation-free lock from a non-blocking one":
//!
//! ```text
//! starvation_free_lock(i):    FLAG[i] ← true;                      (04)
//!                             wait (TURN = i) ∨ (¬FLAG[TURN]);     (05)
//!                             LOCK.lock();                         (06)
//!
//! starvation_free_unlock(i):  FLAG[i] ← false;                     (10)
//!                             if ¬FLAG[TURN] then
//!                                 TURN ← (TURN mod n) + 1;         (11)
//!                             LOCK.unlock();                       (12)
//! ```
//!
//! `TURN` rotates round-robin over all identities without skipping
//! anyone (Lemma 3, case 2/3), so a flagged process is eventually the
//! unique contender allowed past line 05 and the deadlock-free inner
//! lock must admit it.

use std::sync::OnceLock;

use cso_memory::backoff::{Deadline, Spinner};
use cso_memory::combining::CachePadded;
use cso_memory::fail_point;
use cso_memory::reg::{RegBool, RegUsize};
use cso_metrics::{Counter, Registry};
use cso_trace::{probe, Event};

use crate::raw::{ProcLock, RawLock};

/// Registry handles for an attached [`StarvationFree`] lock. All
/// counters are plain (uncounted) atomics, so attaching metrics never
/// changes the paper's counted-access budgets.
#[derive(Debug)]
struct SfMetrics {
    /// Successful acquisitions through the booster (any entry point).
    acquires: Counter,
    /// Line-11 `TURN` advances (the round-robin fairness handoffs).
    turn_advances: Counter,
}

/// Boosts any deadlock-free [`RawLock`] into a starvation-free
/// [`ProcLock`] using the paper's `FLAG`/`TURN` round-robin mechanism.
///
/// This wrapper *is* the paper's contention manager, packaged
/// separately so it can also serve "other fairness-related problems"
/// (§1.2). `cso-core`'s contention-sensitive transformation uses it for
/// the Figure 3 slow path.
///
/// ```
/// use cso_locks::{ProcLock, StarvationFree, TasLock};
///
/// let lock = StarvationFree::new(TasLock::new(), 3);
/// lock.lock(2);
/// // ... critical section ...
/// lock.unlock(2);
/// ```
#[derive(Debug)]
pub struct StarvationFree<L> {
    inner: L,
    /// `FLAG[i]`: process `i` is competing for the lock. Each entry
    /// sits on its own cache line: `FLAG[i]` is written only by
    /// process `i` but spun on by every line-05 waiter, so packed
    /// entries would put each flag write on the coherence critical
    /// path of unrelated waiters (false sharing).
    flag: Vec<CachePadded<RegBool>>,
    /// Identity currently given priority; advances round-robin.
    /// Padded away from the `flag` vector and the inner lock word for
    /// the same reason — every waiter re-reads `TURN` in its spin
    /// loop.
    turn: CachePadded<RegUsize>,
    /// Optional registry handles (see [`StarvationFree::attach_metrics`]).
    metrics: OnceLock<SfMetrics>,
}

impl<L: RawLock> StarvationFree<L> {
    /// Wraps the deadlock-free lock `inner` for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(inner: L, n: usize) -> StarvationFree<L> {
        assert!(n > 0, "the booster needs at least one process");
        StarvationFree {
            inner,
            flag: (0..n)
                .map(|_| CachePadded::new(RegBool::new(false)))
                .collect(),
            turn: CachePadded::new(RegUsize::new(0)),
            metrics: OnceLock::new(),
        }
    }

    /// Registers this lock's fairness metrics into `registry` under
    /// `<prefix>_lock_acquires_total` and
    /// `<prefix>_turn_advances_total`. Idempotent (the first
    /// attachment wins); hot paths pay one uncounted atomic load when
    /// unattached.
    pub fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        let _ = self.metrics.set(SfMetrics {
            acquires: registry.counter(&format!("{prefix}_lock_acquires_total")),
            turn_advances: registry.counter(&format!("{prefix}_turn_advances_total")),
        });
    }

    #[inline]
    fn count_acquire(&self) {
        if let Some(m) = self.metrics.get() {
            m.acquires.inc();
        }
    }

    /// Returns the wrapped lock.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Access to the wrapped lock (for instrumentation).
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Attempts to acquire without waiting: succeeds only if `proc`
    /// passes the line-05 priority predicate immediately *and* the
    /// inner lock is free.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn try_lock(&self, proc: usize) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        self.flag[proc].write(true);
        let t = self.turn.read();
        if (t == proc || !self.flag[t].read()) && self.inner.try_lock() {
            self.count_acquire();
            true
        } else {
            self.flag[proc].write(false);
            false
        }
    }

    /// *Abortable* acquisition (the paper's §1.2 discussion of
    /// abortable mutual exclusion, ref \[13\]): competes for at most
    /// `budget` predicate evaluations, then **stops competing** and
    /// returns `false`. Per the abortable-mutex contract, the
    /// abandonment "has not to alter the liveness of the other
    /// critical section requests": the flag is lowered on abort, so
    /// waiters blocked on `FLAG[TURN]` observe an idle priority holder
    /// and proceed.
    ///
    /// Returns `true` when the lock was acquired (release it with
    /// [`ProcLock::unlock`]).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_abortable(&self, proc: usize, budget: usize) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        let mut spinner = Spinner::new();
        for _ in 0..budget {
            // Line 05 predicate.
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                // Priority granted: go for the inner lock, but stay
                // abortable — try_lock, so a held inner lock counts
                // against the budget instead of blocking forever.
                if self.inner.try_lock() {
                    self.count_acquire();
                    return true;
                }
            }
            spinner.spin();
        }
        // Abort: stop competing. No other waiter can be blocked on us
        // afterwards (they re-read FLAG[TURN] in their wait loop).
        self.flag[proc].write(false);
        false
    }

    /// Deadline-bounded acquisition: like [`ProcLock::lock`], but gives
    /// up — lowering `FLAG[proc]` so nobody waits on a ghost — once
    /// `deadline` expires, whether the wait was on the line-05
    /// predicate or on the inner lock. Returns whether the lock was
    /// acquired (release with [`ProcLock::unlock`]).
    ///
    /// The inner lock is taken through [`RawLock::try_lock_until`], so
    /// even a *wedged* inner lock (e.g. a crashed holder, the §5
    /// failure scenario) cannot block past the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_until(&self, proc: usize, deadline: Deadline) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        fail_point!("sfree::wait");
        // Line 05, deadline-bounded.
        let mut spinner = Spinner::new();
        loop {
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                break;
            }
            if !spinner.spin_deadline(deadline) {
                self.flag[proc].write(false);
                return false;
            }
        }
        // Line 06, deadline-bounded.
        if self.inner.try_lock_until(deadline) {
            self.count_acquire();
            true
        } else {
            self.flag[proc].write(false);
            false
        }
    }
}

impl<L: RawLock> ProcLock for StarvationFree<L> {
    fn n(&self) -> usize {
        self.flag.len()
    }

    fn lock(&self, proc: usize) {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        fail_point!("sfree::wait");
        // Line 05: wait until we have priority or the priority holder
        // is not competing.
        let mut spinner = Spinner::new();
        loop {
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                break;
            }
            spinner.spin();
        }
        // Line 06: go through the (merely deadlock-free) inner lock.
        self.inner.lock();
        self.count_acquire();
    }

    fn unlock(&self, proc: usize) {
        assert!(proc < self.flag.len(), "process id out of range");
        fail_point!("sfree::unlock");
        // Line 10: we are no longer competing.
        self.flag[proc].write(false);
        // Line 11: if the priority holder is idle, pass priority on —
        // round-robin, skipping nobody.
        let t = self.turn.read();
        if !self.flag[t].read() {
            let next = (t + 1) % self.flag.len();
            self.turn.write(next);
            probe!(Event::TurnAdvance(next as u32));
            if let Some(m) = self.metrics.get() {
                m.turn_advances.inc();
            }
        }
        // Line 12.
        self.inner.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;
    use crate::{TasLock, TtasLock};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion_over_tas() {
        stress_proc(StarvationFree::new(TasLock::new(), 4), 4, 2_000);
    }

    #[test]
    fn provides_mutual_exclusion_over_ttas() {
        stress_proc(StarvationFree::new(TtasLock::new(), 4), 4, 2_000);
    }

    #[test]
    fn solo_use_keeps_turn_moving_only_when_idle() {
        let lock = StarvationFree::new(TasLock::new(), 3);
        // Solo acquire/release cycles advance TURN one step each
        // (FLAG[TURN] is false at unlock time).
        for _ in 0..6 {
            lock.lock(0);
            lock.unlock(0);
        }
        // No assertion on the exact TURN value (it is private state);
        // the point is the cycles complete without deadlock.
    }

    /// Starvation-freedom smoke test: with heavy contention from
    /// hoggers, a single low-priority thread must still complete its
    /// operations in bounded time.
    #[test]
    fn victim_thread_completes_under_contention() {
        let lock = Arc::new(StarvationFree::new(TasLock::new(), 4));
        let stop = Arc::new(AtomicBool::new(false));
        let victim_done = Arc::new(AtomicUsize::new(0));

        let hoggers: Vec<_> = (0..3)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        lock.lock(i);
                        lock.unlock(i);
                    }
                })
            })
            .collect();

        let victim = {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&victim_done);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    lock.lock(3);
                    lock.unlock(3);
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        victim.join().expect("victim must not be starved");
        stop.store(true, Ordering::SeqCst);
        for h in hoggers {
            h.join().unwrap();
        }
        assert_eq!(victim_done.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn flag_and_turn_live_on_distinct_cache_lines() {
        // Compile-time: the padding wrapper really is line-sized.
        const _: () = assert!(std::mem::align_of::<CachePadded<RegBool>>() >= 128);
        const _: () = assert!(std::mem::size_of::<CachePadded<RegBool>>() >= 128);
        const _: () = assert!(std::mem::align_of::<CachePadded<RegUsize>>() >= 128);

        // Runtime: adjacent FLAG entries are at least a line apart,
        // and TURN shares a line with none of them.
        let lock = StarvationFree::new(TasLock::new(), 3);
        let addr = |i: usize| std::ptr::from_ref::<CachePadded<RegBool>>(&lock.flag[i]) as usize;
        for i in 0..2 {
            assert!(addr(i + 1).abs_diff(addr(i)) >= 128);
            assert_eq!(addr(i) % 128, 0);
        }
        let turn = std::ptr::from_ref::<CachePadded<RegUsize>>(&lock.turn) as usize;
        for i in 0..3 {
            assert!(turn.abs_diff(addr(i)) >= 128);
        }
    }

    #[test]
    fn attached_metrics_count_acquires_and_turn_advances() {
        let registry = cso_metrics::Registry::new();
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.attach_metrics(&registry, "sf");
        for _ in 0..5 {
            lock.lock(0);
            lock.unlock(0);
        }
        assert!(lock.try_lock(1));
        lock.unlock(1);
        let acquires = registry.counter("sf_lock_acquires_total");
        let advances = registry.counter("sf_turn_advances_total");
        assert_eq!(acquires.value(), 6);
        // Every solo unlock found FLAG[TURN] low and advanced TURN.
        assert_eq!(advances.value(), 6);
        // A second attachment is a no-op, not a double count.
        lock.attach_metrics(&registry, "other");
        lock.lock(0);
        lock.unlock(0);
        assert_eq!(acquires.value(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_process() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.lock(2);
    }

    #[test]
    fn try_lock_succeeds_when_free_and_fails_when_held() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        assert!(lock.try_lock(0));
        assert!(!lock.try_lock(1), "held lock must refuse");
        lock.unlock(0);
        assert!(lock.try_lock(1));
        lock.unlock(1);
    }

    #[test]
    fn abortable_acquisition_times_out_and_reports() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.lock(0);
        // Process 1 gives up after a bounded competition.
        assert!(!lock.lock_abortable(1, 64));
        lock.unlock(0);
        // The abandonment left the lock usable.
        assert!(lock.lock_abortable(1, 64));
        lock.unlock(1);
    }

    /// The abortable-mutex liveness contract (§1.2, ref \[13\]): a
    /// process abandoning its attempt must not impair the other
    /// requests — here, aborters hammer tiny budgets while normal
    /// lockers must all complete.
    #[test]
    fn abandonment_does_not_impair_others() {
        use std::sync::atomic::AtomicBool;
        let lock = Arc::new(StarvationFree::new(TasLock::new(), 4));
        let stop = Arc::new(AtomicBool::new(false));

        let aborters: Vec<_> = (0..2)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut acquired = 0u64;
                    let mut aborted = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if lock.lock_abortable(i, 2) {
                            acquired += 1;
                            lock.unlock(i);
                        } else {
                            aborted += 1;
                        }
                    }
                    (acquired, aborted)
                })
            })
            .collect();

        let lockers: Vec<_> = (2..4)
            .map(|i| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        lock.lock(i);
                        lock.unlock(i);
                    }
                })
            })
            .collect();
        for locker in lockers {
            locker
                .join()
                .expect("normal lockers complete despite aborters");
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_aborts = 0;
        for aborter in aborters {
            let (_, aborted) = aborter.join().unwrap();
            total_aborts += aborted;
        }
        // With budget 2 under contention, aborts genuinely occur.
        let _ = total_aborts;
    }
}
