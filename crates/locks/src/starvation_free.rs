//! The deadlock-free → starvation-free lock booster (§4.4 of the
//! paper).
//!
//! In Figure 3 the starred lines 04–06 and 10–12 form, in the authors'
//! words, "a starvation-free lock from a non-blocking one":
//!
//! ```text
//! starvation_free_lock(i):    FLAG[i] ← true;                      (04)
//!                             wait (TURN = i) ∨ (¬FLAG[TURN]);     (05)
//!                             LOCK.lock();                         (06)
//!
//! starvation_free_unlock(i):  FLAG[i] ← false;                     (10)
//!                             if ¬FLAG[TURN] then
//!                                 TURN ← (TURN mod n) + 1;         (11)
//!                             LOCK.unlock();                       (12)
//! ```
//!
//! `TURN` rotates round-robin over all identities without skipping
//! anyone (Lemma 3, case 2/3), so a flagged process is eventually the
//! unique contender allowed past line 05 and the deadlock-free inner
//! lock must admit it.
//!
//! # Crash tolerance: lock succession
//!
//! The argument above assumes the holder keeps taking steps. §5 of the
//! paper concedes the price of the locked slow path: "if a process
//! crashes while it is inside its critical section, the object is
//! blocked forever". [`StarvationFree::enable_recovery`] attaches a
//! [`Liveness`] lease and a [`RecoveryPolicy`]; waiters can then run
//! [`StarvationFree::lock_recovering`], which falls back to a bounded
//! **succession protocol** when the recorded holder is suspected dead:
//! seize custody of the (still-locked) inner lock word with a CAS on
//! the holder cell, clear the dead process's `FLAG`, and re-arm `TURN`
//! past it, so the round-robin sweep — and with it Lemma 3 — resumes
//! among the survivors. The displaced holder's `unlock` is *fenced*:
//! it loses the custody CAS and must not touch the inner lock the
//! successor now owns. Successions are budgeted; past
//! `max_successions` the lock declares itself unrecoverable
//! ([`StarvationFree::is_poisoned`]) rather than mask a correlated
//! failure forever.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use cso_memory::backoff::{Deadline, Spinner};
use cso_memory::combining::CachePadded;
use cso_memory::fail_point;
use cso_memory::liveness::{Liveness, RecoveryPolicy};
use cso_memory::reg::{RegBool, RegUsize};
use cso_metrics::{Counter, Registry};
use cso_trace::{probe, probe_if, Event, NO_TID};

use crate::raw::{ProcLock, RawLock};

/// Sentinel for "no recorded holder" in [`RecoveryState::holder`].
const NO_HOLDER: usize = usize::MAX;

/// Crash-recovery state, attached once via
/// [`StarvationFree::enable_recovery`]. All plain (uncounted) atomics:
/// custody tracking must not perturb the paper's counted budgets.
#[derive(Debug)]
struct RecoveryState {
    live: Arc<Liveness>,
    policy: RecoveryPolicy,
    /// Identity currently holding the inner lock (`NO_HOLDER` = free).
    /// Written by the holder on acquire; surrendered by CAS — exactly
    /// one of {holder's unlock, a successor's seizure} wins it.
    holder: AtomicUsize,
    /// Succession critical section: `recoverer + 1`, `0` = free. The
    /// lease itself is breakable (a recoverer can die too).
    recovering: AtomicUsize,
    /// Completed successions (monotone; feeds the degradation ladder).
    successions: AtomicU64,
    /// Unlocks by a displaced holder that were fenced off.
    fenced_unlocks: AtomicU64,
    /// Set once the succession budget is exhausted: the lock is
    /// unrecoverable and every `lock_recovering` fails fast.
    failed: AtomicBool,
}

/// The outcome of one [`StarvationFree::try_succeed`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Succession {
    /// The caller now holds the lock (inherited custody of the inner
    /// lock word; release with [`ProcLock::unlock`]).
    Acquired,
    /// Nothing to succeed: the lock is free, recovery is not enabled,
    /// or the recorded holder is not suspected dead. Keep waiting.
    NoSuspect,
    /// Another (live) process is running the succession protocol.
    Busy,
    /// The succession budget is exhausted; the lock is poisoned.
    Exhausted,
}

/// The outcome of a deadline-bounded recovering acquisition
/// ([`StarvationFree::lock_recovering_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveringLock {
    /// The lock is held (acquired normally or by succession); release
    /// with [`ProcLock::unlock`].
    Acquired,
    /// The deadline expired first. Nothing is held and the caller's
    /// `FLAG` is lowered.
    TimedOut,
    /// The succession budget is exhausted; the lock is unrecoverable
    /// (see [`StarvationFree::is_poisoned`]).
    Poisoned,
}

/// A snapshot of recovery progress, from
/// [`StarvationFree::recovery_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfRecoveryStats {
    /// Completed lock successions.
    pub successions: u64,
    /// Unlock attempts by displaced holders that were fenced off.
    pub fenced_unlocks: u64,
    /// True once the succession budget is exhausted.
    pub failed: bool,
    /// The recorded current holder, if any.
    pub holder: Option<usize>,
}

/// Registry handles for an attached [`StarvationFree`] lock. All
/// counters are plain (uncounted) atomics, so attaching metrics never
/// changes the paper's counted-access budgets.
#[derive(Debug)]
struct SfMetrics {
    /// Successful acquisitions through the booster (any entry point).
    acquires: Counter,
    /// Line-11 `TURN` advances (the round-robin fairness handoffs).
    turn_advances: Counter,
    /// Completed lock successions (custody seized from a dead holder).
    successions: Counter,
}

/// Boosts any deadlock-free [`RawLock`] into a starvation-free
/// [`ProcLock`] using the paper's `FLAG`/`TURN` round-robin mechanism.
///
/// This wrapper *is* the paper's contention manager, packaged
/// separately so it can also serve "other fairness-related problems"
/// (§1.2). `cso-core`'s contention-sensitive transformation uses it for
/// the Figure 3 slow path.
///
/// ```
/// use cso_locks::{ProcLock, StarvationFree, TasLock};
///
/// let lock = StarvationFree::new(TasLock::new(), 3);
/// lock.lock(2);
/// // ... critical section ...
/// lock.unlock(2);
/// ```
#[derive(Debug)]
pub struct StarvationFree<L> {
    inner: L,
    /// `FLAG[i]`: process `i` is competing for the lock. Each entry
    /// sits on its own cache line: `FLAG[i]` is written only by
    /// process `i` but spun on by every line-05 waiter, so packed
    /// entries would put each flag write on the coherence critical
    /// path of unrelated waiters (false sharing).
    flag: Vec<CachePadded<RegBool>>,
    /// Identity currently given priority; advances round-robin.
    /// Padded away from the `flag` vector and the inner lock word for
    /// the same reason — every waiter re-reads `TURN` in its spin
    /// loop.
    turn: CachePadded<RegUsize>,
    /// Optional registry handles (see [`StarvationFree::attach_metrics`]).
    metrics: OnceLock<SfMetrics>,
    /// Optional crash-recovery state (see
    /// [`StarvationFree::enable_recovery`]).
    recovery: OnceLock<RecoveryState>,
    /// Trace-thread id of the last releaser, consumed (swapped back to
    /// [`NO_TID`]) by the next acquirer to emit
    /// [`Event::HandoffFrom`]. A plain (uncounted) atomic: causal
    /// stamps must not perturb the paper's counted budgets. Padded —
    /// every release writes it while waiters hammer the inner word.
    prev_tid: CachePadded<AtomicU32>,
    /// Trace-thread id of the current holder's OS thread (uncounted).
    /// Read by a successor after winning the custody CAS to emit
    /// [`Event::CustodyFrom`] against the corpse's thread.
    holder_tid: CachePadded<AtomicU32>,
}

impl<L: RawLock> StarvationFree<L> {
    /// Wraps the deadlock-free lock `inner` for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(inner: L, n: usize) -> StarvationFree<L> {
        assert!(n > 0, "the booster needs at least one process");
        StarvationFree {
            inner,
            flag: (0..n)
                .map(|_| CachePadded::new(RegBool::new(false)))
                .collect(),
            turn: CachePadded::new(RegUsize::new(0)),
            metrics: OnceLock::new(),
            recovery: OnceLock::new(),
            prev_tid: CachePadded::new(AtomicU32::new(NO_TID)),
            holder_tid: CachePadded::new(AtomicU32::new(NO_TID)),
        }
    }

    /// Registers this lock's fairness metrics into `registry` under
    /// `<prefix>_lock_acquires_total`,
    /// `<prefix>_turn_advances_total` and
    /// `<prefix>_lock_successions_total`. Idempotent (the first
    /// attachment wins); hot paths pay one uncounted atomic load when
    /// unattached.
    pub fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        let _ = self.metrics.set(SfMetrics {
            acquires: registry.counter(&format!("{prefix}_lock_acquires_total")),
            turn_advances: registry.counter(&format!("{prefix}_turn_advances_total")),
            successions: registry.counter(&format!("{prefix}_lock_successions_total")),
        });
    }

    #[inline]
    fn count_acquire(&self) {
        if let Some(m) = self.metrics.get() {
            m.acquires.inc();
        }
    }

    /// Returns the wrapped lock.
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// Access to the wrapped lock (for instrumentation).
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Attempts to acquire without waiting: succeeds only if `proc`
    /// passes the line-05 priority predicate immediately *and* the
    /// inner lock is free.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn try_lock(&self, proc: usize) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        self.flag[proc].write(true);
        let t = self.turn.read();
        if (t == proc || !self.flag[t].read()) && self.inner.try_lock() {
            self.note_holder(proc);
            self.count_acquire();
            true
        } else {
            self.flag[proc].write(false);
            false
        }
    }

    /// *Abortable* acquisition (the paper's §1.2 discussion of
    /// abortable mutual exclusion, ref \[13\]): competes for at most
    /// `budget` predicate evaluations, then **stops competing** and
    /// returns `false`. Per the abortable-mutex contract, the
    /// abandonment "has not to alter the liveness of the other
    /// critical section requests": the flag is lowered on abort, so
    /// waiters blocked on `FLAG[TURN]` observe an idle priority holder
    /// and proceed.
    ///
    /// Returns `true` when the lock was acquired (release it with
    /// [`ProcLock::unlock`]).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_abortable(&self, proc: usize, budget: usize) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        let mut spinner = Spinner::new();
        for _ in 0..budget {
            // Line 05 predicate.
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                // Priority granted: go for the inner lock, but stay
                // abortable — try_lock, so a held inner lock counts
                // against the budget instead of blocking forever.
                if self.inner.try_lock() {
                    self.note_holder(proc);
                    self.count_acquire();
                    return true;
                }
            }
            spinner.spin();
        }
        // Abort: stop competing. No other waiter can be blocked on us
        // afterwards (they re-read FLAG[TURN] in their wait loop).
        self.flag[proc].write(false);
        false
    }

    /// Deadline-bounded acquisition: like [`ProcLock::lock`], but gives
    /// up — lowering `FLAG[proc]` so nobody waits on a ghost — once
    /// `deadline` expires, whether the wait was on the line-05
    /// predicate or on the inner lock. Returns whether the lock was
    /// acquired (release with [`ProcLock::unlock`]).
    ///
    /// The inner lock is taken through [`RawLock::try_lock_until`], so
    /// even a *wedged* inner lock (e.g. a crashed holder, the §5
    /// failure scenario) cannot block past the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_until(&self, proc: usize, deadline: Deadline) -> bool {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        fail_point!("sfree::wait");
        // Line 05, deadline-bounded.
        let mut spinner = Spinner::new();
        loop {
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                break;
            }
            if !spinner.spin_deadline(deadline) {
                self.flag[proc].write(false);
                return false;
            }
        }
        // Line 06, deadline-bounded.
        if self.inner.try_lock_until(deadline) {
            self.note_holder(proc);
            self.count_acquire();
            true
        } else {
            self.flag[proc].write(false);
            false
        }
    }

    /// Attaches crash recovery: `live` supplies failure suspicion and
    /// `policy` bounds it. Idempotent (the first attachment wins).
    ///
    /// Once enabled, every acquisition records its identity in an
    /// (uncounted) holder cell, [`ProcLock::unlock`] is custody-fenced,
    /// and waiters may run [`StarvationFree::lock_recovering`] /
    /// [`StarvationFree::try_succeed`].
    ///
    /// # Panics
    ///
    /// Panics if `live` tracks fewer identities than this lock.
    pub fn enable_recovery(&self, live: Arc<Liveness>, policy: RecoveryPolicy) {
        assert!(
            live.n() >= self.flag.len(),
            "liveness registry smaller than the lock's process range"
        );
        let _ = self.recovery.set(RecoveryState {
            live,
            policy,
            holder: AtomicUsize::new(NO_HOLDER),
            recovering: AtomicUsize::new(0),
            successions: AtomicU64::new(0),
            fenced_unlocks: AtomicU64::new(0),
            failed: AtomicBool::new(false),
        });
    }

    /// Records `proc` as the inner-lock holder (recovery custody, when
    /// enabled) and stamps the causal handoff cells. The boosted entry
    /// points do this themselves; call it only when taking the inner
    /// lock *directly* via [`StarvationFree::inner`] (the combining
    /// path), and pair with [`StarvationFree::raw_unlock`].
    #[inline]
    pub fn note_holder(&self, proc: usize) {
        if let Some(rec) = self.recovery.get() {
            rec.holder.store(proc, Ordering::Release);
        }
        self.stamp_acquire();
    }

    /// Causal stamp at every acquisition: consume the releaser's
    /// handoff stamp (so a later successor can never observe a stale
    /// one) and record our own thread as holder. The consuming `swap`
    /// plus the emission keep the helped-by edge exactly-once per
    /// handoff. Relaxed suffices — the stamp was published by the
    /// releaser's inner-lock Release and we hold the lock's Acquire.
    #[inline]
    fn stamp_acquire(&self) {
        let prev = self.prev_tid.swap(NO_TID, Ordering::Relaxed);
        probe_if!(prev != NO_TID, Event::HandoffFrom(prev));
        self.holder_tid.store(probe::thread_id(), Ordering::Relaxed);
    }

    /// Causal stamp at every release: leave our thread id for the next
    /// acquirer. Must run *before* the inner lock's Release store so
    /// the stamp is published with it.
    #[inline]
    fn stamp_release(&self) {
        self.prev_tid.store(probe::thread_id(), Ordering::Relaxed);
    }

    /// Gives up custody of the inner lock. Returns `false` — and the
    /// caller must then leave the inner lock alone — when a successor
    /// seized custody in the meantime: exactly one of {the holder's
    /// surrender, a successor's seizure} wins the CAS on the holder
    /// cell.
    fn surrender_custody(&self, proc: usize) -> bool {
        let Some(rec) = self.recovery.get() else {
            return true;
        };
        if rec
            .holder
            .compare_exchange(proc, NO_HOLDER, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            true
        } else {
            rec.fenced_unlocks.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Fenced release of the **inner** lock for callers that acquired
    /// it directly (combining path): the custody check of
    /// [`ProcLock::unlock`] without the `FLAG`/`TURN` bookkeeping.
    /// Returns whether the inner lock was actually released.
    pub fn raw_unlock(&self, proc: usize) -> bool {
        if self.surrender_custody(proc) {
            self.stamp_release();
            self.inner.unlock();
            true
        } else {
            false
        }
    }

    /// True once the succession budget was exhausted and the lock
    /// declared itself unrecoverable.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.recovery
            .get()
            .is_some_and(|r| r.failed.load(Ordering::Acquire))
    }

    /// A snapshot of recovery progress; `None` until
    /// [`StarvationFree::enable_recovery`].
    #[must_use]
    pub fn recovery_stats(&self) -> Option<SfRecoveryStats> {
        self.recovery.get().map(|r| SfRecoveryStats {
            successions: r.successions.load(Ordering::Acquire),
            fenced_unlocks: r.fenced_unlocks.load(Ordering::Acquire),
            failed: r.failed.load(Ordering::Acquire),
            holder: match r.holder.load(Ordering::Acquire) {
                NO_HOLDER => None,
                h => Some(h),
            },
        })
    }

    /// If the line-05 priority holder (`TURN`) is a suspected corpse
    /// with its `FLAG` still up — the wedge that blocks every waiter's
    /// wait predicate — clear its flag and re-arm `TURN` past it.
    /// Harmless under false suspicion: a live `t` merely loses its
    /// priority slot, never mutual exclusion (the inner lock still
    /// arbitrates).
    fn unwedge_turn(&self, proc: usize, rec: &RecoveryState) {
        let t = self.turn.read();
        if t != proc && self.flag[t].read() && rec.live.suspect(t, rec.policy.grace) {
            probe!(Event::SuspectRaised(t as u32));
            self.flag[t].write(false);
            let next = (t + 1) % self.flag.len();
            self.turn.write(next);
            probe!(Event::TurnAdvance(next as u32));
            if let Some(m) = self.metrics.get() {
                m.turn_advances.inc();
            }
        }
    }

    /// One bounded attempt to recover the lock from a suspected-dead
    /// holder. Safe to call at any time; it never blocks.
    ///
    /// The successor inherits the *still-locked* inner lock word by
    /// winning a CAS on the holder cell (custody transfer) — the lock
    /// is never observably unlocked in between, so no third process
    /// can slip in. It then clears the dead holder's `FLAG` and
    /// re-arms `TURN`, restoring the Lemma 3 round-robin sweep among
    /// the survivors. A falsely suspected (live) holder discovers the
    /// seizure when its fenced `unlock` loses the custody CAS.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn try_succeed(&self, proc: usize) -> Succession {
        self.succeed_impl(proc, true)
    }

    /// [`StarvationFree::try_succeed`] for callers that hold (or want)
    /// the **inner** lock directly, like the combining slow path:
    /// custody is seized without raising `FLAG[proc]`, so the
    /// acquisition must be released with [`StarvationFree::raw_unlock`]
    /// rather than [`ProcLock::unlock`].
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn try_succeed_raw(&self, proc: usize) -> Succession {
        self.succeed_impl(proc, false)
    }

    fn succeed_impl(&self, proc: usize, boosted: bool) -> Succession {
        assert!(proc < self.flag.len(), "process id out of range");
        let Some(rec) = self.recovery.get() else {
            return Succession::NoSuspect;
        };
        if rec.failed.load(Ordering::Acquire) {
            return Succession::Exhausted;
        }
        // A free lock needs no succession — take it normally. This
        // also covers a holder that died *after* surrendering custody:
        // the inner lock is free even though nobody advanced TURN.
        if boosted {
            if self.try_lock(proc) {
                return Succession::Acquired;
            }
        } else if self.inner.try_lock() {
            self.note_holder(proc);
            self.count_acquire();
            return Succession::Acquired;
        }
        // Identify the corpse.
        let h = rec.holder.load(Ordering::Acquire);
        if h == NO_HOLDER || h == proc || !rec.live.suspect(h, rec.policy.grace) {
            return Succession::NoSuspect;
        }
        probe!(Event::SuspectRaised(h as u32));
        // Enter the succession critical section. The lease is itself
        // breakable — a recoverer can die too.
        let me = proc + 1;
        let cur = rec.recovering.load(Ordering::Acquire);
        if cur == me
            || (cur != 0 && !rec.live.suspect(cur - 1, rec.policy.grace))
            || rec
                .recovering
                .compare_exchange(cur, me, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
        {
            return Succession::Busy;
        }
        let outcome = 'seize: {
            // Re-validate under the lease: the holder may have
            // unlocked, been succeeded, or proven alive while we raced
            // here.
            if rec.holder.load(Ordering::Acquire) != h || !rec.live.suspect(h, rec.policy.grace) {
                break 'seize Succession::NoSuspect;
            }
            // Budget: fail fast instead of masking a correlated
            // failure forever.
            if rec.successions.load(Ordering::Acquire) >= u64::from(rec.policy.max_successions) {
                rec.failed.store(true, Ordering::Release);
                break 'seize Succession::Exhausted;
            }
            // Custody transfer: inherit the still-locked inner word.
            if rec
                .holder
                .compare_exchange(h, proc, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                break 'seize Succession::NoSuspect;
            }
            rec.successions.fetch_add(1, Ordering::AcqRel);
            // Causal edge: custody of the still-locked inner word came
            // from the corpse's thread. Read its acquire stamp before
            // overwriting with our own.
            let corpse_tid = self.holder_tid.load(Ordering::Relaxed);
            probe_if!(corpse_tid != NO_TID, Event::CustodyFrom(corpse_tid));
            self.holder_tid.store(probe::thread_id(), Ordering::Relaxed);
            // The corpse is no longer competing: clear its FLAG and
            // re-arm TURN past it (the §4.4 recovery writes).
            self.flag[h].write(false);
            let t = self.turn.read();
            if t == h {
                let next = (t + 1) % self.flag.len();
                self.turn.write(next);
                probe!(Event::TurnAdvance(next as u32));
            }
            // We are the holder now; on the boosted path, compete
            // like one (raw callers release via `raw_unlock` and must
            // not leave a ghost FLAG behind).
            if boosted {
                self.flag[proc].write(true);
                probe!(Event::FlagRaise(proc as u32));
            }
            probe!(Event::LockSucceeded(proc as u32));
            if let Some(m) = self.metrics.get() {
                m.successions.inc();
                m.acquires.inc();
            }
            Succession::Acquired
        };
        rec.recovering.store(0, Ordering::Release);
        outcome
    }

    /// Blocking acquisition that survives dead peers: behaves like
    /// [`ProcLock::lock`] while everyone is live, and runs
    /// [`StarvationFree::try_succeed`] (plus the line-05
    /// [`TURN` unwedge](StarvationFree::try_succeed)) whenever a
    /// bounded wait expires. Heartbeats the caller's own lease each
    /// round. Returns `false` only when the lock is unrecoverable
    /// (succession budget exhausted — see
    /// [`StarvationFree::is_poisoned`]).
    ///
    /// Without [`StarvationFree::enable_recovery`] this is exactly
    /// [`ProcLock::lock`] (and always returns `true`).
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_recovering(&self, proc: usize) -> bool {
        match self.lock_recovering_until(proc, Deadline::NEVER) {
            RecoveringLock::Acquired => true,
            // NEVER cannot time out; Poisoned is the only failure.
            RecoveringLock::TimedOut | RecoveringLock::Poisoned => false,
        }
    }

    /// Deadline-bounded [`StarvationFree::lock_recovering`]: waits in
    /// `policy.backoff`-sized slices, running the unwedge/succession
    /// protocol between slices, until the lock is acquired, the
    /// deadline expires, or the lock poisons itself. Without
    /// [`StarvationFree::enable_recovery`] this is exactly
    /// [`StarvationFree::lock_until`].
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn lock_recovering_until(&self, proc: usize, deadline: Deadline) -> RecoveringLock {
        let Some(rec) = self.recovery.get() else {
            return if self.lock_until(proc, deadline) {
                RecoveringLock::Acquired
            } else {
                RecoveringLock::TimedOut
            };
        };
        loop {
            if rec.failed.load(Ordering::Acquire) {
                return RecoveringLock::Poisoned;
            }
            rec.live.beat(proc);
            let slice = match deadline.remaining() {
                None => rec.policy.backoff,
                Some(left) => left.min(rec.policy.backoff),
            };
            if self.lock_until(proc, Deadline::after(slice)) {
                return RecoveringLock::Acquired;
            }
            // The bounded wait expired: unwedge a dead priority
            // holder, then try to succeed a dead lock holder.
            self.unwedge_turn(proc, rec);
            match self.try_succeed(proc) {
                Succession::Acquired => return RecoveringLock::Acquired,
                Succession::Exhausted => return RecoveringLock::Poisoned,
                Succession::NoSuspect | Succession::Busy => {}
            }
            if deadline.expired() {
                return RecoveringLock::TimedOut;
            }
        }
    }
}

impl<L: RawLock> ProcLock for StarvationFree<L> {
    fn n(&self) -> usize {
        self.flag.len()
    }

    fn lock(&self, proc: usize) {
        assert!(proc < self.flag.len(), "process id out of range");
        // Line 04: announce the competition.
        self.flag[proc].write(true);
        probe!(Event::FlagRaise(proc as u32));
        fail_point!("sfree::wait");
        // Line 05: wait until we have priority or the priority holder
        // is not competing.
        let mut spinner = Spinner::new();
        loop {
            let t = self.turn.read();
            if t == proc || !self.flag[t].read() {
                break;
            }
            spinner.spin();
        }
        // Line 06: go through the (merely deadlock-free) inner lock.
        self.inner.lock();
        self.note_holder(proc);
        self.count_acquire();
    }

    fn unlock(&self, proc: usize) {
        assert!(proc < self.flag.len(), "process id out of range");
        fail_point!("sfree::unlock");
        // Custody check first (recovery only): a displaced holder —
        // falsely suspected, then succeeded — no longer owns the inner
        // lock and must not release it out from under its successor.
        // Exactly one of {this surrender, a successor's seizure} wins
        // the holder cell.
        if !self.surrender_custody(proc) {
            self.flag[proc].write(false);
            return;
        }
        // Line 10: we are no longer competing.
        self.flag[proc].write(false);
        // Line 11: if the priority holder is idle, pass priority on —
        // round-robin, skipping nobody.
        let t = self.turn.read();
        if !self.flag[t].read() {
            let next = (t + 1) % self.flag.len();
            self.turn.write(next);
            probe!(Event::TurnAdvance(next as u32));
            if let Some(m) = self.metrics.get() {
                m.turn_advances.inc();
            }
        }
        // Line 12.
        self.stamp_release();
        self.inner.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;
    use crate::{TasLock, TtasLock};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion_over_tas() {
        stress_proc(StarvationFree::new(TasLock::new(), 4), 4, 2_000);
    }

    #[test]
    fn provides_mutual_exclusion_over_ttas() {
        stress_proc(StarvationFree::new(TtasLock::new(), 4), 4, 2_000);
    }

    #[test]
    fn solo_use_keeps_turn_moving_only_when_idle() {
        let lock = StarvationFree::new(TasLock::new(), 3);
        // Solo acquire/release cycles advance TURN one step each
        // (FLAG[TURN] is false at unlock time).
        for _ in 0..6 {
            lock.lock(0);
            lock.unlock(0);
        }
        // No assertion on the exact TURN value (it is private state);
        // the point is the cycles complete without deadlock.
    }

    /// Starvation-freedom smoke test: with heavy contention from
    /// hoggers, a single low-priority thread must still complete its
    /// operations in bounded time.
    #[test]
    fn victim_thread_completes_under_contention() {
        let lock = Arc::new(StarvationFree::new(TasLock::new(), 4));
        let stop = Arc::new(AtomicBool::new(false));
        let victim_done = Arc::new(AtomicUsize::new(0));

        let hoggers: Vec<_> = (0..3)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        lock.lock(i);
                        lock.unlock(i);
                    }
                })
            })
            .collect();

        let victim = {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&victim_done);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    lock.lock(3);
                    lock.unlock(3);
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        victim.join().expect("victim must not be starved");
        stop.store(true, Ordering::SeqCst);
        for h in hoggers {
            h.join().unwrap();
        }
        assert_eq!(victim_done.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn flag_and_turn_live_on_distinct_cache_lines() {
        // Compile-time: the padding wrapper really is line-sized.
        const _: () = assert!(std::mem::align_of::<CachePadded<RegBool>>() >= 128);
        const _: () = assert!(std::mem::size_of::<CachePadded<RegBool>>() >= 128);
        const _: () = assert!(std::mem::align_of::<CachePadded<RegUsize>>() >= 128);

        // Runtime: adjacent FLAG entries are at least a line apart,
        // and TURN shares a line with none of them.
        let lock = StarvationFree::new(TasLock::new(), 3);
        let addr = |i: usize| std::ptr::from_ref::<CachePadded<RegBool>>(&lock.flag[i]) as usize;
        for i in 0..2 {
            assert!(addr(i + 1).abs_diff(addr(i)) >= 128);
            assert_eq!(addr(i) % 128, 0);
        }
        let turn = std::ptr::from_ref::<CachePadded<RegUsize>>(&lock.turn) as usize;
        for i in 0..3 {
            assert!(turn.abs_diff(addr(i)) >= 128);
        }
    }

    #[test]
    fn attached_metrics_count_acquires_and_turn_advances() {
        let registry = cso_metrics::Registry::new();
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.attach_metrics(&registry, "sf");
        for _ in 0..5 {
            lock.lock(0);
            lock.unlock(0);
        }
        assert!(lock.try_lock(1));
        lock.unlock(1);
        let acquires = registry.counter("sf_lock_acquires_total");
        let advances = registry.counter("sf_turn_advances_total");
        assert_eq!(acquires.value(), 6);
        // Every solo unlock found FLAG[TURN] low and advanced TURN.
        assert_eq!(advances.value(), 6);
        // A second attachment is a no-op, not a double count.
        lock.attach_metrics(&registry, "other");
        lock.lock(0);
        lock.unlock(0);
        assert_eq!(acquires.value(), 7);
    }

    /// Causal-edge stamps only materialize with the `trace` feature
    /// (thread ids come from the probe rings); the cells themselves
    /// exist in every build.
    #[cfg(feature = "trace")]
    mod causal {
        use super::*;

        /// The probe rings are process-global; live tests serialize.
        fn serial() -> std::sync::MutexGuard<'static, ()> {
            static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
            M.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        #[test]
        fn unlock_then_lock_emits_a_handoff_edge() {
            let _serial = serial();
            probe::clear();
            let lock = Arc::new(StarvationFree::new(TasLock::new(), 2));
            lock.lock(0);
            let releaser = probe::thread_id();
            lock.unlock(0);
            let peer = Arc::clone(&lock);
            std::thread::spawn(move || {
                peer.lock(1);
                peer.unlock(1);
            })
            .join()
            .unwrap();
            let trace = probe::collect();
            let edge = trace
                .events
                .iter()
                .find(|e| matches!(e.event, Event::HandoffFrom(_)))
                .expect("the second acquisition records a handoff edge");
            assert_eq!(edge.event, Event::HandoffFrom(releaser));
            assert_ne!(
                edge.thread, releaser,
                "the edge is on the acquirer's thread"
            );
        }

        #[test]
        fn succession_emits_a_custody_edge_from_the_corpse_thread() {
            use cso_memory::liveness::Liveness;
            let _serial = serial();
            probe::clear();
            let lock = Arc::new(StarvationFree::new(TasLock::new(), 3));
            let live = Liveness::new(3);
            lock.enable_recovery(Arc::clone(&live), test_policy());
            for p in 0..3 {
                live.announce(p);
            }
            // The corpse acquires on a different OS thread, then "dies"
            // holding the lock.
            let held = Arc::clone(&lock);
            let corpse_tid = std::thread::spawn(move || {
                held.lock(0);
                probe::thread_id()
            })
            .join()
            .unwrap();
            live.mark_dead(0);
            assert_eq!(lock.try_succeed(1), Succession::Acquired);
            let trace = probe::collect();
            let edge = trace
                .events
                .iter()
                .find(|e| matches!(e.event, Event::CustodyFrom(_)))
                .expect("the seizure records a custody edge");
            assert_eq!(edge.event, Event::CustodyFrom(corpse_tid));
            assert_ne!(
                edge.thread, corpse_tid,
                "the edge is on the successor's thread"
            );
            lock.unlock(1);
        }

        #[test]
        fn a_successor_never_sees_the_pre_corpse_handoff_stamp() {
            use cso_memory::liveness::Liveness;
            let _serial = serial();
            probe::clear();
            let lock = Arc::new(StarvationFree::new(TasLock::new(), 3));
            let live = Liveness::new(3);
            lock.enable_recovery(Arc::clone(&live), test_policy());
            for p in 0..3 {
                live.announce(p);
            }
            // A full handoff cycle first, so prev_tid has been written
            // once...
            lock.lock(2);
            lock.unlock(2);
            // ...then the corpse acquires (consuming the stamp) and dies.
            let held = Arc::clone(&lock);
            std::thread::spawn(move || held.lock(0)).join().unwrap();
            live.mark_dead(0);
            probe::clear();
            assert_eq!(lock.try_succeed(1), Succession::Acquired);
            let trace = probe::collect();
            assert!(
                !trace
                    .events
                    .iter()
                    .any(|e| matches!(e.event, Event::HandoffFrom(_))),
                "custody transfer must not fabricate a handoff edge"
            );
            lock.unlock(1);
        }
    }

    /// A recovery policy for tests: only explicit `mark_dead` raises
    /// suspicion (huge grace), and waits retry quickly.
    fn test_policy() -> cso_memory::liveness::RecoveryPolicy {
        cso_memory::liveness::RecoveryPolicy {
            grace: std::time::Duration::from_secs(3600),
            max_successions: 4,
            backoff: std::time::Duration::from_millis(1),
        }
    }

    #[test]
    fn succession_seizes_a_dead_holders_lock_and_fences_its_unlock() {
        use cso_memory::liveness::Liveness;
        let lock = StarvationFree::new(TasLock::new(), 3);
        let live = Liveness::new(3);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        for p in 0..3 {
            live.announce(p);
        }

        lock.lock(0);
        assert_eq!(lock.try_succeed(1), Succession::NoSuspect, "live holder");
        live.mark_dead(0);
        assert_eq!(lock.try_succeed(1), Succession::Acquired);
        let stats = lock.recovery_stats().expect("recovery enabled");
        assert_eq!(stats.successions, 1);
        assert_eq!(stats.holder, Some(1));
        assert!(!stats.failed);

        // The displaced holder's unlock is fenced off: it must not
        // release the lock its successor now owns.
        lock.unlock(0);
        let stats = lock.recovery_stats().unwrap();
        assert_eq!(stats.fenced_unlocks, 1);
        assert_eq!(stats.holder, Some(1), "successor still holds");
        assert!(!lock.try_lock(2), "lock is genuinely still held");

        // The successor releases normally and the lock stays usable.
        lock.unlock(1);
        assert!(lock.try_lock(2));
        lock.unlock(2);
    }

    #[test]
    fn succession_budget_exhausts_and_poisons_the_lock() {
        use cso_memory::liveness::Liveness;
        let mut policy = test_policy();
        policy.max_successions = 1;
        let lock = StarvationFree::new(TasLock::new(), 3);
        let live = Liveness::new(3);
        lock.enable_recovery(Arc::clone(&live), policy);
        for p in 0..3 {
            live.announce(p);
        }

        lock.lock(0);
        live.mark_dead(0);
        assert_eq!(lock.try_succeed(1), Succession::Acquired);
        assert!(!lock.is_poisoned());

        // The successor dies too: the budget (1) is spent, so the next
        // succession fails fast instead of masking a correlated
        // failure.
        live.mark_dead(1);
        assert_eq!(lock.try_succeed(2), Succession::Exhausted);
        assert!(lock.is_poisoned());
        assert!(lock.recovery_stats().unwrap().failed);
        assert!(!lock.lock_recovering(2), "poisoned lock fails fast");
    }

    #[test]
    fn lock_recovering_survives_a_holder_that_dies_mid_section() {
        use cso_memory::liveness::Liveness;
        let lock = Arc::new(StarvationFree::new(TasLock::new(), 2));
        let live = Liveness::new(2);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        live.announce(0);
        live.announce(1);

        // Process 0 takes the lock and "crashes" (never unlocks).
        lock.lock(0);
        live.mark_dead(0);

        // Process 1 must get through anyway, via succession.
        assert!(lock.lock_recovering(1));
        assert_eq!(lock.recovery_stats().unwrap().holder, Some(1));
        lock.unlock(1);

        // And the lock remains a working lock afterwards.
        assert!(lock.lock_recovering(1));
        lock.unlock(1);
        assert_eq!(lock.recovery_stats().unwrap().successions, 1);
    }

    #[test]
    fn lock_recovering_until_times_out_on_a_live_holder() {
        use cso_memory::liveness::Liveness;
        let lock = StarvationFree::new(TasLock::new(), 2);
        let live = Liveness::new(2);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        live.announce(0);
        live.announce(1);

        // A live holder is never succeeded: the bounded wait expires.
        lock.lock(0);
        assert_eq!(
            lock.lock_recovering_until(1, Deadline::after(std::time::Duration::from_millis(5))),
            RecoveringLock::TimedOut
        );
        lock.unlock(0);

        // Free lock: acquired within the deadline.
        assert_eq!(
            lock.lock_recovering_until(1, Deadline::after(std::time::Duration::from_millis(50))),
            RecoveringLock::Acquired
        );
        lock.unlock(1);

        // Dead holder: succeeded within the deadline.
        lock.lock(0);
        live.mark_dead(0);
        assert_eq!(
            lock.lock_recovering_until(1, Deadline::after(std::time::Duration::from_secs(5))),
            RecoveringLock::Acquired
        );
        lock.unlock(1);
    }

    #[test]
    fn raw_unlock_pairs_with_note_holder_and_fences_seizure() {
        use cso_memory::liveness::Liveness;
        let lock = StarvationFree::new(TasLock::new(), 2);
        let live = Liveness::new(2);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        live.announce(0);
        live.announce(1);

        // The combining path takes the inner lock directly.
        assert!(lock.inner().try_lock());
        lock.note_holder(0);
        assert_eq!(lock.recovery_stats().unwrap().holder, Some(0));
        live.mark_dead(0);
        assert_eq!(lock.try_succeed(1), Succession::Acquired);
        assert!(!lock.raw_unlock(0), "displaced combiner is fenced");
        lock.unlock(1);

        // Un-seized raw custody round-trips cleanly.
        live.announce(0);
        assert!(lock.inner().try_lock());
        lock.note_holder(0);
        assert!(lock.raw_unlock(0));
        assert!(lock.try_lock(1));
        lock.unlock(1);
    }

    #[test]
    fn raw_succession_leaves_no_ghost_flag() {
        use cso_memory::liveness::Liveness;
        let lock = StarvationFree::new(TasLock::new(), 2);
        let live = Liveness::new(2);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        live.announce(0);
        live.announce(1);

        // A direct inner-lock holder (combining tenure) dies.
        assert!(lock.inner().try_lock());
        lock.note_holder(0);
        live.mark_dead(0);
        assert_eq!(lock.try_succeed_raw(1), Succession::Acquired);
        assert_eq!(lock.recovery_stats().unwrap().holder, Some(1));
        assert!(lock.raw_unlock(1));

        // No FLAG was raised by the raw seizure: a boosted waiter gets
        // straight through instead of waiting on a ghost competitor.
        assert!(lock.try_lock(0) || lock.try_lock(1));
    }

    #[test]
    fn without_recovery_the_new_entry_points_degrade_to_plain_locking() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        assert!(lock.lock_recovering(0));
        assert_eq!(lock.try_succeed(1), Succession::NoSuspect);
        lock.unlock(0);
        assert!(!lock.is_poisoned());
        assert!(lock.recovery_stats().is_none());
        // The raw custody pair is a plain inner lock/unlock.
        assert!(lock.inner().try_lock());
        lock.note_holder(0);
        assert!(lock.raw_unlock(0));
    }

    #[test]
    fn succession_is_counted_by_attached_metrics() {
        use cso_memory::liveness::Liveness;
        let registry = cso_metrics::Registry::new();
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.attach_metrics(&registry, "sfr");
        let live = Liveness::new(2);
        lock.enable_recovery(Arc::clone(&live), test_policy());
        live.announce(0);
        live.announce(1);
        lock.lock(0);
        live.mark_dead(0);
        assert_eq!(lock.try_succeed(1), Succession::Acquired);
        lock.unlock(1);
        assert_eq!(registry.counter("sfr_lock_successions_total").value(), 1);
        // The seizure is an acquisition too.
        assert_eq!(registry.counter("sfr_lock_acquires_total").value(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_process() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.lock(2);
    }

    #[test]
    fn try_lock_succeeds_when_free_and_fails_when_held() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        assert!(lock.try_lock(0));
        assert!(!lock.try_lock(1), "held lock must refuse");
        lock.unlock(0);
        assert!(lock.try_lock(1));
        lock.unlock(1);
    }

    #[test]
    fn abortable_acquisition_times_out_and_reports() {
        let lock = StarvationFree::new(TasLock::new(), 2);
        lock.lock(0);
        // Process 1 gives up after a bounded competition.
        assert!(!lock.lock_abortable(1, 64));
        lock.unlock(0);
        // The abandonment left the lock usable.
        assert!(lock.lock_abortable(1, 64));
        lock.unlock(1);
    }

    /// The abortable-mutex liveness contract (§1.2, ref \[13\]): a
    /// process abandoning its attempt must not impair the other
    /// requests — here, aborters hammer tiny budgets while normal
    /// lockers must all complete.
    #[test]
    fn abandonment_does_not_impair_others() {
        use std::sync::atomic::AtomicBool;
        let lock = Arc::new(StarvationFree::new(TasLock::new(), 4));
        let stop = Arc::new(AtomicBool::new(false));

        let aborters: Vec<_> = (0..2)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut acquired = 0u64;
                    let mut aborted = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if lock.lock_abortable(i, 2) {
                            acquired += 1;
                            lock.unlock(i);
                        } else {
                            aborted += 1;
                        }
                    }
                    (acquired, aborted)
                })
            })
            .collect();

        let lockers: Vec<_> = (2..4)
            .map(|i| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        lock.lock(i);
                        lock.unlock(i);
                    }
                })
            })
            .collect();
        for locker in lockers {
            locker
                .join()
                .expect("normal lockers complete despite aborters");
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_aborts = 0;
        for aborter in aborters {
            let (_, aborted) = aborter.join().unwrap();
            total_aborts += aborted;
        }
        // With budget 2 under contention, aborts genuinely occur.
        let _ = total_aborts;
    }
}
