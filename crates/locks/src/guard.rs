//! RAII guards pairing a lock acquisition with its release.

use crate::raw::{ProcLock, RawLock};
use std::fmt;

/// Releases a [`RawLock`] when dropped.
///
/// Created by [`RawLock::lock_guard`]; see that method for an example.
pub struct LockGuard<'a, L: RawLock + ?Sized> {
    lock: &'a L,
}

impl<'a, L: RawLock + ?Sized> LockGuard<'a, L> {
    pub(crate) fn new(lock: &'a L) -> LockGuard<'a, L> {
        LockGuard { lock }
    }
}

impl<L: RawLock + ?Sized> Drop for LockGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

impl<L: RawLock + ?Sized> fmt::Debug for LockGuard<'_, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockGuard").finish_non_exhaustive()
    }
}

/// Releases a [`ProcLock`] (with the acquiring identity) when dropped.
///
/// Created by [`ProcLock::lock_proc_guard`].
pub struct ProcLockGuard<'a, L: ProcLock + ?Sized> {
    lock: &'a L,
    proc: usize,
}

impl<'a, L: ProcLock + ?Sized> ProcLockGuard<'a, L> {
    pub(crate) fn new(lock: &'a L, proc: usize) -> ProcLockGuard<'a, L> {
        ProcLockGuard { lock, proc }
    }

    /// The identity that holds the lock through this guard.
    #[must_use]
    pub fn proc(&self) -> usize {
        self.proc
    }
}

impl<L: ProcLock + ?Sized> Drop for ProcLockGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.unlock(self.proc);
    }
}

impl<L: ProcLock + ?Sized> fmt::Debug for ProcLockGuard<'_, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcLockGuard")
            .field("proc", &self.proc)
            .finish()
    }
}
