//! CLH queue lock (Craig; Landin & Hagersten).

use std::sync::atomic::{AtomicUsize, Ordering};

use cso_memory::backoff::Spinner;
use cso_memory::reg::{RegBool, RegUsize};
use cso_trace::{probe, Event};

use crate::raw::ProcLock;

/// The CLH queue lock: acquirers enqueue an *implicit* node and spin on
/// their predecessor's flag.
///
/// Starvation-free (FIFO by queue order) and, on cache-coherent
/// machines, each waiter spins on a distinct location. Node recycling
/// follows the classical scheme: after releasing, a process adopts its
/// predecessor's node for its next acquisition, so `n + 1` nodes
/// suffice for `n` processes.
///
/// ```
/// use cso_locks::{ClhLock, ProcLock};
/// let lock = ClhLock::new(4);
/// lock.lock(2);
/// lock.unlock(2);
/// ```
#[derive(Debug)]
pub struct ClhLock {
    /// `nodes[x]` is true while the process owning node `x` holds or
    /// awaits the lock.
    nodes: Vec<RegBool>,
    /// Index of the most recently enqueued node.
    tail: RegUsize,
    /// Per-process current node (only process `i` touches entry `i`).
    my_node: Vec<AtomicUsize>,
    /// Per-process predecessor node, remembered between lock and
    /// unlock (only process `i` touches entry `i`).
    my_pred: Vec<AtomicUsize>,
}

impl ClhLock {
    /// Creates a lock for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> ClhLock {
        assert!(n > 0, "a CLH lock needs at least one process");
        // Node 0 is the initial dummy (unlocked); node i+1 belongs to
        // process i.
        let nodes = (0..=n).map(|_| RegBool::new(false)).collect();
        let my_node = (0..n).map(|i| AtomicUsize::new(i + 1)).collect();
        let my_pred = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        ClhLock {
            nodes,
            tail: RegUsize::new(0),
            my_node,
            my_pred,
        }
    }
}

impl ProcLock for ClhLock {
    fn n(&self) -> usize {
        self.my_node.len()
    }

    fn lock(&self, proc: usize) {
        let node = self.my_node[proc].load(Ordering::Relaxed);
        self.nodes[node].write(true);
        let pred = self.tail.swap(node);
        self.my_pred[proc].store(pred, Ordering::Relaxed);
        let mut spinner = Spinner::new();
        while self.nodes[pred].read() {
            spinner.spin();
        }
    }

    fn unlock(&self, proc: usize) {
        let node = self.my_node[proc].load(Ordering::Relaxed);
        self.nodes[node].write(false);
        probe!(Event::LockHandoff("clh"));
        // Recycle: the predecessor's node is now free for our reuse.
        let pred = self.my_pred[proc].load(Ordering::Relaxed);
        self.my_node[proc].store(pred, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;

    #[test]
    fn single_process_lock_unlock_repeats() {
        let lock = ClhLock::new(1);
        for _ in 0..1_000 {
            lock.lock(0);
            lock.unlock(0);
        }
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_proc(ClhLock::new(4), 4, 2_500);
    }

    #[test]
    fn reports_n() {
        assert_eq!(ClhLock::new(7).n(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_lock_panics() {
        let _ = ClhLock::new(0);
    }
}
