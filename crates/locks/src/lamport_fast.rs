//! Lamport's fast mutual-exclusion algorithm (1987).
//!
//! Reference \[16\] of the paper — the first contention-sensitive
//! algorithm avant la lettre: "in a contention-free context, a process
//! has to execute only **seven** shared memory accesses to enter [and
//! leave] the critical section. When there is contention, the number
//! of shared memory accesses depends on the number of processes".
//! Experiment E1 measures exactly this seven-access fast path.

use cso_memory::backoff::Spinner;
use cso_memory::reg::{RegBool, RegUsize};

use crate::raw::ProcLock;

const NONE: usize = 0;

/// Lamport's fast mutex for `n` processes.
///
/// Built from read/write registers only (no `Compare&Swap`).
/// Deadlock-free but **not** starvation-free: under contention a
/// process can lose the `x`/`y` race repeatedly. Contention-free cost:
/// five accesses to acquire plus two to release — the "seven" of the
/// paper's introduction.
///
/// ```
/// use cso_locks::{LamportFastLock, ProcLock};
/// let lock = LamportFastLock::new(4);
/// lock.lock(1);
/// lock.unlock(1);
/// ```
#[derive(Debug)]
pub struct LamportFastLock {
    /// Doorway register written by every entrant (`i + 1`; 0 = none).
    x: RegUsize,
    /// Gate register: non-zero while the critical section is claimed.
    y: RegUsize,
    /// `b[i]`: process `i` is trying.
    b: Vec<RegBool>,
}

impl LamportFastLock {
    /// Creates an unlocked lock for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> LamportFastLock {
        assert!(n > 0, "a Lamport fast lock needs at least one process");
        LamportFastLock {
            x: RegUsize::new(NONE),
            y: RegUsize::new(NONE),
            b: (0..n).map(|_| RegBool::new(false)).collect(),
        }
    }
}

impl ProcLock for LamportFastLock {
    fn n(&self) -> usize {
        self.b.len()
    }

    fn lock(&self, proc: usize) {
        let me = proc + 1;
        let mut spinner = Spinner::new();
        loop {
            self.b[proc].write(true); // access 1
            self.x.write(me); // access 2
            if self.y.read() != NONE {
                // access 3 (slow branch)
                self.b[proc].write(false);
                while self.y.read() != NONE {
                    spinner.spin();
                }
                continue;
            }
            self.y.write(me); // access 4
            if self.x.read() != me {
                // access 5 (slow branch)
                self.b[proc].write(false);
                // Wait for every announced contender to retreat.
                for j in 0..self.b.len() {
                    while self.b[j].read() {
                        spinner.spin();
                    }
                }
                if self.y.read() != me {
                    while self.y.read() != NONE {
                        spinner.spin();
                    }
                    continue;
                }
            }
            return; // fast path: accesses 1–5
        }
    }

    fn unlock(&self, proc: usize) {
        self.y.write(NONE); // access 6
        self.b[proc].write(false); // access 7
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;
    use cso_memory::counting::CountScope;

    #[test]
    fn provides_mutual_exclusion() {
        stress_proc(LamportFastLock::new(4), 4, 2_500);
    }

    #[test]
    fn solo_acquire_release_is_seven_accesses() {
        let lock = LamportFastLock::new(8);
        // Warm up once, then measure.
        lock.lock(0);
        lock.unlock(0);
        let scope = CountScope::start();
        lock.lock(0);
        lock.unlock(0);
        let counts = scope.take();
        assert_eq!(
            counts.total(),
            7,
            "paper ref [16]: contention-free entry+exit must be 7 accesses, got {counts}"
        );
    }

    #[test]
    fn fast_path_cost_is_independent_of_n() {
        for n in [1, 2, 16, 64] {
            let lock = LamportFastLock::new(n);
            let scope = CountScope::start();
            lock.lock(0);
            lock.unlock(0);
            assert_eq!(scope.take().total(), 7, "n = {n}");
        }
    }

    #[test]
    fn handoff_between_two_processes() {
        use std::sync::Arc;
        let lock = Arc::new(LamportFastLock::new(2));
        let l2 = Arc::clone(&lock);
        lock.lock(0);
        let waiter = std::thread::spawn(move || {
            l2.lock(1);
            l2.unlock(1);
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lock.unlock(0);
        assert!(waiter.join().unwrap());
    }
}
