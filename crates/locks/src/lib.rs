//! Lock substrate for the `cso` workspace.
//!
//! The contention-sensitive stack of Mostefaoui & Raynal (2011),
//! Figure 3, needs a lock that is only **deadlock-free** — its
//! `FLAG`/`TURN` mechanism (§4.4) boosts any such lock to starvation
//! freedom. This crate provides that boost plus a menu of classical
//! spin locks so the benchmarks can compare substrates:
//!
//! | Lock | Trait | Progress | Notes |
//! |---|---|---|---|
//! | [`TasLock`] | [`RawLock`] | deadlock-free | test-and-set; the paper's minimal assumption |
//! | [`TtasLock`] | [`RawLock`] | deadlock-free | test-and-test-and-set with exponential backoff |
//! | [`TicketLock`] | [`RawLock`] | starvation-free | FIFO |
//! | [`OsLock`] | [`RawLock`] | deadlock-free | `std` mutex + condvar (OS-assisted state of practice) |
//! | [`ClhLock`] | [`ProcLock`] | starvation-free | implicit queue of spin nodes |
//! | [`McsLock`] | [`ProcLock`] | starvation-free | explicit queue, local spinning |
//! | [`PetersonLock`] | 2-proc | starvation-free | classic 2-process algorithm |
//! | [`TournamentLock`] | [`ProcLock`] | starvation-free | Peterson tree for `n` processes |
//! | [`LamportFastLock`] | [`ProcLock`] | deadlock-free | 7 shared accesses on a contention-free acquire+release (paper ref \[16\]) |
//! | [`StarvationFree`] | [`ProcLock`] | starvation-free | §4.4 booster over any deadlock-free [`RawLock`] |
//!
//! Every lock is built on the counted registers of [`cso_memory::reg`],
//! so its shared-memory step complexity is measurable (experiment E7;
//! the Lamport fast-path claim is E1).
//!
//! # Example
//!
//! ```
//! use cso_locks::{RawLock, TasLock, StarvationFree};
//!
//! // A deadlock-free lock...
//! let tas = TasLock::new();
//! {
//!     let _guard = tas.lock_guard();
//!     // critical section
//! }
//!
//! // ...boosted to starvation freedom for 4 processes (§4.4).
//! use cso_locks::ProcLock;
//! let fair = StarvationFree::new(TasLock::new(), 4);
//! fair.lock(0);
//! fair.unlock(0);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod clh;
mod guard;
mod lamport_fast;
mod mcs;
mod os;
mod peterson;
mod raw;
mod starvation_free;
mod tas;
mod ticket;
mod ttas;

pub use clh::ClhLock;
pub use guard::{LockGuard, ProcLockGuard};
pub use lamport_fast::LamportFastLock;
pub use mcs::McsLock;
pub use os::OsLock;
pub use peterson::{PetersonLock, TournamentLock};
pub use raw::{Anonymous, ProcLock, RawLock};
pub use starvation_free::{RecoveringLock, SfRecoveryStats, StarvationFree, Succession};
pub use tas::TasLock;
pub use ticket::TicketLock;
pub use ttas::TtasLock;

/// Every probe event the lock substrate emits, paired with the causal
/// site class a what-if profiling run delays it under (`"-"` for
/// events never delayed). The class names mirror
/// `cso_trace::probe::SiteClass`; `cso-profile` carries a test keeping
/// this table and `Event::site_class` in sync.
pub const PROBE_SITES: &[(&str, &str)] = &[
    ("flag-raise", "flag-wait"),
    ("turn-advance", "lock-handoff"),
    ("lock-handoff", "lock-handoff"),
    ("lock-succeeded", "lock-handoff"),
    ("suspect-raised", "-"),
    // Causal annotations (cross-thread helped-by edges); never
    // delayed — they carry attribution, not work.
    ("handoff-from", "-"),
    ("custody-from", "-"),
];

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared stress harnesses: every lock must provide mutual
    //! exclusion and lose no increments.

    use super::{ProcLock, RawLock};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A critical-section monitor: `enter` asserts nobody else is
    /// inside.
    #[derive(Default)]
    pub struct Critical {
        inside: AtomicUsize,
        count: AtomicUsize,
    }

    impl Critical {
        pub fn enter(&self) {
            let prev = self.inside.fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "mutual exclusion violated");
        }

        pub fn exit(&self) {
            self.count.fetch_add(1, Ordering::SeqCst);
            let prev = self.inside.fetch_sub(1, Ordering::SeqCst);
            assert_eq!(prev, 1, "exit without enter");
        }

        pub fn count(&self) -> usize {
            self.count.load(Ordering::SeqCst)
        }
    }

    pub fn stress_raw<L: RawLock + 'static>(lock: L, threads: usize, iters: usize) {
        let lock = Arc::new(lock);
        let critical = Arc::new(Critical::default());
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let critical = Arc::clone(&critical);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        lock.lock();
                        critical.enter();
                        critical.exit();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(critical.count(), threads * iters);
    }

    pub fn stress_proc<L: ProcLock + 'static>(lock: L, threads: usize, iters: usize) {
        assert!(threads <= lock.n());
        let lock = Arc::new(lock);
        let critical = Arc::new(Critical::default());
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let critical = Arc::clone(&critical);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        lock.lock(i);
                        critical.enter();
                        critical.exit();
                        lock.unlock(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(critical.count(), threads * iters);
    }
}
