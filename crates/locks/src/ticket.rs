//! Ticket (bakery-counter) lock.

use cso_memory::backoff::Spinner;
use cso_memory::fail_point;
use cso_memory::reg::RegUsize;

use crate::raw::RawLock;

/// A FIFO spin lock: acquirers draw a ticket and wait for it to be
/// served.
///
/// Unlike TAS/TTAS this lock is **starvation-free** by construction —
/// tickets are served in draw order — so it is a useful comparison
/// point for the paper's §4.4 booster: Figure 3's remark notes that
/// with a starvation-free lock the `FLAG`/`TURN` machinery (lines
/// 04-05 and 10-11) can be dropped entirely.
///
/// ```
/// use cso_locks::{RawLock, TicketLock};
/// let lock = TicketLock::new();
/// lock.lock();
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct TicketLock {
    next: RegUsize,
    serving: RegUsize,
}

impl TicketLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> TicketLock {
        TicketLock {
            next: RegUsize::new(0),
            serving: RegUsize::new(0),
        }
    }
}

impl Default for TicketLock {
    fn default() -> TicketLock {
        TicketLock::new()
    }
}

impl RawLock for TicketLock {
    fn lock(&self) {
        fail_point!("ticket::acquire");
        let ticket = self.next.fetch_add(1);
        let mut spinner = Spinner::new();
        while self.serving.read() != ticket {
            spinner.spin();
        }
    }

    fn unlock(&self) {
        fail_point!("ticket::release");
        // Only the holder advances `serving`, so read-then-write is
        // race-free.
        let current = self.serving.read();
        self.serving.write(current.wrapping_add(1));
    }

    fn try_lock(&self) -> bool {
        let serving = self.serving.read();
        // Acquire only if we can take the very ticket being served.
        self.next.cas(serving, serving.wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_raw;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn try_lock_only_succeeds_when_free() {
        let lock = TicketLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_raw(TicketLock::new(), 4, 2_500);
    }

    #[test]
    fn acquisitions_are_fifo() {
        // One holder; two waiters queue up; the first to draw a ticket
        // must win. We serialize draws with a rendezvous.
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(AtomicUsize::new(0));
        lock.lock();

        let first = {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                lock.lock();
                let pos = order.fetch_add(1, Ordering::SeqCst);
                lock.unlock();
                pos
            })
        };
        // Give the first waiter time to draw its ticket.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let second = {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                lock.lock();
                let pos = order.fetch_add(1, Ordering::SeqCst);
                lock.unlock();
                pos
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        lock.unlock();
        assert_eq!(
            first.join().unwrap(),
            0,
            "earlier ticket must be served first"
        );
        assert_eq!(second.join().unwrap(), 1);
    }
}
