//! MCS queue lock (Mellor-Crummey & Scott).

use cso_memory::backoff::Spinner;
use cso_memory::reg::{RegBool, RegUsize};
use cso_trace::{probe, Event};

use crate::raw::ProcLock;

const NIL: usize = 0;

/// The MCS queue lock: acquirers enqueue an *explicit* per-process
/// node and spin on their **own** flag (purely local spinning).
///
/// Starvation-free (FIFO). Compared with [`crate::ClhLock`], the
/// release path must chase the successor link, paying one CAS when no
/// successor has announced itself yet.
///
/// ```
/// use cso_locks::{McsLock, ProcLock};
/// let lock = McsLock::new(3);
/// lock.with_proc(0, || { /* critical section */ });
/// ```
#[derive(Debug)]
pub struct McsLock {
    /// `locked[i]`: process `i` must wait while true.
    locked: Vec<RegBool>,
    /// `next[i]`: successor of process `i` in the queue, as `proc + 1`
    /// (0 encodes "none").
    next: Vec<RegUsize>,
    /// Last process in the queue, as `proc + 1` (0 encodes "free").
    tail: RegUsize,
}

impl McsLock {
    /// Creates a lock for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> McsLock {
        assert!(n > 0, "an MCS lock needs at least one process");
        McsLock {
            locked: (0..n).map(|_| RegBool::new(false)).collect(),
            next: (0..n).map(|_| RegUsize::new(NIL)).collect(),
            tail: RegUsize::new(NIL),
        }
    }
}

impl ProcLock for McsLock {
    fn n(&self) -> usize {
        self.locked.len()
    }

    fn lock(&self, proc: usize) {
        self.next[proc].write(NIL);
        let pred = self.tail.swap(proc + 1);
        if pred != NIL {
            self.locked[proc].write(true);
            self.next[pred - 1].write(proc + 1);
            let mut spinner = Spinner::new();
            while self.locked[proc].read() {
                spinner.spin();
            }
        }
    }

    fn unlock(&self, proc: usize) {
        if self.next[proc].read() == NIL {
            // No announced successor: try to close the queue.
            if self.tail.cas(proc + 1, NIL) {
                return;
            }
            // Somebody swapped the tail but has not linked in yet;
            // wait for the link to appear.
            let mut spinner = Spinner::new();
            while self.next[proc].read() == NIL {
                spinner.spin();
            }
        }
        let succ = self.next[proc].read();
        self.locked[succ - 1].write(false);
        probe!(Event::LockHandoff("mcs"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;

    #[test]
    fn single_process_lock_unlock_repeats() {
        let lock = McsLock::new(1);
        for _ in 0..1_000 {
            lock.lock(0);
            lock.unlock(0);
        }
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_proc(McsLock::new(4), 4, 2_500);
    }

    #[test]
    fn two_process_handoff() {
        use std::sync::Arc;
        let lock = Arc::new(McsLock::new(2));
        let l2 = Arc::clone(&lock);
        lock.lock(0);
        let waiter = std::thread::spawn(move || {
            l2.lock(1);
            l2.unlock(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        lock.unlock(0);
        waiter.join().unwrap();
    }
}
