//! Test-and-set spin lock.

use cso_memory::backoff::Spinner;
use cso_memory::fail_point;
use cso_memory::reg::RegBool;

use crate::raw::RawLock;

/// The simplest deadlock-free lock: spin on an atomic test-and-set.
///
/// This is the minimal lock Figure 3 of the paper assumes: it is
/// **deadlock-free but not starvation-free** — under contention an
/// unlucky thread can lose the race forever. The paper's §4.4
/// `FLAG`/`TURN` mechanism ([`crate::StarvationFree`]) exists precisely
/// to repair that.
///
/// ```
/// use cso_locks::{RawLock, TasLock};
/// let lock = TasLock::new();
/// lock.lock();
/// assert!(!lock.try_lock());
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct TasLock {
    held: RegBool,
}

impl TasLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> TasLock {
        TasLock {
            held: RegBool::new(false),
        }
    }
}

impl Default for TasLock {
    fn default() -> TasLock {
        TasLock::new()
    }
}

impl RawLock for TasLock {
    fn lock(&self) {
        fail_point!("tas::acquire");
        let mut spinner = Spinner::new();
        while self.held.swap(true) {
            spinner.spin();
        }
    }

    fn unlock(&self) {
        fail_point!("tas::release");
        self.held.write(false);
    }

    fn try_lock(&self) -> bool {
        !self.held.swap(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_raw;

    #[test]
    fn try_lock_reports_state() {
        let lock = TasLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_raw(TasLock::new(), 4, 2_500);
    }
}
