//! Peterson's 2-process lock and its tournament-tree generalization.
//!
//! Peterson's algorithm (\[17\] in the paper) needs only atomic
//! read/write registers — no `Compare&Swap` — and is starvation-free
//! with bounded bypass 1. The [`TournamentLock`] composes a complete
//! binary tree of 2-process instances to serve `n` processes; a
//! process walks leaf-to-root acquiring each level, giving `O(log n)`
//! accesses per acquisition.

use cso_memory::backoff::Spinner;
use cso_memory::reg::{RegBool, RegUsize};

use crate::raw::ProcLock;

/// Peterson's classic 2-process mutual-exclusion lock.
///
/// The two sides are `0` and `1`; each side must be used by at most
/// one thread at a time.
///
/// ```
/// use cso_locks::PetersonLock;
/// let lock = PetersonLock::new();
/// lock.lock(0);
/// lock.unlock(0);
/// ```
#[derive(Debug)]
pub struct PetersonLock {
    flag: [RegBool; 2],
    /// The side that most recently offered to wait.
    victim: RegUsize,
}

impl PetersonLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> PetersonLock {
        PetersonLock {
            flag: [RegBool::new(false), RegBool::new(false)],
            victim: RegUsize::new(0),
        }
    }

    /// Acquires the lock for `side` (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `side > 1`.
    pub fn lock(&self, side: usize) {
        assert!(side < 2, "Peterson sides are 0 and 1");
        let other = 1 - side;
        self.flag[side].write(true);
        self.victim.write(side);
        let mut spinner = Spinner::new();
        while self.flag[other].read() && self.victim.read() == side {
            spinner.spin();
        }
    }

    /// Releases the lock held by `side`.
    ///
    /// # Panics
    ///
    /// Panics if `side > 1`.
    pub fn unlock(&self, side: usize) {
        assert!(side < 2, "Peterson sides are 0 and 1");
        self.flag[side].write(false);
    }
}

impl Default for PetersonLock {
    fn default() -> PetersonLock {
        PetersonLock::new()
    }
}

impl ProcLock for PetersonLock {
    fn n(&self) -> usize {
        2
    }

    fn lock(&self, proc: usize) {
        PetersonLock::lock(self, proc);
    }

    fn unlock(&self, proc: usize) {
        PetersonLock::unlock(self, proc);
    }
}

/// A starvation-free `n`-process lock built as a tournament tree of
/// [`PetersonLock`]s.
///
/// Process `i` starts at leaf `i` and acquires the Peterson instance
/// at every internal node up to the root, entering each from the side
/// (left/right) its subtree hangs on. Release walks the same path
/// downward (reverse acquisition order).
///
/// ```
/// use cso_locks::{ProcLock, TournamentLock};
/// let lock = TournamentLock::new(5);
/// lock.lock(4);
/// lock.unlock(4);
/// ```
#[derive(Debug)]
pub struct TournamentLock {
    n: usize,
    /// Leaf count: `n` rounded up to a power of two.
    width: usize,
    /// Heap-ordered internal nodes: root at 1, children of `x` at
    /// `2x` / `2x + 1`. Entry 0 unused.
    nodes: Vec<PetersonLock>,
}

impl TournamentLock {
    /// Creates a lock for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> TournamentLock {
        assert!(n > 0, "a tournament lock needs at least one process");
        let width = n.next_power_of_two().max(2);
        let nodes = (0..width).map(|_| PetersonLock::new()).collect();
        TournamentLock { n, width, nodes }
    }

    /// The leaf-to-root path of heap positions for process `proc`,
    /// excluding the leaf itself (leaves are not locks).
    fn path(&self, proc: usize) -> impl Iterator<Item = usize> {
        let mut pos = self.width + proc;
        std::iter::from_fn(move || {
            if pos <= 1 {
                None
            } else {
                let here = pos;
                pos /= 2;
                Some(here)
            }
        })
    }
}

impl ProcLock for TournamentLock {
    fn n(&self) -> usize {
        self.n
    }

    fn lock(&self, proc: usize) {
        assert!(proc < self.n, "process id out of range");
        for pos in self.path(proc) {
            let parent = pos / 2;
            let side = pos % 2;
            self.nodes[parent].lock(side);
        }
    }

    fn unlock(&self, proc: usize) {
        assert!(proc < self.n, "process id out of range");
        // Release in reverse acquisition order: root first.
        let path: Vec<usize> = self.path(proc).collect();
        for pos in path.into_iter().rev() {
            let parent = pos / 2;
            let side = pos % 2;
            self.nodes[parent].unlock(side);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_proc;

    #[test]
    fn peterson_mutual_exclusion() {
        stress_proc(PetersonLock::new(), 2, 5_000);
    }

    #[test]
    #[should_panic(expected = "sides are 0 and 1")]
    fn peterson_rejects_bad_side() {
        PetersonLock::new().lock(2);
    }

    #[test]
    fn tournament_mutual_exclusion_power_of_two() {
        stress_proc(TournamentLock::new(4), 4, 1_500);
    }

    #[test]
    fn tournament_mutual_exclusion_odd_n() {
        stress_proc(TournamentLock::new(3), 3, 1_500);
    }

    #[test]
    fn tournament_single_process() {
        let lock = TournamentLock::new(1);
        for _ in 0..100 {
            lock.lock(0);
            lock.unlock(0);
        }
    }

    #[test]
    fn tournament_path_reaches_root() {
        let lock = TournamentLock::new(8);
        let path: Vec<usize> = lock.path(5).collect();
        assert_eq!(path, vec![13, 6, 3]); // leaf 13 → node 6 → node 3 (root parent 1)
    }
}
