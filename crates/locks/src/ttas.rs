//! Test-and-test-and-set spin lock with exponential backoff.

use cso_memory::backoff::{Backoff, Spinner};
use cso_memory::fail_point;
use cso_memory::reg::RegBool;

use crate::raw::RawLock;

/// A [`crate::TasLock`] refined for cache behaviour: spin **reading**
/// the flag (a local cache hit once it settles) and only attempt the
/// swap when the lock looks free; back off exponentially after a lost
/// race.
///
/// Same progress condition as TAS — deadlock-free, not starvation-free
/// — but far fewer coherence misses under contention, which is what the
/// lock-comparison experiment (E7) shows.
///
/// ```
/// use cso_locks::{RawLock, TtasLock};
/// let lock = TtasLock::new();
/// lock.with(|| { /* critical section */ });
/// ```
#[derive(Debug)]
pub struct TtasLock {
    held: RegBool,
}

impl TtasLock {
    /// Creates an unlocked lock.
    #[must_use]
    pub fn new() -> TtasLock {
        TtasLock {
            held: RegBool::new(false),
        }
    }
}

impl Default for TtasLock {
    fn default() -> TtasLock {
        TtasLock::new()
    }
}

impl RawLock for TtasLock {
    fn lock(&self) {
        fail_point!("ttas::acquire");
        let mut backoff = Backoff::new();
        let mut spinner = Spinner::new();
        loop {
            // Spin on the read until the lock looks free.
            while self.held.read() {
                spinner.spin();
            }
            if !self.held.swap(true) {
                return;
            }
            // Lost the race at the swap: somebody else got in. Back off
            // before re-probing so the winners' cache lines settle.
            backoff.spin();
        }
    }

    fn unlock(&self) {
        fail_point!("ttas::release");
        self.held.write(false);
    }

    fn try_lock(&self) -> bool {
        !self.held.read() && !self.held.swap(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::stress_raw;

    #[test]
    fn try_lock_does_not_acquire_when_held() {
        let lock = TtasLock::new();
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        stress_raw(TtasLock::new(), 4, 2_500);
    }
}
