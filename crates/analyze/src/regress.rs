//! Perf-regression comparison between two bench reports.
//!
//! [`compare`] walks two `BENCH_*.json` documents (single reports or
//! `BENCH_summary.json` folds — experiments are matched by name, so a
//! summary baseline can gate a single re-run report) and classifies
//! every shared numeric leaf:
//!
//! * keys that look like throughput (`*per_sec*`, `*throughput*`,
//!   `*speedup*`, `*coverage*`) regress when the current value falls
//!   more than the tolerance *below* the baseline;
//! * keys that look like cost (`*_ns*`, `*_ms*`, `*latency*`,
//!   `*dropped*`, `*malformed*`, `*recover*`) regress when the current
//!   value rises more than the tolerance *above* it;
//! * everything else is informational — compared and reported, never
//!   failed on. Unclassified keys nested inside a classified container
//!   inherit its direction (`ops_per_sec[2].threads_4` is throughput).
//!
//! The tolerance is the per-metric **noise band**: benchmark numbers
//! jitter run to run (scheduler, frequency scaling, cache state), so
//! a gate that fails on any decline is a gate that cries wolf. The
//! default band ([`DEFAULT_TOLERANCE`]) is ±15%, wide enough for
//! same-machine back-to-back runs and tight enough to catch a real
//! 20% collapse; CI passes a wider band when comparing across runner
//! generations. Arrays are compared element-wise only when both sides
//! have the same length — a length mismatch is config drift (different
//! thread counts, different cell grid), recorded as skipped rather
//! than guessed at.

use cso_metrics::Json;

/// The default relative noise band (±15%).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// How a metric's value relates to goodness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput-like): regression = decline.
    HigherBetter,
    /// Smaller is better (latency/loss-like): regression = rise.
    LowerBetter,
    /// No judgement (counts, configs echoed into metrics).
    Informational,
}

/// Classifies a metric key (one path segment) by name. Leaves whose
/// own key is unclassified inherit the nearest classified ancestor:
/// `ops_per_sec[0].threads_4` is throughput because it sits inside an
/// `ops_per_sec` container, even though `threads_4` alone says
/// nothing. (The experiment name itself never classifies — `walk`
/// starts the inherited context at [`Direction::Informational`].)
#[must_use]
pub fn direction(key: &str) -> Direction {
    const HIGHER: &[&str] = &["per_sec", "throughput", "speedup", "coverage"];
    const LOWER: &[&str] = &["_ns", "_ms", "latency", "dropped", "malformed", "recover"];
    if HIGHER.iter().any(|n| key.contains(n)) {
        Direction::HigherBetter
    } else if LOWER.iter().any(|n| key.contains(n)) {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// One compared numeric leaf.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path from the metrics root, e.g.
    /// `e13_escalation.cells[3].ladder_ops_per_sec`.
    pub path: String,
    /// The baseline value.
    pub baseline: f64,
    /// The current value.
    pub current: f64,
    /// The key's classification.
    pub direction: Direction,
    /// Relative change `(current - baseline) / baseline` (0 when the
    /// baseline is 0).
    pub change: f64,
    /// Whether the change crosses the noise band in the bad direction.
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Debug, Default)]
pub struct RegressReport {
    /// Every numeric leaf present on both sides.
    pub deltas: Vec<Delta>,
    /// Paths that could not be compared (missing on one side, type
    /// mismatch, or array length drift) — config drift, not failures.
    pub skipped: Vec<String>,
    /// The noise band the comparison used.
    pub tolerance: f64,
}

impl RegressReport {
    /// The leaves that crossed the noise band in the bad direction.
    pub fn regressions(&self) -> impl Iterator<Item = &Delta> {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// True when nothing regressed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// The comparable experiments in a document: a summary contributes
/// every experiment's metrics, a single report contributes its own.
fn experiments(doc: &Json) -> Vec<(String, &Json)> {
    if let Some(list) = doc.get("experiments").and_then(Json::as_arr) {
        return list
            .iter()
            .filter_map(|e| {
                let name = e.get("experiment").and_then(Json::as_str)?;
                Some((name.to_owned(), e.get("metrics")?))
            })
            .collect();
    }
    match (
        doc.get("experiment").and_then(Json::as_str),
        doc.get("metrics"),
    ) {
        (Some(name), Some(metrics)) => vec![(name.to_owned(), metrics)],
        _ => Vec::new(),
    }
}

fn walk(base: &Json, cur: &Json, path: &str, inherited: Direction, report: &mut RegressReport) {
    match (base, cur) {
        (Json::Obj(base_fields), Json::Obj(_)) => {
            for (k, bv) in base_fields {
                let child = format!("{path}.{k}");
                let dir = match direction(k) {
                    Direction::Informational => inherited,
                    classified => classified,
                };
                match cur.get(k) {
                    Some(cv) => walk(bv, cv, &child, dir, report),
                    None => report.skipped.push(format!("{child} (missing in current)")),
                }
            }
        }
        (Json::Arr(bs), Json::Arr(cs)) => {
            if bs.len() == cs.len() {
                for (i, (bv, cv)) in bs.iter().zip(cs.iter()).enumerate() {
                    walk(bv, cv, &format!("{path}[{i}]"), inherited, report);
                }
            } else {
                report.skipped.push(format!(
                    "{path} (array length {} vs {}: config drift)",
                    bs.len(),
                    cs.len()
                ));
            }
        }
        _ => match (base.as_f64(), cur.as_f64()) {
            (Some(b), Some(c)) => {
                let dir = inherited;
                let change = if b == 0.0 { 0.0 } else { (c - b) / b };
                let regressed = b != 0.0
                    && match dir {
                        Direction::HigherBetter => change < -report.tolerance,
                        Direction::LowerBetter => change > report.tolerance,
                        Direction::Informational => false,
                    };
                report.deltas.push(Delta {
                    path: path.to_owned(),
                    baseline: b,
                    current: c,
                    direction: dir,
                    change,
                    regressed,
                });
            }
            (None, None) => {
                // Matching non-numeric scalars (strings, bools, nulls)
                // are not metrics; a container on one side only is a
                // shape mismatch and must not vanish silently.
                let container = |j: &Json| matches!(j, Json::Obj(_) | Json::Arr(_));
                if container(base) || container(cur) {
                    report
                        .skipped
                        .push(format!("{path} (shape mismatch between runs)"));
                }
            }
            _ => report
                .skipped
                .push(format!("{path} (type mismatch between runs)")),
        },
    }
}

/// Compares `current` against `baseline` with the given noise band.
/// Either side may be a single `BENCH_*.json` report or a
/// `BENCH_summary.json`; experiments are matched by name and
/// experiments present on only one side are recorded as skipped.
#[must_use]
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> RegressReport {
    let mut report = RegressReport {
        tolerance,
        ..RegressReport::default()
    };
    let base_experiments = experiments(baseline);
    let cur_experiments = experiments(current);
    for (name, base_metrics) in &base_experiments {
        match cur_experiments.iter().find(|(n, _)| n == name) {
            Some((_, cur_metrics)) => {
                // The experiment name never classifies its metrics
                // (e9_latency holds throughput numbers too).
                walk(
                    base_metrics,
                    cur_metrics,
                    name,
                    Direction::Informational,
                    &mut report,
                );
            }
            None => {
                // Only a drift when the current side is a summary: a
                // single-report run is *expected* to cover one of the
                // baseline's experiments.
                if cur_experiments.len() != 1 || current.get("experiment").is_none() {
                    report.skipped.push(format!("{name} (missing in current)"));
                }
            }
        }
    }
    for (name, _) in &cur_experiments {
        if !base_experiments.iter().any(|(n, _)| n == name) {
            report
                .skipped
                .push(format!("{name} (no baseline yet: new experiment)"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        Json::parse(text).expect("test document parses")
    }

    #[test]
    fn direction_classifies_by_key() {
        assert_eq!(direction("ops_per_sec"), Direction::HigherBetter);
        assert_eq!(direction("ladder_ops_per_sec"), Direction::HigherBetter);
        assert_eq!(direction("p99_ns"), Direction::LowerBetter);
        assert_eq!(direction("time_to_recover_ms"), Direction::LowerBetter);
        assert_eq!(direction("dropped"), Direction::LowerBetter);
        assert_eq!(direction("threads"), Direction::Informational);
        assert_eq!(direction("batch"), Direction::Informational);
    }

    #[test]
    fn twenty_percent_throughput_drop_regresses() {
        let base = doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":1000000.0}}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":800000.0}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!report.ok());
        let regression = report.regressions().next().expect("one regression");
        assert_eq!(regression.path, "e3.ops_per_sec");
        assert!((regression.change + 0.2).abs() < 1e-9);
    }

    #[test]
    fn replay_within_the_noise_band_passes() {
        let base = doc(r#"{"experiment":"e3","config":{},
                "metrics":{"ops_per_sec":1000000.0,"p99_ns":500,"threads":8}}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},
                "metrics":{"ops_per_sec":920000.0,"p99_ns":540,"threads":8}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(
            report.ok(),
            "{:?}",
            report.regressions().collect::<Vec<_>>()
        );
        assert_eq!(report.deltas.len(), 3);
    }

    #[test]
    fn improvements_never_regress() {
        let base =
            doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":100,"p99_ns":900}}"#);
        let cur =
            doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":500,"p99_ns":100}}"#);
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).ok());
    }

    #[test]
    fn latency_rise_regresses() {
        let base = doc(r#"{"experiment":"e3","config":{},"metrics":{"p99_ns":100.0}}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},"metrics":{"p99_ns":140.0}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions().count(), 1);
    }

    #[test]
    fn arrays_compare_elementwise_and_drift_is_skipped() {
        let base = doc(r#"{"experiment":"e13","config":{},
                "metrics":{"cells":[{"ops_per_sec":100},{"ops_per_sec":200}]}}"#);
        let cur = doc(r#"{"experiment":"e13","config":{},
                "metrics":{"cells":[{"ops_per_sec":99},{"ops_per_sec":20}]}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        let regression = report.regressions().next().expect("cell 1 regressed");
        assert_eq!(regression.path, "e13.cells[1].ops_per_sec");
        assert_eq!(report.regressions().count(), 1);

        let drifted = doc(r#"{"experiment":"e13","config":{},
                "metrics":{"cells":[{"ops_per_sec":1}]}}"#);
        let report = compare(&base, &drifted, DEFAULT_TOLERANCE);
        assert!(report.ok());
        assert!(report.skipped.iter().any(|s| s.contains("config drift")));
    }

    #[test]
    fn summary_baseline_gates_a_single_report() {
        let base = doc(r#"{"schema":"cso-bench-summary v1","experiments":[
                {"experiment":"e3","file":"BENCH_e3.json","config":{},
                 "metrics":{"ops_per_sec":1000}},
                {"experiment":"e13","file":"BENCH_e13.json","config":{},
                 "metrics":{"ops_per_sec":2000}}]}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":700}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions().count(), 1);
        // e13 absent from a single-report run is expected, not drift.
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);

        // A summary-vs-summary comparison does flag a vanished
        // experiment.
        let cur_summary = doc(r#"{"schema":"cso-bench-summary v1","experiments":[
                {"experiment":"e3","file":"BENCH_e3.json","config":{},
                 "metrics":{"ops_per_sec":1000}}]}"#);
        let report = compare(&base, &cur_summary, DEFAULT_TOLERANCE);
        assert!(report.skipped.iter().any(|s| s.contains("e13")));
    }

    #[test]
    fn leaves_inherit_direction_from_classified_ancestors() {
        // E3's shape: metrics.ops_per_sec is an array of per-impl rows
        // whose numeric keys are threads_N — unclassified on their
        // own, throughput by context. A 20% drop there must gate.
        let base = doc(r#"{"experiment":"e3","config":{},"metrics":
                {"ops_per_sec":[{"impl":"cs-stack","threads_4":1000.0}]}}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},"metrics":
                {"ops_per_sec":[{"impl":"cs-stack","threads_4":800.0}]}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        let regression = report.regressions().next().expect("nested drop gates");
        assert_eq!(regression.path, "e3.ops_per_sec[0].threads_4");
        assert_eq!(regression.direction, Direction::HigherBetter);

        // A leaf with its own classification overrides the inherited
        // one: a *_ns key inside a throughput container is still cost.
        let base = doc(r#"{"experiment":"e9","config":{},"metrics":
                {"throughput":{"p99_ns":100.0}}}"#);
        let cur = doc(r#"{"experiment":"e9","config":{},"metrics":
                {"throughput":{"p99_ns":140.0}}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions().count(), 1, "latency rise still gates");
    }

    #[test]
    fn container_vs_scalar_mismatch_is_recorded_not_swallowed() {
        // Regression guard for a real incident: an old summary format
        // folded arrays to {"rows": N}, so a summary baseline compared
        // against a full report hit Obj-vs-Arr at every table metric —
        // and the comparison reported "0 metric(s), OK" instead of
        // surfacing that it had nothing to gate on.
        let base = doc(r#"{"experiment":"e13","config":{},"metrics":{"cells":{"rows":6}}}"#);
        let cur =
            doc(r#"{"experiment":"e13","config":{},"metrics":{"cells":[{"ops_per_sec":1}]}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(report.deltas.is_empty());
        assert!(
            report
                .skipped
                .iter()
                .any(|s| s.contains("cells") && s.contains("shape mismatch")),
            "{:?}",
            report.skipped
        );
    }

    #[test]
    fn zero_baseline_never_divides_or_regresses() {
        let base = doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":0}}"#);
        let cur = doc(r#"{"experiment":"e3","config":{},"metrics":{"ops_per_sec":0}}"#);
        let report = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(report.ok());
        assert_eq!(report.deltas[0].change, 0.0);
    }
}
