//! Parser for the `cso-trace-events v1` TSV format that
//! [`cso_trace::export::event_log`] writes.
//!
//! The format is line-oriented so it survives partial captures:
//!
//! ```text
//! # cso-trace-events v1
//! # dropped 0
//! # truncated 3 17
//! 0\t0\t120\tfast-attempt\t-\t-\t-
//! 1\t0\t190\tfast-success\t-\t-\t-
//! ```
//!
//! Header lines carry the ring-buffer loss accounting: `# dropped n`
//! is the total number of events overwritten before collection, and
//! each `# truncated <thread> <count>` names a thread whose ring
//! wrapped — that thread's stream is a contiguous *suffix* of what it
//! recorded, so its leading events may reference operations whose
//! start was lost. Downstream analyses use this to tell truncation
//! apart from genuine protocol violations.

/// One parsed event row. Field meanings mirror
/// `cso_trace::probe::TraceEvent`; absent payloads (`-` in the TSV)
/// become `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Global capture order (monotonic across threads).
    pub seq: u64,
    /// Recording thread index.
    pub thread: u32,
    /// Wall-clock nanoseconds since the trace epoch.
    pub wall_ns: u64,
    /// Stable event name (`fast-attempt`, `lock-acquire`, ...).
    pub name: String,
    /// Site payload for `cas-fail` / `fail-point` / ... rows.
    pub site: Option<String>,
    /// Process-identity payload for `lock-acquire` / `flag-raise` / ...
    pub proc_id: Option<u32>,
    /// Measurement payload (`combine-batch` size, handoff ns).
    pub value: Option<u64>,
}

/// A parsed event log: loss accounting plus rows sorted by `seq`.
#[derive(Debug, Default)]
pub struct EventLog {
    /// Events overwritten by ring wrap-around before collection.
    pub dropped: u64,
    /// `(thread, lost_count)` for each thread whose ring wrapped.
    pub truncated: Vec<(u32, u64)>,
    /// All surviving events, sorted by global sequence number.
    pub rows: Vec<Row>,
}

/// A malformed line in the TSV input.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn field<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<&'a str, ParseError> {
    parts.next().ok_or_else(|| ParseError {
        line,
        message: format!("missing {what} column"),
    })
}

fn number<T: std::str::FromStr>(text: &str, line: usize, what: &str) -> Result<T, ParseError> {
    text.parse().map_err(|_| ParseError {
        line,
        message: format!("bad {what}: {text:?}"),
    })
}

fn optional<T: std::str::FromStr>(
    text: &str,
    line: usize,
    what: &str,
) -> Result<Option<T>, ParseError> {
    if text == "-" {
        Ok(None)
    } else {
        number(text, line, what).map(Some)
    }
}

impl EventLog {
    /// Parses the TSV text. Rows are re-sorted by `seq` (the writer
    /// emits them grouped by thread).
    ///
    /// # Errors
    ///
    /// [`ParseError`] on a missing/mismatched version header or any
    /// row that does not have the seven expected columns with
    /// parseable numbers.
    pub fn parse(text: &str) -> Result<EventLog, ParseError> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or(ParseError {
            line: 1,
            message: "empty input".to_owned(),
        })?;
        if first.trim() != "# cso-trace-events v1" {
            return Err(ParseError {
                line: 1,
                message: format!("expected `# cso-trace-events v1` header, got {first:?}"),
            });
        }

        let mut log = EventLog::default();
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let mut parts = rest.split_whitespace();
                match parts.next() {
                    Some("dropped") => {
                        let n = field(&mut parts, lineno, "dropped count")?;
                        log.dropped = number(n, lineno, "dropped count")?;
                    }
                    Some("truncated") => {
                        let thread = field(&mut parts, lineno, "truncated thread")?;
                        let count = field(&mut parts, lineno, "truncated count")?;
                        log.truncated.push((
                            number(thread, lineno, "truncated thread")?,
                            number(count, lineno, "truncated count")?,
                        ));
                    }
                    // Unknown comments are forward-compatible noise.
                    _ => {}
                }
                continue;
            }
            let mut parts = line.split('\t');
            let seq = number(field(&mut parts, lineno, "seq")?, lineno, "seq")?;
            let thread = number(field(&mut parts, lineno, "thread")?, lineno, "thread")?;
            let wall_ns = number(field(&mut parts, lineno, "wall_ns")?, lineno, "wall_ns")?;
            let name = field(&mut parts, lineno, "name")?.to_owned();
            if name.is_empty() {
                return Err(ParseError {
                    line: lineno,
                    message: "empty event name".to_owned(),
                });
            }
            let site = match field(&mut parts, lineno, "site")? {
                "-" => None,
                s => Some(s.to_owned()),
            };
            let proc_id = optional(field(&mut parts, lineno, "proc")?, lineno, "proc")?;
            let value = optional(field(&mut parts, lineno, "value")?, lineno, "value")?;
            log.rows.push(Row {
                seq,
                thread,
                wall_ns,
                name,
                site,
                proc_id,
                value,
            });
        }
        log.rows.sort_by_key(|r| r.seq);
        Ok(log)
    }

    /// Events lost to ring wrap-around on `thread` (0 if its ring
    /// never wrapped).
    #[must_use]
    pub fn truncated_for(&self, thread: u32) -> u64 {
        self.truncated
            .iter()
            .find(|(t, _)| *t == thread)
            .map_or(0, |(_, n)| *n)
    }

    /// The number of participating processes, inferred as the highest
    /// process-identity payload seen plus one. Zero if no row carries
    /// a process id.
    #[must_use]
    pub fn inferred_procs(&self) -> usize {
        self.rows
            .iter()
            .filter_map(|r| r.proc_id)
            .max()
            .map_or(0, |p| p as usize + 1)
    }

    /// The rows of one thread, in sequence order.
    pub fn thread_rows(&self, thread: u32) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter(move |r| r.thread == thread)
    }

    /// All thread indices present, ascending.
    #[must_use]
    pub fn threads(&self) -> Vec<u32> {
        let mut threads: Vec<u32> = self.rows.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_and_rows() {
        let text = "# cso-trace-events v1\n# dropped 7\n# truncated 2 5\n\
                    3\t1\t900\tlock-acquire\t-\t1\t-\n\
                    0\t0\t100\tfast-attempt\t-\t-\t-\n\
                    1\t0\t150\tcas-fail\tstack::push\t-\t-\n";
        let log = EventLog::parse(text).expect("parses");
        assert_eq!(log.dropped, 7);
        assert_eq!(log.truncated, vec![(2, 5)]);
        assert_eq!(log.truncated_for(2), 5);
        assert_eq!(log.truncated_for(0), 0);
        // Re-sorted by seq.
        assert_eq!(log.rows[0].seq, 0);
        assert_eq!(log.rows[0].name, "fast-attempt");
        assert_eq!(log.rows[1].site.as_deref(), Some("stack::push"));
        assert_eq!(log.rows[2].proc_id, Some(1));
        assert_eq!(log.inferred_procs(), 2);
        assert_eq!(log.threads(), vec![0, 1]);
    }

    #[test]
    fn rejects_wrong_version_and_bad_rows() {
        assert!(EventLog::parse("# cso-trace-events v2\n").is_err());
        assert!(EventLog::parse("").is_err());
        let err = EventLog::parse("# cso-trace-events v1\n0\t0\t1\tfoo\t-\n")
            .expect_err("short row rejected");
        assert_eq!(err.line, 2);
        let err = EventLog::parse("# cso-trace-events v1\nx\t0\t1\tfoo\t-\t-\t-\n")
            .expect_err("bad seq rejected");
        assert!(err.message.contains("seq"));
    }

    #[test]
    fn tolerates_unknown_comments_and_blank_lines() {
        let text =
            "# cso-trace-events v1\n# some future header\n\n0\t0\t1\tfast-attempt\t-\t-\t-\n";
        let log = EventLog::parse(text).expect("parses");
        assert_eq!(log.rows.len(), 1);
    }
}
