//! Per-operation span reconstruction.
//!
//! Each thread's event stream is replayed through a state machine that
//! mirrors the instrumented code paths of the Figure 3 transformation
//! (see `cso-core::contention_sensitive` for the emission sites):
//!
//! * **fast**: `fast-attempt` → `fast-success`; the escalation
//!   ladder's contention-management retries repeat `fast-attempt` →
//!   `fast-abort` inside the same span;
//! * **eliminated**: [`fast-attempt` → `fast-abort` →] `elim-attempt`
//!   → `eliminated-complete` (a rendezvous with an inverse operation;
//!   a failed attempt instead escalates into the locked/combined
//!   choreography below);
//! * **locked**: [`fast-abort` →] [`flag-raise` →] `lock-acquire` →
//!   `locked-complete` → `lock-release` (completion is probed *before*
//!   the release so observers never see a released lock with an
//!   uncounted operation);
//! * **combined** (poster served by a combiner): `record-post` →
//!   [`record-poisoned` → `record-post` →] `record-handoff` →
//!   `combined-complete`;
//! * **combiner** (poster that won the lock): `record-post` →
//!   `lock-acquire` → `combine-batch` → `locked-complete` →
//!   `lock-release`; an acquire that loses the retract race releases
//!   immediately and falls back to waiting (`lock-acquire` →
//!   `lock-release` with nothing in between);
//! * **timeout**: `slow-timeout` either before any acquire (the
//!   deadline passed in the wait queue) or *after* `lock-release`
//!   (the weak op never succeeded while the lock was held).
//!
//! Events that only annotate a path (`contention-raise/clear`,
//! `turn-advance`, `cas-fail`, `fail-point`, `lock-handoff`,
//! `helping-write`) never delimit spans. A stream that violates the
//! protocol yields a [`Malformed`] record — except at the head of a
//! thread whose ring wrapped, where orphaned events are classified as
//! truncation loss instead.
//!
//! **Causal annotations** (`helped-by-combiner`, `helped-by-partner`,
//! `handoff-from`, `custody-from`) carry the trace-thread id of the
//! peer that completed, paired with, or preceded the in-flight
//! operation; the replayer attaches the edge to the span it completes
//! inside ([`Span::helped_by`]), turning per-thread streams into a
//! cross-thread helped-by graph.

use crate::log::{EventLog, Row};

/// Which code path an operation completed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Path {
    /// Lines 01–03: the weak operation succeeded without the lock.
    Fast,
    /// Completed by rendezvous with an inverse operation (the
    /// escalation ladder's elimination rung).
    Eliminated,
    /// Lines 04–13: applied under the (§4.4-boosted) lock.
    Locked,
    /// Posted to the publication list and served by another process.
    Combined,
    /// Posted, won the lock, and served a batch as the combiner.
    Combiner,
}

impl Path {
    /// Stable lower-case label for reports and collapsed stacks.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Path::Fast => "fast",
            Path::Eliminated => "eliminated",
            Path::Locked => "locked",
            Path::Combined => "combined",
            Path::Combiner => "combiner",
        }
    }
}

/// The kind of cross-thread help a causal annotation records. Mirrors
/// `cso_trace::HelpKind` (duplicated because this crate analyzes text
/// logs without depending on the tracing crate; `cso-profile` carries
/// a test keeping the two in sync).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelpKind {
    /// A combiner tenure executed the operation (`helped-by-combiner`).
    Combiner,
    /// An inverse operation paired in the elimination rendezvous
    /// (`helped-by-partner`).
    Partner,
    /// The lock was handed off by the previous holder (`handoff-from`).
    Handoff,
    /// Lock custody was seized from a dead holder (`custody-from`).
    Custody,
}

impl HelpKind {
    /// Parses the annotation event name; `None` for non-causal events.
    #[must_use]
    pub fn from_name(name: &str) -> Option<HelpKind> {
        match name {
            "helped-by-combiner" => Some(HelpKind::Combiner),
            "helped-by-partner" => Some(HelpKind::Partner),
            "handoff-from" => Some(HelpKind::Handoff),
            "custody-from" => Some(HelpKind::Custody),
            _ => None,
        }
    }

    /// Stable lower-case label for reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HelpKind::Combiner => "combiner",
            HelpKind::Partner => "partner",
            HelpKind::Handoff => "handoff",
            HelpKind::Custody => "custody",
        }
    }

    /// Every kind, for exhaustive reports.
    pub const ALL: [HelpKind; 4] = [
        HelpKind::Combiner,
        HelpKind::Partner,
        HelpKind::Handoff,
        HelpKind::Custody,
    ];
}

/// How an operation span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The operation completed and returned a response.
    Completed,
    /// A deadline-bounded operation gave up (`slow-timeout`).
    TimedOut,
    /// The critical section unwound (`slow-poisoned`).
    Poisoned,
}

/// One reconstructed operation.
#[derive(Debug, Clone)]
pub struct Span {
    /// Recording thread.
    pub thread: u32,
    /// Process identity, when the slow path revealed it.
    pub proc_id: Option<u32>,
    /// Completion path.
    pub path: Path,
    /// How the span ended.
    pub outcome: Outcome,
    /// Wall-clock nanoseconds of the first event.
    pub start_ns: u64,
    /// Wall-clock nanoseconds of the last event.
    pub end_ns: u64,
    /// `flag-raise` → `lock-acquire` wait, when both were observed.
    pub wait_ns: Option<u64>,
    /// `lock-acquire` → `lock-release` tenure, when both were observed.
    pub hold_ns: Option<u64>,
    /// `combine-batch` payload (requests served, self included).
    pub batch: Option<u64>,
    /// The operation was vetoed off the fast path first.
    pub aborted_fast: bool,
    /// Times the publication record was poisoned and reposted.
    pub reposts: u64,
    /// Sequence number of the first event.
    pub start_seq: u64,
    /// Sequence number of the last event.
    pub end_seq: u64,
    /// Cross-thread causal edge: the kind of help this operation
    /// received and the trace-thread id of the helper (last annotation
    /// wins when an operation records several).
    pub helped_by: Option<(HelpKind, u32)>,
}

impl Span {
    /// Total span duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A protocol violation: an event that is illegal in the state its
/// thread was in, outside any truncation window.
#[derive(Debug, Clone)]
pub struct Malformed {
    /// Thread whose stream violated the protocol.
    pub thread: u32,
    /// Sequence number of the offending event.
    pub seq: u64,
    /// Name of the offending event.
    pub event: String,
    /// The state it was illegal in.
    pub state: &'static str,
}

/// Crash-recovery annotations observed in the log: suspicions raised,
/// orphaned combining records tombstoned, and lock successions (see
/// the `cso-core` recovery subsystem). These are annotations, not span
/// boundaries — they enrich the report without ever breaking span
/// reconstruction, so a traced recovery run still reaches full
/// coverage.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// `suspect-raised` events: a process was suspected dead.
    pub suspects: u64,
    /// `record-reclaimed` events: an orphaned record was tombstoned.
    pub reclaimed: u64,
    /// `lock-succeeded` events: a waiter seized a dead holder's lock.
    pub successions: u64,
}

impl RecoveryCounts {
    /// Whether any recovery activity was observed at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.suspects + self.reclaimed + self.successions > 0
    }
}

/// The result of replaying a whole log.
#[derive(Debug, Default)]
pub struct SpanReport {
    /// Well-formed spans, in per-thread completion order.
    pub spans: Vec<Span>,
    /// Operations still in flight when the capture ended (not errors).
    pub open: usize,
    /// Orphan events attributed to ring truncation (not errors).
    pub truncated_events: usize,
    /// Protocol violations.
    pub malformed: Vec<Malformed>,
    /// Crash-recovery activity (annotation events).
    pub recovery: RecoveryCounts,
}

impl SpanReport {
    /// Fraction of observed operations reconstructed into well-formed
    /// spans: `spans / (spans + malformed)`. 1.0 on an empty log.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.spans.len() + self.malformed.len();
        if total == 0 {
            1.0
        } else {
            self.spans.len() as f64 / total as f64
        }
    }

    /// Spans that completed on `path`.
    pub fn on_path(&self, path: Path) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.path == path)
    }
}

/// In-progress span bookkeeping shared by all non-idle states.
#[derive(Debug, Clone)]
struct Pending {
    start_seq: u64,
    start_ns: u64,
    aborted_fast: bool,
    reposts: u64,
    proc_id: Option<u32>,
    flag_ns: Option<u64>,
    acquire_ns: Option<u64>,
    batch: Option<u64>,
}

impl Pending {
    fn start(row: &Row) -> Pending {
        Pending {
            start_seq: row.seq,
            start_ns: row.wall_ns,
            aborted_fast: false,
            reposts: 0,
            proc_id: row.proc_id,
            flag_ns: None,
            acquire_ns: None,
            batch: None,
        }
    }

    fn finish(self, row: &Row, path: Path, outcome: Outcome) -> Span {
        Span {
            thread: row.thread,
            proc_id: self.proc_id,
            path,
            outcome,
            start_ns: self.start_ns,
            end_ns: row.wall_ns,
            wait_ns: match (self.flag_ns, self.acquire_ns) {
                (Some(f), Some(a)) => Some(a.saturating_sub(f)),
                _ => None,
            },
            hold_ns: self.acquire_ns.map(|a| {
                // For timeout-after-release spans the release stamp is
                // the previous event; end_ns is close enough that we
                // accept it rather than thread a third timestamp.
                row.wall_ns.saturating_sub(a)
            }),
            batch: self.batch,
            aborted_fast: self.aborted_fast,
            reposts: self.reposts,
            start_seq: self.start_seq,
            end_seq: row.seq,
            // Attached by the replayer when the span completes (causal
            // annotations are replayer-level state, not protocol state).
            helped_by: None,
        }
    }
}

/// The per-thread protocol state.
#[derive(Debug)]
enum State {
    /// Between operations.
    Idle,
    /// Saw `fast-attempt`, awaiting success or abort.
    FastTried(Pending),
    /// Fast path aborted; the slow path has not yet declared itself.
    SlowStart(Pending),
    /// `elim-attempt` seen; parked at the exchanger waiting for an
    /// inverse operation (or about to escalate).
    Eliminating(Pending),
    /// `flag-raise` seen; waiting for the lock.
    SlowWait(Pending),
    /// `record-post` seen; waiting to be served or to win the lock.
    Posted(Pending),
    /// Holding the lock. `done` is set by `locked-complete` /
    /// `slow-poisoned`, which are probed before the release.
    Locked {
        pending: Pending,
        from_posted: bool,
        done: Option<Outcome>,
    },
    /// Released without completing and not combining: the only legal
    /// continuation is the under-lock `slow-timeout`.
    AwaitTimeout(Pending),
}

/// Whether `name` only annotates a path: annotation events never
/// delimit spans and are legal in every state. (Recovery annotations
/// additionally bump [`RecoveryCounts`].)
#[must_use]
pub fn is_annotation(name: &str) -> bool {
    matches!(
        name,
        "contention-raise"
            | "contention-clear"
            | "turn-advance"
            | "cas-fail"
            | "fail-point"
            | "lock-handoff"
            | "helping-write"
            | "record-handoff"
            | "suspect-raised"
            | "record-reclaimed"
            | "lock-succeeded"
            | "helped-by-combiner"
            | "helped-by-partner"
            | "handoff-from"
            | "custody-from"
    )
}

/// What feeding one row into a [`ThreadReplayer`] produced.
#[derive(Debug)]
pub enum Fed {
    /// The row advanced (or annotated) the in-flight operation without
    /// completing it.
    Quiet,
    /// The row completed an operation span.
    Span(Span),
    /// The row was illegal in the current state — a protocol
    /// violation. The machine has reset to idle.
    Malformed(Malformed),
    /// The row was illegal, but this stream's truncated head has not
    /// resynchronised yet: the event is ring wrap-around loss, not an
    /// error. The machine has reset to idle.
    Orphan,
}

/// An incremental, one-thread instance of the span state machine: the
/// streaming counterpart of [`reconstruct`] (which is implemented on
/// top of it). A live aggregator keeps one replayer per recording
/// thread and feeds each harvested batch's rows in sequence order;
/// batch boundaries are invisible to the protocol, so live and
/// post-mortem replays of the same stream yield identical spans.
#[derive(Debug)]
pub struct ThreadReplayer {
    state: State,
    synced: bool,
    recovery: RecoveryCounts,
    /// Stashed causal annotation, attached to the span it completes
    /// inside; discarded when the machine resets without completing.
    helped: Option<(HelpKind, u32)>,
}

impl ThreadReplayer {
    /// A fresh machine. `truncated` relaxes the head of the stream:
    /// until the first span completes, illegal events are classified
    /// [`Fed::Orphan`] (ring wrap-around loss) rather than
    /// [`Fed::Malformed`], and the machine resynchronises on the next
    /// clean span start.
    #[must_use]
    pub fn new(truncated: bool) -> ThreadReplayer {
        ThreadReplayer {
            state: State::Idle,
            synced: !truncated,
            recovery: RecoveryCounts::default(),
            helped: None,
        }
    }

    /// Marks the stream as having lost events (e.g. a harvest pass
    /// reported nonzero loss on this thread's ring): the machine
    /// resets to idle and treats the next illegal events as orphans
    /// until it resynchronises, exactly like a truncated head.
    pub fn desync(&mut self) {
        self.state = State::Idle;
        self.synced = false;
        self.helped = None;
    }

    /// Whether an operation is currently in flight (a capture that
    /// ends now would report it as open, not as an error).
    #[must_use]
    pub fn is_open(&self) -> bool {
        !matches!(self.state, State::Idle)
    }

    /// Recovery annotations seen so far.
    #[must_use]
    pub fn recovery(&self) -> RecoveryCounts {
        self.recovery
    }

    /// Advances the machine by one row.
    pub fn feed(&mut self, row: &Row) -> Fed {
        if is_annotation(&row.name) {
            match row.name.as_str() {
                "suspect-raised" => self.recovery.suspects += 1,
                "record-reclaimed" => self.recovery.reclaimed += 1,
                "lock-succeeded" => self.recovery.successions += 1,
                _ => {}
            }
            if let (Some(kind), Some(tid)) = (HelpKind::from_name(&row.name), row.value) {
                self.helped = Some((kind, tid as u32));
            }
            return Fed::Quiet;
        }
        match step(std::mem::replace(&mut self.state, State::Idle), row) {
            Ok((next, span)) => {
                self.state = next;
                match span {
                    Some(mut span) => {
                        self.synced = true;
                        span.helped_by = self.helped.take();
                        Fed::Span(span)
                    }
                    None => Fed::Quiet,
                }
            }
            Err(prev) => {
                // Illegal event. At the head of a truncated stream the
                // start of this operation was overwritten; otherwise
                // it is a real protocol violation.
                self.helped = None;
                if self.synced {
                    Fed::Malformed(Malformed {
                        thread: row.thread,
                        seq: row.seq,
                        event: row.name.clone(),
                        state: prev,
                    })
                } else {
                    Fed::Orphan
                }
            }
        }
    }
}

/// Replays one thread's stream into `report`.
fn replay_thread<'a>(
    rows: impl Iterator<Item = &'a Row>,
    truncated: bool,
    report: &mut SpanReport,
) {
    let mut replayer = ThreadReplayer::new(truncated);
    for row in rows {
        match replayer.feed(row) {
            Fed::Quiet => {}
            Fed::Span(span) => report.spans.push(span),
            Fed::Malformed(m) => report.malformed.push(m),
            Fed::Orphan => report.truncated_events += 1,
        }
    }
    let recovery = replayer.recovery();
    report.recovery.suspects += recovery.suspects;
    report.recovery.reclaimed += recovery.reclaimed;
    report.recovery.successions += recovery.successions;
    if replayer.is_open() {
        report.open += 1;
    }
}

/// One pure transition: the next state, plus the span the row
/// completed, if any. `Err(state_name)` means `row` is illegal in the
/// current state (which is consumed; the caller resets to idle).
#[allow(clippy::too_many_lines)]
fn step(state: State, row: &Row) -> Result<(State, Option<Span>), &'static str> {
    let name = row.name.as_str();
    let mut emitted = None;
    let mut emit = |span: Span| {
        emitted = Some(span);
    };
    let next = match state {
        State::Idle => match name {
            "fast-attempt" => Ok(State::FastTried(Pending::start(row))),
            "flag-raise" => {
                let mut p = Pending::start(row);
                p.flag_ns = Some(row.wall_ns);
                Ok(State::SlowWait(p))
            }
            "record-post" => Ok(State::Posted(Pending::start(row))),
            // A fast-path-less ablation can reach the elimination rung
            // without a preceding weak-op attempt.
            "elim-attempt" => Ok(State::Eliminating(Pending::start(row))),
            // The unfair ablation takes the inner lock with no flag.
            "lock-acquire" => {
                let mut p = Pending::start(row);
                p.acquire_ns = Some(row.wall_ns);
                Ok(State::Locked {
                    pending: p,
                    from_posted: false,
                    done: None,
                })
            }
            _ => Err("idle"),
        },
        State::FastTried(mut p) => match name {
            "fast-success" => {
                emit(p.finish(row, Path::Fast, Outcome::Completed));
                Ok(State::Idle)
            }
            "fast-abort" => {
                p.aborted_fast = true;
                Ok(State::SlowStart(p))
            }
            _ => Err("fast-tried"),
        },
        State::SlowStart(mut p) => match name {
            // A contention-management retry: the ladder re-attempts the
            // weak operation (backoff-paced) within the same span.
            "fast-attempt" => Ok(State::FastTried(p)),
            // The ladder's elimination rung.
            "elim-attempt" => Ok(State::Eliminating(p)),
            "flag-raise" => {
                p.flag_ns = Some(row.wall_ns);
                if p.proc_id.is_none() {
                    p.proc_id = row.proc_id;
                }
                Ok(State::SlowWait(p))
            }
            "record-post" => Ok(State::Posted(p)),
            "lock-acquire" => {
                p.acquire_ns = Some(row.wall_ns);
                if p.proc_id.is_none() {
                    p.proc_id = row.proc_id;
                }
                Ok(State::Locked {
                    pending: p,
                    from_posted: false,
                    done: None,
                })
            }
            // Deadline expired before the (unfair) inner lock came.
            "slow-timeout" => {
                emit(p.finish(row, Path::Locked, Outcome::TimedOut));
                Ok(State::Idle)
            }
            _ => Err("slow-start"),
        },
        State::Eliminating(mut p) => match name {
            "eliminated-complete" => {
                emit(p.finish(row, Path::Eliminated, Outcome::Completed));
                Ok(State::Idle)
            }
            // No partner committed: the operation escalates onto the
            // slow path, still within the same span.
            "flag-raise" => {
                p.flag_ns = Some(row.wall_ns);
                if p.proc_id.is_none() {
                    p.proc_id = row.proc_id;
                }
                Ok(State::SlowWait(p))
            }
            "record-post" => Ok(State::Posted(p)),
            "lock-acquire" => {
                p.acquire_ns = Some(row.wall_ns);
                if p.proc_id.is_none() {
                    p.proc_id = row.proc_id;
                }
                Ok(State::Locked {
                    pending: p,
                    from_posted: false,
                    done: None,
                })
            }
            // Deadline expired while parked at the exchanger.
            "slow-timeout" => {
                emit(p.finish(row, Path::Locked, Outcome::TimedOut));
                Ok(State::Idle)
            }
            _ => Err("eliminating"),
        },
        State::SlowWait(mut p) => match name {
            // A recovering lock re-raises its flag once per backoff
            // slice while it waits out a suspected-dead holder; the
            // wait stays one span, timed from the first raise.
            "flag-raise" => Ok(State::SlowWait(p)),
            "lock-acquire" => {
                p.acquire_ns = Some(row.wall_ns);
                Ok(State::Locked {
                    pending: p,
                    from_posted: false,
                    done: None,
                })
            }
            // Deadline expired in the wait queue.
            "slow-timeout" => {
                emit(p.finish(row, Path::Locked, Outcome::TimedOut));
                Ok(State::Idle)
            }
            _ => Err("slow-wait"),
        },
        State::Posted(mut p) => match name {
            "combined-complete" => {
                emit(p.finish(row, Path::Combined, Outcome::Completed));
                Ok(State::Idle)
            }
            "record-poisoned" => {
                p.reposts += 1;
                Ok(State::Posted(p))
            }
            // The repost after a poisoning.
            "record-post" => Ok(State::Posted(p)),
            "lock-acquire" => {
                p.acquire_ns = Some(row.wall_ns);
                if p.proc_id.is_none() {
                    p.proc_id = row.proc_id;
                }
                Ok(State::Locked {
                    pending: p,
                    from_posted: true,
                    done: None,
                })
            }
            _ => Err("posted"),
        },
        State::Locked {
            mut pending,
            from_posted,
            done,
        } => match name {
            "combine-batch" => {
                pending.batch = row.value;
                Ok(State::Locked {
                    pending,
                    from_posted,
                    done,
                })
            }
            "locked-complete" => Ok(State::Locked {
                pending,
                from_posted,
                done: Some(Outcome::Completed),
            }),
            "slow-poisoned" => Ok(State::Locked {
                pending,
                from_posted,
                done: Some(Outcome::Poisoned),
            }),
            "lock-release" => match done {
                Some(outcome) => {
                    let path = if pending.batch.is_some() {
                        Path::Combiner
                    } else {
                        Path::Locked
                    };
                    emit(pending.finish(row, path, outcome));
                    Ok(State::Idle)
                }
                // No completion under this tenure: a combining poster
                // that lost the retract race bounces back to waiting;
                // a deadline op is about to report its timeout.
                None if from_posted => Ok(State::Posted(pending)),
                None => Ok(State::AwaitTimeout(pending)),
            },
            _ => Err("locked"),
        },
        State::AwaitTimeout(p) => match name {
            "slow-timeout" => {
                emit(p.finish(row, Path::Locked, Outcome::TimedOut));
                Ok(State::Idle)
            }
            _ => Err("await-timeout"),
        },
    };
    Ok((next?, emitted))
}

/// Reconstructs every thread of `log` into operation spans.
#[must_use]
pub fn reconstruct(log: &EventLog) -> SpanReport {
    let mut report = SpanReport::default();
    for thread in log.threads() {
        replay_thread(
            log.thread_rows(thread),
            log.truncated_for(thread) > 0,
            &mut report,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> EventLog {
        let text = format!("# cso-trace-events v1\n# dropped 0\n{body}");
        EventLog::parse(&text).expect("test log parses")
    }

    #[test]
    fn reconstructs_all_four_paths() {
        // Thread 0: fast op, then a locked op with the full §4.4
        // choreography. Thread 1: combining poster served by thread 2,
        // which combines a batch of 2.
        let log = parse(
            "0\t0\t10\tfast-attempt\t-\t-\t-\n\
             1\t0\t20\tfast-success\t-\t-\t-\n\
             2\t0\t30\tfast-attempt\t-\t-\t-\n\
             3\t0\t40\tfast-abort\t-\t-\t-\n\
             4\t0\t50\tflag-raise\t-\t0\t-\n\
             5\t0\t90\tlock-acquire\t-\t0\t-\n\
             6\t0\t95\tcontention-raise\t-\t-\t-\n\
             7\t0\t120\tlocked-complete\t-\t-\t-\n\
             8\t0\t121\tcontention-clear\t-\t-\t-\n\
             9\t0\t125\tlock-release\t-\t0\t-\n\
             10\t0\t126\tturn-advance\t-\t1\t-\n\
             11\t1\t10\trecord-post\t-\t-\t-\n\
             12\t2\t11\trecord-post\t-\t-\t-\n\
             13\t2\t15\tlock-acquire\t-\t2\t-\n\
             14\t2\t40\tcombine-batch\t-\t-\t2\n\
             15\t1\t45\trecord-handoff\t-\t-\t30\n\
             16\t1\t46\tcombined-complete\t-\t-\t-\n\
             17\t2\t50\tlocked-complete\t-\t-\t-\n\
             18\t2\t55\tlock-release\t-\t2\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.open, 0);
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.coverage(), 1.0);

        let fast: Vec<_> = report.on_path(Path::Fast).collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].duration_ns(), 10);

        let locked: Vec<_> = report.on_path(Path::Locked).collect();
        assert_eq!(locked.len(), 1);
        assert!(locked[0].aborted_fast);
        assert_eq!(locked[0].proc_id, Some(0));
        assert_eq!(locked[0].wait_ns, Some(40));
        assert_eq!(locked[0].hold_ns, Some(35));

        let combiner: Vec<_> = report.on_path(Path::Combiner).collect();
        assert_eq!(combiner.len(), 1);
        assert_eq!(combiner[0].batch, Some(2));

        assert_eq!(report.on_path(Path::Combined).count(), 1);
    }

    #[test]
    fn eliminated_span_covers_the_whole_ladder() {
        // Thread 0 aborts the weak op, retries once under contention
        // management, then rendezvouses at the exchanger. All of it is
        // one span on the eliminated path.
        let log = parse(
            "0\t0\t10\tfast-attempt\t-\t-\t-\n\
             1\t0\t20\tfast-abort\t-\t-\t-\n\
             2\t0\t30\tfast-attempt\t-\t-\t-\n\
             3\t0\t40\tfast-abort\t-\t-\t-\n\
             4\t0\t50\telim-attempt\t-\t-\t-\n\
             5\t0\t90\teliminated-complete\t-\t-\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.spans.len(), 1);
        let span = &report.spans[0];
        assert_eq!(span.path, Path::Eliminated);
        assert_eq!(span.outcome, Outcome::Completed);
        assert!(span.aborted_fast);
        assert_eq!(span.duration_ns(), 80);
    }

    #[test]
    fn failed_elimination_escalates_within_one_span() {
        // No partner commits; the operation walks the rest of the
        // ladder onto the locked slow path.
        let log = parse(
            "0\t0\t10\tfast-attempt\t-\t-\t-\n\
             1\t0\t20\tfast-abort\t-\t-\t-\n\
             2\t0\t30\telim-attempt\t-\t-\t-\n\
             3\t0\t60\tflag-raise\t-\t0\t-\n\
             4\t0\t80\tlock-acquire\t-\t0\t-\n\
             5\t0\t95\tlocked-complete\t-\t-\t-\n\
             6\t0\t100\tlock-release\t-\t0\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.spans.len(), 1);
        let span = &report.spans[0];
        assert_eq!(span.path, Path::Locked);
        assert!(span.aborted_fast);
        assert_eq!(span.wait_ns, Some(20));
        assert_eq!(report.on_path(Path::Eliminated).count(), 0);
    }

    #[test]
    fn timeout_before_and_after_acquire() {
        let log = parse(
            "0\t0\t10\tflag-raise\t-\t0\t-\n\
             1\t0\t60\tslow-timeout\t-\t-\t-\n\
             2\t0\t70\tflag-raise\t-\t0\t-\n\
             3\t0\t80\tlock-acquire\t-\t0\t-\n\
             4\t0\t99\tlock-release\t-\t0\t-\n\
             5\t0\t100\tslow-timeout\t-\t-\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().all(|s| s.outcome == Outcome::TimedOut));
        assert_eq!(report.spans[0].wait_ns, None);
        assert_eq!(report.spans[1].wait_ns, Some(10));
    }

    #[test]
    fn combining_bounce_and_repost_stay_one_span() {
        // Poster loses the retract race (acquire → immediate release),
        // then is poisoned, reposts, and is finally served.
        let log = parse(
            "0\t0\t10\trecord-post\t-\t-\t-\n\
             1\t0\t20\tlock-acquire\t-\t0\t-\n\
             2\t0\t25\tlock-release\t-\t0\t-\n\
             3\t0\t30\trecord-poisoned\t-\t-\t-\n\
             4\t0\t31\trecord-post\t-\t-\t-\n\
             5\t0\t90\tcombined-complete\t-\t-\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.spans.len(), 1);
        let span = &report.spans[0];
        assert_eq!(span.path, Path::Combined);
        assert_eq!(span.reposts, 1);
        assert_eq!(span.duration_ns(), 80);
    }

    #[test]
    fn truncated_head_is_loss_but_later_orphans_are_malformed() {
        // Thread 3's ring wrapped: its stream opens mid-operation.
        let body = "0\t3\t10\tlocked-complete\t-\t-\t-\n\
                    1\t3\t12\tlock-release\t-\t3\t-\n\
                    2\t3\t20\tfast-attempt\t-\t-\t-\n\
                    3\t3\t25\tfast-success\t-\t-\t-\n\
                    4\t3\t30\tfast-success\t-\t-\t-\n";
        let text = format!("# cso-trace-events v1\n# dropped 2\n# truncated 3 2\n{body}");
        let log = EventLog::parse(&text).expect("parses");
        let report = reconstruct(&log);
        // The two orphans at the head are truncation loss; the stray
        // fast-success *after* a clean span is a real violation.
        assert_eq!(report.truncated_events, 2);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.malformed.len(), 1);
        assert_eq!(report.malformed[0].seq, 4);
        assert_eq!(report.malformed[0].state, "idle");

        // The same head orphans on an untruncated thread are
        // violations.
        let log = parse(body);
        let report = reconstruct(&log);
        assert_eq!(report.truncated_events, 0);
        assert_eq!(report.malformed.len(), 3);
        assert!((report.coverage() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn incremental_replayer_matches_batch_reconstruct() {
        let log = parse(
            "0\t0\t10\tfast-attempt\t-\t-\t-\n\
             1\t0\t20\tfast-success\t-\t-\t-\n\
             2\t0\t30\tfast-attempt\t-\t-\t-\n\
             3\t0\t40\tfast-abort\t-\t-\t-\n\
             4\t0\t50\tflag-raise\t-\t0\t-\n\
             5\t0\t90\tlock-acquire\t-\t0\t-\n\
             6\t0\t120\tlocked-complete\t-\t-\t-\n\
             7\t0\t125\tlock-release\t-\t0\t-\n\
             8\t0\t130\tsuspect-raised\t-\t1\t-\n\
             9\t0\t140\tfast-success\t-\t-\t-\n",
        );
        let batch = reconstruct(&log);

        // Feed the same stream row by row — batch boundaries anywhere.
        let mut replayer = ThreadReplayer::new(false);
        let mut spans = Vec::new();
        let mut malformed = 0;
        for row in log.thread_rows(0) {
            match replayer.feed(row) {
                Fed::Quiet | Fed::Orphan => {}
                Fed::Span(s) => spans.push(s),
                Fed::Malformed(_) => malformed += 1,
            }
        }
        assert_eq!(spans.len(), batch.spans.len());
        assert_eq!(malformed, batch.malformed.len());
        assert_eq!(replayer.recovery().suspects, batch.recovery.suspects);
        assert!(!replayer.is_open());
        for (live, post) in spans.iter().zip(batch.spans.iter()) {
            assert_eq!(live.path, post.path);
            assert_eq!(live.start_seq, post.start_seq);
            assert_eq!(live.end_seq, post.end_seq);
            assert_eq!(live.duration_ns(), post.duration_ns());
        }
    }

    #[test]
    fn desync_turns_orphans_back_into_loss() {
        let mk = |seq, name: &str| Row {
            seq,
            thread: 0,
            wall_ns: seq * 10,
            name: name.to_owned(),
            site: None,
            proc_id: None,
            value: None,
        };
        let mut replayer = ThreadReplayer::new(false);
        assert!(matches!(replayer.feed(&mk(0, "fast-attempt")), Fed::Quiet));
        assert!(matches!(
            replayer.feed(&mk(1, "fast-success")),
            Fed::Span(_)
        ));
        // Synced now: a stray completion is a violation...
        assert!(matches!(
            replayer.feed(&mk(2, "fast-success")),
            Fed::Malformed(_)
        ));
        // ...but after a reported harvest loss it is charged to the
        // gap, and the machine resynchronises on the next clean span.
        replayer.desync();
        assert!(!replayer.is_open());
        assert!(matches!(replayer.feed(&mk(3, "lock-release")), Fed::Orphan));
        assert!(matches!(replayer.feed(&mk(4, "fast-attempt")), Fed::Quiet));
        assert!(replayer.is_open());
        assert!(matches!(
            replayer.feed(&mk(5, "fast-success")),
            Fed::Span(_)
        ));
        assert!(matches!(
            replayer.feed(&mk(6, "lock-release")),
            Fed::Malformed(_)
        ));
    }

    #[test]
    fn causal_annotations_attach_to_their_spans() {
        // Thread 1 is served by a combiner on thread 2; thread 0 takes
        // the lock twice, the second acquisition handed off from the
        // first (same thread here — the replayer does not judge).
        let log = parse(
            "0\t1\t10\trecord-post\t-\t-\t-\n\
             1\t1\t45\thelped-by-combiner\t-\t-\t2\n\
             2\t1\t46\tcombined-complete\t-\t-\t-\n\
             3\t0\t10\tflag-raise\t-\t0\t-\n\
             4\t0\t20\tlock-acquire\t-\t0\t-\n\
             5\t0\t30\tlocked-complete\t-\t-\t-\n\
             6\t0\t35\tlock-release\t-\t0\t-\n\
             7\t0\t40\tflag-raise\t-\t0\t-\n\
             8\t0\t50\thandoff-from\t-\t-\t7\n\
             9\t0\t51\tlock-acquire\t-\t0\t-\n\
             10\t0\t60\tlocked-complete\t-\t-\t-\n\
             11\t0\t65\tlock-release\t-\t0\t-\n",
        );
        let report = reconstruct(&log);
        assert!(report.malformed.is_empty(), "{:?}", report.malformed);
        assert_eq!(report.spans.len(), 3);

        let combined: Vec<_> = report.on_path(Path::Combined).collect();
        assert_eq!(combined[0].helped_by, Some((HelpKind::Combiner, 2)));

        let locked: Vec<_> = report.on_path(Path::Locked).collect();
        assert_eq!(locked.len(), 2);
        assert_eq!(
            locked[0].helped_by, None,
            "first acquire: nobody handed off"
        );
        assert_eq!(locked[1].helped_by, Some((HelpKind::Handoff, 7)));
    }

    #[test]
    fn causal_stash_does_not_leak_across_malformed_resets() {
        let mk = |seq, name: &str, value: Option<u64>| Row {
            seq,
            thread: 0,
            wall_ns: seq * 10,
            name: name.to_owned(),
            site: None,
            proc_id: None,
            value,
        };
        let mut replayer = ThreadReplayer::new(false);
        // An op picks up an edge but dies malformed...
        assert!(matches!(
            replayer.feed(&mk(0, "fast-attempt", None)),
            Fed::Quiet
        ));
        assert!(matches!(
            replayer.feed(&mk(1, "helped-by-partner", Some(5))),
            Fed::Quiet
        ));
        assert!(matches!(
            replayer.feed(&mk(2, "lock-release", None)),
            Fed::Malformed(_)
        ));
        // ...and the next clean span must not inherit the edge.
        assert!(matches!(
            replayer.feed(&mk(3, "fast-attempt", None)),
            Fed::Quiet
        ));
        match replayer.feed(&mk(4, "fast-success", None)) {
            Fed::Span(span) => assert_eq!(span.helped_by, None),
            other => panic!("expected a span, got {other:?}"),
        }
    }

    #[test]
    fn help_kind_labels_round_trip_through_event_names() {
        for kind in HelpKind::ALL {
            let name = match kind {
                HelpKind::Combiner => "helped-by-combiner",
                HelpKind::Partner => "helped-by-partner",
                HelpKind::Handoff => "handoff-from",
                HelpKind::Custody => "custody-from",
            };
            assert_eq!(HelpKind::from_name(name), Some(kind));
            assert!(is_annotation(name), "{name} must never delimit spans");
        }
        assert_eq!(HelpKind::from_name("fast-attempt"), None);
    }

    #[test]
    fn capture_end_leaves_open_spans_not_errors() {
        let log = parse(
            "0\t0\t10\tfast-attempt\t-\t-\t-\n\
             1\t1\t10\tflag-raise\t-\t1\t-\n",
        );
        let report = reconstruct(&log);
        assert_eq!(report.open, 2);
        assert!(report.malformed.is_empty());
        assert_eq!(report.coverage(), 1.0);
    }
}
