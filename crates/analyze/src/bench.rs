//! `BENCH_*.json` schema validation and aggregation.
//!
//! Every bench binary writes one report in the shared shape
//! (`cso-bench::jsonreport::BenchReport`):
//!
//! ```json
//! {"experiment": "e3_throughput", "config": {...}, "metrics": {...}}
//! ```
//!
//! `validate` enforces that shape; `summarize` folds a results
//! directory into one `BENCH_summary.json` with every experiment's
//! config and metrics carried **verbatim**. The summary duplicates the
//! per-experiment files on purpose: it is the checked-in baseline that
//! `cso-analyze regress --baseline` gates against, and a gate can only
//! compare numbers the baseline actually contains. (An earlier shape
//! folded arrays to row counts, which silently left every table-valued
//! experiment ungated.)

use std::path::{Path, PathBuf};

use cso_metrics::Json;

/// Why a report failed validation.
#[derive(Debug)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Validates one parsed report against the shared bench schema.
///
/// # Errors
///
/// [`SchemaError`] naming the first missing or mistyped field.
pub fn validate(report: &Json) -> Result<(), SchemaError> {
    let obj = report
        .as_obj()
        .ok_or_else(|| SchemaError("top level must be an object".to_owned()))?;
    let experiment = report
        .get("experiment")
        .ok_or_else(|| SchemaError("missing \"experiment\"".to_owned()))?;
    if experiment.as_str().map_or(true, str::is_empty) {
        return Err(SchemaError(
            "\"experiment\" must be a non-empty string".to_owned(),
        ));
    }
    for key in ["config", "metrics"] {
        let value = report
            .get(key)
            .ok_or_else(|| SchemaError(format!("missing {key:?}")))?;
        if value.as_obj().is_none() {
            return Err(SchemaError(format!("{key:?} must be an object")));
        }
    }
    for (key, _) in obj {
        if !matches!(key.as_str(), "experiment" | "config" | "metrics") {
            return Err(SchemaError(format!("unexpected top-level key {key:?}")));
        }
    }
    Ok(())
}

/// Lists the `BENCH_*.json` report files under `dir` (excluding the
/// summary itself), sorted by file name.
///
/// # Errors
///
/// An [`std::io::Error`] when the directory cannot be read.
pub fn report_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_summary.json"
            })
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Folds validated reports into the summary document. `files` pairs
/// each file name with its parsed report. Metrics are carried
/// verbatim so the summary can serve as a regression baseline.
#[must_use]
pub fn summarize(files: &[(String, Json)]) -> Json {
    let experiments: Vec<Json> = files
        .iter()
        .map(|(name, report)| {
            Json::obj()
                .field(
                    "experiment",
                    report
                        .get("experiment")
                        .and_then(Json::as_str)
                        .unwrap_or(""),
                )
                .field("file", name.as_str())
                .field(
                    "config",
                    report.get("config").cloned().unwrap_or(Json::Null),
                )
                .field(
                    "metrics",
                    report.get("metrics").cloned().unwrap_or(Json::Null),
                )
        })
        .collect();
    Json::obj()
        .field("schema", "cso-bench-summary v1")
        .field("experiments", Json::Arr(experiments))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(text: &str) -> Json {
        Json::parse(text).expect("test report parses")
    }

    #[test]
    fn accepts_the_shared_shape() {
        let ok = report(r#"{"experiment":"e1","config":{"n":2},"metrics":{"x":1}}"#);
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn rejects_missing_or_mistyped_fields() {
        for (text, needle) in [
            (r"[1,2]", "object"),
            (r#"{"config":{},"metrics":{}}"#, "experiment"),
            (r#"{"experiment":"","config":{},"metrics":{}}"#, "non-empty"),
            (r#"{"experiment":"e1","metrics":{}}"#, "config"),
            (r#"{"experiment":"e1","config":[],"metrics":{}}"#, "config"),
            (r#"{"experiment":"e1","config":{}}"#, "metrics"),
            (
                r#"{"experiment":"e1","config":{},"metrics":{},"extra":1}"#,
                "extra",
            ),
        ] {
            let err = validate(&report(text)).expect_err(text);
            assert!(err.0.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn summary_carries_metrics_verbatim() {
        let files = vec![
            (
                "BENCH_e1.json".to_owned(),
                report(
                    r#"{"experiment":"e1","config":{"ops":10},
                        "metrics":{"rows":{"headers":["a"],"rows":[[1],[2]]},"solo":6}}"#,
                ),
            ),
            (
                "BENCH_e3.json".to_owned(),
                report(r#"{"experiment":"e3","config":{},"metrics":{"cells":[1,2,3]}}"#),
            ),
        ];
        let summary = summarize(&files);
        assert_eq!(
            summary.get("schema").and_then(Json::as_str),
            Some("cso-bench-summary v1")
        );
        let experiments = summary
            .get("experiments")
            .and_then(Json::as_arr)
            .expect("experiments array");
        assert_eq!(experiments.len(), 2);
        let e1 = &experiments[0];
        assert_eq!(e1.get("experiment").and_then(Json::as_str), Some("e1"));
        assert_eq!(
            e1.get("config")
                .and_then(|c| c.get("ops"))
                .and_then(Json::as_u64),
            Some(10)
        );
        // Metrics land in the summary untouched — the summary is the
        // regression baseline, so every numeric leaf must survive.
        assert_eq!(e1.get("metrics"), files[0].1.get("metrics"));
        let e3 = &experiments[1];
        assert_eq!(
            e3.get("metrics")
                .and_then(|m| m.get("cells"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3),
            "arrays copied, not folded"
        );
        // The summary itself renders as valid JSON.
        Json::parse(&summary.render_pretty()).expect("round-trips");
    }
}
