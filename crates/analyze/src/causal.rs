//! The cross-thread helped-by graph.
//!
//! Combining, elimination, and lock succession all complete (or
//! enable) an operation on a *different* thread than its invoker, so
//! per-thread spans alone cannot say who did the work. The causal
//! annotations ([`crate::spans::HelpKind`]) close that gap; this
//! module folds a [`SpanReport`] into the graph they induce: edge
//! counts per `(kind, helper thread → owner thread)` pair plus the
//! attribution coverage the observability acceptance gate checks —
//! the fraction of operations that *should* carry an edge (combined
//! and eliminated completions) that actually do.

use std::collections::BTreeMap;

use cso_metrics::Json;

use crate::spans::{HelpKind, Path, Span, SpanReport};

/// One aggregated helped-by edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalEdge {
    /// What kind of help flowed along the edge.
    pub kind: HelpKind,
    /// Trace-thread id of the helper (combiner, partner, previous
    /// holder, or corpse).
    pub helper: u32,
    /// Trace-thread id of the operation's invoking thread.
    pub owner: u32,
    /// Operations that received this exact edge.
    pub count: u64,
}

/// The helped-by graph of one capture, with attribution coverage.
#[derive(Debug, Clone, Default)]
pub struct CausalReport {
    /// Aggregated edges, heaviest first.
    pub edges: Vec<CausalEdge>,
    /// Combined-path spans observed / carrying a combiner edge.
    pub combined: (u64, u64),
    /// Eliminated-path spans observed / carrying a partner edge.
    pub eliminated: (u64, u64),
    /// Lock-handoff edges observed (no expected denominator: a free
    /// lock acquires without a predecessor).
    pub handoffs: u64,
    /// Custody-transfer (succession) edges observed.
    pub custody: u64,
}

impl CausalReport {
    /// Fraction of operations that should carry a helper edge
    /// (combined + eliminated completions) that do. 1.0 when none
    /// were observed. The e14 acceptance gate requires ≥ 0.99.
    #[must_use]
    pub fn attribution(&self) -> f64 {
        let expected = self.combined.0 + self.eliminated.0;
        if expected == 0 {
            1.0
        } else {
            (self.combined.1 + self.eliminated.1) as f64 / expected as f64
        }
    }

    /// Total operations carrying any causal edge.
    #[must_use]
    pub fn attributed(&self) -> u64 {
        self.edges.iter().map(|e| e.count).sum()
    }

    /// The JSON document `/causal.json` serves.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::obj()
                    .field("kind", e.kind.label())
                    .field("helper_thread", u64::from(e.helper))
                    .field("owner_thread", u64::from(e.owner))
                    .field("count", e.count)
            })
            .collect();
        Json::obj()
            .field("schema", "cso-causal v1")
            .field("attributed", self.attributed())
            .field(
                "coverage",
                Json::obj()
                    .field("combined_expected", self.combined.0)
                    .field("combined_attributed", self.combined.1)
                    .field("eliminated_expected", self.eliminated.0)
                    .field("eliminated_attributed", self.eliminated.1)
                    .field("handoffs", self.handoffs)
                    .field("custody_transfers", self.custody)
                    .field("attribution", self.attribution()),
            )
            .field("edges", Json::Arr(edges))
    }
}

/// The streaming fold behind [`causal_graph`]. `cso-profile`'s live
/// aggregator holds one and feeds it each completed span, so the live
/// `/causal.json` graph and the post-mortem one cannot drift.
#[derive(Debug, Clone, Default)]
pub struct CausalAccumulator {
    counts: BTreeMap<(u8, u32, u32), (HelpKind, u64)>,
    combined: (u64, u64),
    eliminated: (u64, u64),
    handoffs: u64,
    custody: u64,
}

impl CausalAccumulator {
    /// Folds one completed span in.
    pub fn add_span(&mut self, span: &Span) {
        match span.path {
            Path::Combined => self.combined.0 += 1,
            Path::Eliminated => self.eliminated.0 += 1,
            _ => {}
        }
        let Some((kind, helper)) = span.helped_by else {
            return;
        };
        match kind {
            HelpKind::Combiner if span.path == Path::Combined => self.combined.1 += 1,
            HelpKind::Partner if span.path == Path::Eliminated => self.eliminated.1 += 1,
            HelpKind::Handoff => self.handoffs += 1,
            HelpKind::Custody => self.custody += 1,
            // A combiner/partner edge on an unexpected path still
            // counts as an edge, just not as path coverage.
            HelpKind::Combiner | HelpKind::Partner => {}
        }
        let key = (kind as u8, helper, span.thread);
        self.counts.entry(key).or_insert((kind, 0)).1 += 1;
    }

    /// Renders the graph accumulated so far.
    #[must_use]
    pub fn report(&self) -> CausalReport {
        let mut edges: Vec<CausalEdge> = self
            .counts
            .iter()
            .map(|(&(_, helper, owner), &(kind, count))| CausalEdge {
                kind,
                helper,
                owner,
                count,
            })
            .collect();
        edges.sort_by_key(|e| std::cmp::Reverse(e.count));
        CausalReport {
            edges,
            combined: self.combined,
            eliminated: self.eliminated,
            handoffs: self.handoffs,
            custody: self.custody,
        }
    }
}

/// Folds the spans of `report` into the helped-by graph.
#[must_use]
pub fn causal_graph(report: &SpanReport) -> CausalReport {
    let mut acc = CausalAccumulator::default();
    for span in &report.spans {
        acc.add_span(span);
    }
    acc.report()
}

/// Renders the graph as a deterministic text block (one edge per
/// line), for the CLI report.
#[must_use]
pub fn render(report: &CausalReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "causal edges: {} ops attributed ({} combined / {} eliminated / {} handoff / {} custody)",
        report.attributed(),
        report.combined.1,
        report.eliminated.1,
        report.handoffs,
        report.custody,
    );
    let _ = writeln!(
        s,
        "attribution coverage: {:.4} ({} of {} expected)",
        report.attribution(),
        report.combined.1 + report.eliminated.1,
        report.combined.0 + report.eliminated.0,
    );
    for e in &report.edges {
        let _ = writeln!(
            s,
            "  {:<9} thread_{} -> thread_{}  x{}",
            e.kind.label(),
            e.helper,
            e.owner,
            e.count
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLog;
    use crate::spans::reconstruct;

    fn parse(body: &str) -> EventLog {
        let text = format!("# cso-trace-events v1\n# dropped 0\n{body}");
        EventLog::parse(&text).expect("test log parses")
    }

    #[test]
    fn graph_counts_edges_and_coverage() {
        // Two combined ops served by thread 9, one of them (seq 4-5)
        // stripped of its annotation to model a lost stamp.
        let log = parse(
            "0\t1\t10\trecord-post\t-\t-\t-\n\
             1\t1\t20\thelped-by-combiner\t-\t-\t9\n\
             2\t1\t21\tcombined-complete\t-\t-\t-\n\
             3\t2\t10\trecord-post\t-\t-\t-\n\
             4\t2\t25\tcombined-complete\t-\t-\t-\n\
             5\t1\t30\trecord-post\t-\t-\t-\n\
             6\t1\t40\thelped-by-combiner\t-\t-\t9\n\
             7\t1\t41\tcombined-complete\t-\t-\t-\n",
        );
        let report = reconstruct(&log);
        let graph = causal_graph(&report);
        assert_eq!(graph.combined, (3, 2));
        assert_eq!(graph.eliminated, (0, 0));
        assert!((graph.attribution() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(graph.edges.len(), 1);
        let edge = graph.edges[0];
        assert_eq!(
            (edge.kind, edge.helper, edge.owner, edge.count),
            (HelpKind::Combiner, 9, 1, 2)
        );
        let text = render(&graph);
        assert!(
            text.contains("combiner  thread_9 -> thread_1  x2"),
            "{text}"
        );
    }

    #[test]
    fn empty_capture_has_full_attribution() {
        let graph = causal_graph(&Default::default());
        assert_eq!(graph.attribution(), 1.0);
        assert_eq!(graph.attributed(), 0);
    }
}
