//! # `cso-analyze` — trace-driven analysis for contention-sensitive objects
//!
//! Where `cso-metrics` reports what an object is doing *now*, this
//! crate answers what a captured run actually *did*. It consumes the
//! `cso-trace-events v1` TSV stream that the bench harness writes
//! (`cso_trace::export::event_log`, via `CSO_TRACE_EVENTS` or
//! `target/trace/<bin>.events.tsv`) and provides:
//!
//! * [`log`] — the TSV parser, including ring-loss accounting
//!   (`# dropped` / `# truncated` headers);
//! * [`spans`] — per-operation span reconstruction: every thread's
//!   stream replays through a state machine mirroring the Figure 3
//!   emission sites, classifying each operation as fast / locked /
//!   combined / combiner and each anomaly as truncation loss or a
//!   protocol violation;
//! * [`causal`] — the cross-thread helped-by graph: folds the causal
//!   annotations (combiner / elimination partner / lock handoff /
//!   custody transfer) into per-edge counts and the attribution
//!   coverage the observability gate enforces;
//! * [`bypass`] — the empirical §4.4 starvation-freedom check: no
//!   `flag-raise(p)` → `lock-acquire(p)` interval may contain more
//!   than `n − 1` acquisitions by other processes;
//! * [`convoy`] — lock-tenure pathologies: saturated hand-off runs
//!   (convoys) and combining tenures whose batch failed to amortise
//!   the hold (combiner stalls);
//! * [`collapse`] — critical-path statistics and collapsed-stack
//!   (flamegraph) output;
//! * [`bench`] — validation and aggregation of the `BENCH_*.json`
//!   reports the bench binaries emit;
//! * [`regress`] — per-metric noise-band comparison of two bench
//!   reports (the CI perf gate's engine).
//!
//! The `cso-analyze` binary fronts all of it; `cso-analyze check` is
//! the CI entry point (nonzero exit on a bypass violation or span
//! coverage below threshold).

#![warn(missing_docs)]

pub mod bench;
pub mod bypass;
pub mod causal;
pub mod collapse;
pub mod convoy;
pub mod log;
pub mod regress;
pub mod spans;
