//! Critical-path summary and collapsed-stack (flamegraph) output.
//!
//! The collapsed format is the one `flamegraph.pl` / `inferno`
//! consume: one `frame;frame;... weight` line per stack, weights in
//! nanoseconds here. Spans fold into a two-level stack — the process
//! on top, then the completion path, with the locked path split into
//! its wait (flag → acquire) and hold (acquire → release) phases so
//! the flame shows where slow-path time actually goes.

use std::collections::BTreeMap;

use crate::spans::{Outcome, Path, Span, SpanReport};

/// Aggregated duration statistics for one group of spans.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurationStats {
    /// Number of spans in the group.
    pub count: usize,
    /// Sum of durations in nanoseconds.
    pub total_ns: u64,
    /// 50th percentile duration.
    pub p50_ns: u64,
    /// 99th percentile duration.
    pub p99_ns: u64,
    /// Maximum duration.
    pub max_ns: u64,
}

impl DurationStats {
    fn of(mut durations: Vec<u64>) -> DurationStats {
        durations.sort_unstable();
        let pick = |q: f64| {
            if durations.is_empty() {
                0
            } else {
                let i = ((durations.len() - 1) as f64 * q).round() as usize;
                durations[i]
            }
        };
        DurationStats {
            count: durations.len(),
            total_ns: durations.iter().sum(),
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            max_ns: *durations.last().unwrap_or(&0),
        }
    }

    /// Mean duration in nanoseconds (0 for an empty group).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_ns / self.count as u64
        }
    }
}

/// Per-path duration statistics plus the wall-clock critical path.
#[derive(Debug)]
pub struct CriticalPath {
    /// `(path label, stats)` for each populated path, fast first.
    pub per_path: Vec<(&'static str, DurationStats)>,
    /// Total nanoseconds the lock was held (sum of span holds).
    pub lock_held_ns: u64,
    /// Wall-clock extent of the capture (first start → last end).
    pub wall_ns: u64,
    /// The single longest span.
    pub longest: Option<Span>,
}

impl CriticalPath {
    /// Fraction of the capture during which *some* operation held the
    /// lock — the serial fraction that bounds scalability. Can exceed
    /// 1.0 only if tenures overlapped, which would itself be a bug.
    #[must_use]
    pub fn lock_saturation(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.lock_held_ns as f64 / self.wall_ns as f64
        }
    }
}

/// Computes per-path statistics and the lock's share of the capture.
#[must_use]
pub fn critical_path(report: &SpanReport) -> CriticalPath {
    let paths = [
        Path::Fast,
        Path::Eliminated,
        Path::Locked,
        Path::Combined,
        Path::Combiner,
    ];
    let per_path = paths
        .iter()
        .map(|&p| {
            let durations: Vec<u64> = report.on_path(p).map(Span::duration_ns).collect();
            (p.label(), DurationStats::of(durations))
        })
        .filter(|(_, s)| s.count > 0)
        .collect();

    let lock_held_ns = report.spans.iter().filter_map(|s| s.hold_ns).sum();
    let wall_ns = match (
        report.spans.iter().map(|s| s.start_ns).min(),
        report.spans.iter().map(|s| s.end_ns).max(),
    ) {
        (Some(lo), Some(hi)) => hi.saturating_sub(lo),
        _ => 0,
    };
    let longest = report.spans.iter().max_by_key(|s| s.duration_ns()).cloned();

    CriticalPath {
        per_path,
        lock_held_ns,
        wall_ns,
        longest,
    }
}

/// Escapes one frame name for the collapsed-stack grammar: `;`
/// separates frames and the final space separates the stack from its
/// weight, so neither may appear *inside* a frame. `;` becomes `:`
/// and any whitespace becomes `_` — lossy but grammar-safe, which is
/// the property downstream tooling (`flamegraph.pl`, `inferno`)
/// actually needs.
#[must_use]
pub fn escape_frame(frame: &str) -> String {
    frame
        .chars()
        .map(|c| match c {
            ';' => ':',
            c if c.is_whitespace() => '_',
            c => c,
        })
        .collect()
}

/// Folds one span into a collapsed-stack accumulator (stack → total
/// nanoseconds). The live aggregator feeds spans here one at a time as
/// they complete; [`collapsed`] folds a whole report and renders. Both
/// produce identical stacks for identical spans. Every frame passes
/// through [`escape_frame`], so a hostile label cannot corrupt the
/// line grammar.
pub fn add_span(stacks: &mut BTreeMap<String, u64>, span: &Span) {
    let mut add = |frames: &[&str], ns: u64| {
        if ns > 0 {
            let stack = frames
                .iter()
                .map(|f| escape_frame(f))
                .collect::<Vec<_>>()
                .join(";");
            *stacks.entry(stack).or_insert(0) += ns;
        }
    };
    let who = match span.proc_id {
        Some(p) => format!("proc_{p}"),
        None => format!("thread_{}", span.thread),
    };
    let mut frames = vec![who.as_str(), span.path.label()];
    match span.outcome {
        Outcome::Completed => {}
        Outcome::TimedOut => frames.push("timeout"),
        Outcome::Poisoned => frames.push("poisoned"),
    }
    match (span.wait_ns, span.hold_ns) {
        (wait, Some(hold)) => {
            let wait = wait.unwrap_or(0);
            add(&[&frames[..], &["wait"]].concat(), wait);
            add(&[&frames[..], &["hold"]].concat(), hold);
            // Anything not in wait or hold (fast-abort, post spin).
            add(
                &[&frames[..], &["other"]].concat(),
                span.duration_ns().saturating_sub(wait + hold),
            );
        }
        _ => add(&frames, span.duration_ns()),
    }
}

/// Renders a collapsed-stack accumulator, one `stack weight` line per
/// entry, lexicographically sorted (stable output for diffing).
#[must_use]
pub fn render_stacks(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Renders spans in collapsed-stack format, nanosecond weights,
/// lexicographically sorted (stable output for diffing).
#[must_use]
pub fn collapsed(report: &SpanReport) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in &report.spans {
        add_span(&mut stacks, span);
    }
    render_stacks(&stacks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::EventLog;
    use crate::spans::reconstruct;

    fn report_of(body: &str) -> SpanReport {
        let text = format!("# cso-trace-events v1\n# dropped 0\n{body}");
        reconstruct(&EventLog::parse(&text).expect("parses"))
    }

    #[test]
    fn collapsed_splits_locked_spans_into_wait_and_hold() {
        let report = report_of(
            "0\t0\t0\tfast-attempt\t-\t-\t-\n\
             1\t0\t10\tfast-success\t-\t-\t-\n\
             2\t0\t100\tflag-raise\t-\t0\t-\n\
             3\t0\t140\tlock-acquire\t-\t0\t-\n\
             4\t0\t190\tlocked-complete\t-\t-\t-\n\
             5\t0\t200\tlock-release\t-\t0\t-\n",
        );
        let out = collapsed(&report);
        assert!(out.contains("proc_0;locked;wait 40\n"), "{out}");
        assert!(out.contains("proc_0;locked;hold 60\n"), "{out}");
        assert!(out.contains("thread_0;fast 10\n"), "{out}");
        // Weights on each line parse as integers.
        for line in out.lines() {
            let (_, weight) = line.rsplit_once(' ').expect("stack weight");
            weight.parse::<u64>().expect("numeric weight");
        }
    }

    #[test]
    fn escape_frame_neutralizes_the_grammar_characters() {
        assert_eq!(escape_frame("plain_frame"), "plain_frame");
        assert_eq!(escape_frame("a;b c\td\ne"), "a:b_c_d_e");
        let escaped = escape_frame("evil; frame\u{a0}name");
        assert!(!escaped.contains(';'), "{escaped}");
        assert!(!escaped.chars().any(char::is_whitespace), "{escaped}");
    }

    #[test]
    fn critical_path_reports_lock_share() {
        let report = report_of(
            "0\t0\t0\tflag-raise\t-\t0\t-\n\
             1\t0\t10\tlock-acquire\t-\t0\t-\n\
             2\t0\t60\tlocked-complete\t-\t-\t-\n\
             3\t0\t100\tlock-release\t-\t0\t-\n\
             4\t1\t100\tfast-attempt\t-\t-\t-\n\
             5\t1\t200\tfast-success\t-\t-\t-\n",
        );
        let cp = critical_path(&report);
        assert_eq!(cp.wall_ns, 200);
        assert_eq!(cp.lock_held_ns, 90);
        assert!((cp.lock_saturation() - 0.45).abs() < 1e-9);
        assert_eq!(cp.longest.as_ref().map(Span::duration_ns), Some(100));
        let locked = cp.per_path.iter().find(|(l, _)| *l == "locked").unwrap();
        assert_eq!(locked.1.count, 1);
        assert_eq!(locked.1.mean_ns(), 100);
    }
}
