//! The `cso-analyze` command-line front end.
//!
//! ```text
//! cso-analyze spans   <events.tsv>                       span reconstruction + critical path
//! cso-analyze bypass  <events.tsv> [--procs N] [--bound K]   §4.4 bypass-bound check
//! cso-analyze convoy  <events.tsv> [--gap-ns G]          lock convoys + combiner stalls
//! cso-analyze collapse <events.tsv>                      collapsed stacks (flamegraph input)
//! cso-analyze causal  <events.tsv>                       cross-thread helped-by graph
//! cso-analyze check   <events.tsv> [--procs N] [--bound K] [--min-coverage F]
//!                     [--min-attribution F]
//! cso-analyze bench-summary  <results-dir>               fold BENCH_*.json into BENCH_summary.json
//! cso-analyze bench-validate <file-or-dir>...            schema-check BENCH_*.json reports
//! cso-analyze regress --baseline <base.json> <current.json> [--tolerance F] [--warn-only]
//! ```
//!
//! Exit status: 0 clean, 1 an analysis found a violation (bypass
//! bound exceeded, span coverage below threshold, schema invalid,
//! perf regression outside the noise band), 2 usage / IO / parse
//! errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cso_analyze::spans::SpanReport;
use cso_analyze::{bench, bypass, causal, collapse, convoy, log::EventLog, regress, spans};
use cso_metrics::Json;

/// Minimum fraction of observed operations that must reconstruct into
/// well-formed spans for `check` to pass.
const DEFAULT_MIN_COVERAGE: f64 = 0.99;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cso-analyze <command> [args]\n\
         \n\
         trace commands (input: a cso-trace-events v1 TSV file):\n\
         \x20 spans    <events.tsv>                     reconstruct operation spans\n\
         \x20 bypass   <events.tsv> [--procs N] [--bound K]  check the section-4.4 bypass bound\n\
         \x20 convoy   <events.tsv> [--gap-ns G]        detect lock convoys and combiner stalls\n\
         \x20 collapse <events.tsv>                     emit collapsed stacks (ns weights)\n\
         \x20 causal   <events.tsv>                     cross-thread helped-by graph\n\
         \x20 check    <events.tsv> [--procs N] [--bound K] [--min-coverage F]\n\
         \x20          [--min-attribution F]            spans + bypass + causal attribution;\n\
         \x20                                           nonzero exit on failure\n\
         \n\
         bench-report commands:\n\
         \x20 bench-summary  <results-dir>              write <dir>/BENCH_summary.json\n\
         \x20 bench-validate <file-or-dir>...           validate BENCH_*.json against the schema\n\
         \x20 regress --baseline <base.json> <current.json> [--tolerance F] [--warn-only]\n\
         \x20                                           compare two reports (or summaries) with\n\
         \x20                                           per-metric noise bands; exit 1 on regression"
    );
    ExitCode::from(2)
}

/// Parses `--flag value` pairs out of `args`, leaving positionals.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            args.remove(i);
            Ok(Some(args.remove(i)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
) -> Result<Option<T>, String> {
    take_flag(args, flag)?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("bad value for {flag}: {v:?}"))
        })
        .transpose()
}

fn load_log(path: &str) -> Result<EventLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    EventLog::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn print_span_report(report: &SpanReport, log: &EventLog) {
    println!(
        "events: {} ({} dropped by the ring, {} thread(s) truncated)",
        log.rows.len(),
        log.dropped,
        log.truncated.len()
    );
    println!(
        "spans: {} well-formed, {} in flight at capture end, {} truncation orphan(s), {} malformed",
        report.spans.len(),
        report.open,
        report.truncated_events,
        report.malformed.len()
    );
    println!("coverage: {:.2}%", report.coverage() * 100.0);
    if report.recovery.any() {
        println!(
            "recovery: {} suspicion(s) raised, {} orphaned record(s) reclaimed, {} lock succession(s)",
            report.recovery.suspects, report.recovery.reclaimed, report.recovery.successions
        );
    }
    for m in report.malformed.iter().take(5) {
        println!(
            "  malformed: thread {} seq {} `{}` illegal in state `{}`",
            m.thread, m.seq, m.event, m.state
        );
    }
    if report.malformed.len() > 5 {
        println!("  ... and {} more", report.malformed.len() - 5);
    }

    let cp = collapse::critical_path(report);
    if !cp.per_path.is_empty() {
        println!("\nper-path durations (ns):");
        println!(
            "  {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "path", "count", "mean", "p50", "p99", "max"
        );
        for (label, stats) in &cp.per_path {
            println!(
                "  {:<10} {:>8} {:>10} {:>10} {:>10} {:>10}",
                label,
                stats.count,
                stats.mean_ns(),
                stats.p50_ns,
                stats.p99_ns,
                stats.max_ns
            );
        }
        println!(
            "\nlock held {} ns over a {} ns capture: {:.1}% saturated",
            cp.lock_held_ns,
            cp.wall_ns,
            cp.lock_saturation() * 100.0
        );
        if let Some(longest) = &cp.longest {
            println!(
                "longest span: {} ns on the {} path (thread {}, seq {}..{})",
                longest.duration_ns(),
                longest.path.label(),
                longest.thread,
                longest.start_seq,
                longest.end_seq
            );
        }
    }
}

fn print_bypass_report(report: &bypass::BypassReport) {
    println!(
        "bypass bound: n = {} processes, bound = {}",
        report.procs, report.bound
    );
    println!(
        "intervals: {} closed, {} still open at capture end",
        report.intervals, report.open_intervals
    );
    println!("max bypass observed: {}", report.max_bypass);
    for (p, m) in &report.per_proc_max {
        println!("  proc {p}: worst {m}");
    }
    if report.holds() {
        println!(
            "OK: every flagged process acquired within {} bypasses",
            report.bound
        );
    } else {
        for v in &report.violations {
            println!(
                "VIOLATION: proc {} bypassed {} times (> {}) between seq {} and {}",
                v.proc_id, v.bypasses, report.bound, v.flag_seq, v.acquire_seq
            );
        }
    }
}

fn print_convoy_report(report: &convoy::ConvoyReport) {
    println!(
        "tenures: {} (median hold {} ns, max {} ns)",
        report.tenures.len(),
        report.median_hold_ns,
        report.max_hold_ns
    );
    if report.convoys.is_empty() {
        println!("no convoys: the lock went idle between saturated runs");
    } else {
        for c in &report.convoys {
            println!(
                "convoy: {} back-to-back tenures over {} ns ({} procs, from seq {})",
                c.length, c.duration_ns, c.procs, c.start_seq
            );
        }
    }
    if report.stalls.is_empty() {
        println!("no combiner stalls: every batch amortised its tenure");
    } else {
        for s in &report.stalls {
            println!(
                "combiner stall: {} ns for a batch of {} ({} ns/request) at seq {}",
                s.tenure.hold_ns(),
                s.tenure.batch.unwrap_or(0),
                s.ns_per_request,
                s.tenure.start_seq
            );
        }
    }
}

fn cmd_spans(args: Vec<String>) -> Result<ExitCode, String> {
    let [path] = &args[..] else {
        return Err("spans takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;
    let report = spans::reconstruct(&log);
    print_span_report(&report, &log);
    Ok(ExitCode::SUCCESS)
}

fn cmd_bypass(mut args: Vec<String>) -> Result<ExitCode, String> {
    let procs = parse_flag::<usize>(&mut args, "--procs")?;
    let bound = parse_flag::<u64>(&mut args, "--bound")?;
    let [path] = &args[..] else {
        return Err("bypass takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;
    let report = bypass::check(&log, procs, bound);
    print_bypass_report(&report);
    Ok(if report.holds() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_convoy(mut args: Vec<String>) -> Result<ExitCode, String> {
    let gap_ns = parse_flag::<u64>(&mut args, "--gap-ns")?;
    let [path] = &args[..] else {
        return Err("convoy takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;
    print_convoy_report(&convoy::analyze(&log, gap_ns));
    Ok(ExitCode::SUCCESS)
}

fn cmd_collapse(args: Vec<String>) -> Result<ExitCode, String> {
    let [path] = &args[..] else {
        return Err("collapse takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;
    print!("{}", collapse::collapsed(&spans::reconstruct(&log)));
    Ok(ExitCode::SUCCESS)
}

fn cmd_causal(args: Vec<String>) -> Result<ExitCode, String> {
    let [path] = &args[..] else {
        return Err("causal takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;
    let graph = causal::causal_graph(&spans::reconstruct(&log));
    print!("{}", causal::render(&graph));
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let procs = parse_flag::<usize>(&mut args, "--procs")?;
    let bound = parse_flag::<u64>(&mut args, "--bound")?;
    let min_coverage =
        parse_flag::<f64>(&mut args, "--min-coverage")?.unwrap_or(DEFAULT_MIN_COVERAGE);
    let min_attribution = parse_flag::<f64>(&mut args, "--min-attribution")?;
    let [path] = &args[..] else {
        return Err("check takes exactly one events file".to_owned());
    };
    let log = load_log(path)?;

    let span_report = spans::reconstruct(&log);
    print_span_report(&span_report, &log);
    println!();
    let bypass_report = bypass::check(&log, procs, bound);
    print_bypass_report(&bypass_report);
    println!();
    print_convoy_report(&convoy::analyze(&log, None));
    println!();
    let causal_report = causal::causal_graph(&span_report);
    print!("{}", causal::render(&causal_report));

    let mut failed = false;
    if span_report.coverage() < min_coverage {
        eprintln!(
            "FAIL: span coverage {:.2}% below the {:.2}% threshold",
            span_report.coverage() * 100.0,
            min_coverage * 100.0
        );
        failed = true;
    }
    if !bypass_report.holds() {
        eprintln!(
            "FAIL: {} bypass-bound violation(s)",
            bypass_report.violations.len()
        );
        failed = true;
    }
    if let Some(min) = min_attribution {
        if causal_report.attribution() < min {
            eprintln!(
                "FAIL: causal attribution {:.4} below the {min:.4} threshold",
                causal_report.attribution()
            );
            failed = true;
        }
    }
    if failed {
        Ok(ExitCode::FAILURE)
    } else {
        println!("\ncheck OK: coverage and the section-4.4 bypass bound both hold");
        Ok(ExitCode::SUCCESS)
    }
}

fn load_report(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e:?}", path.display()))
}

fn cmd_bench_summary(args: Vec<String>) -> Result<ExitCode, String> {
    let [dir] = &args[..] else {
        return Err("bench-summary takes exactly one results directory".to_owned());
    };
    let dir = PathBuf::from(dir);
    let files = bench::report_files(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if files.is_empty() {
        return Err(format!("{}: no BENCH_*.json reports", dir.display()));
    }
    let mut parsed = Vec::new();
    for path in &files {
        let report = load_report(path)?;
        bench::validate(&report).map_err(|e| format!("{}: {e}", path.display()))?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        parsed.push((name, report));
    }
    let out = dir.join("BENCH_summary.json");
    std::fs::write(&out, bench::summarize(&parsed).render_pretty())
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!("wrote {} ({} experiments)", out.display(), parsed.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_validate(args: Vec<String>) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("bench-validate needs at least one file or directory".to_owned());
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in &args {
        let path = PathBuf::from(arg);
        if path.is_dir() {
            files.extend(bench::report_files(&path).map_err(|e| format!("{arg}: {e}"))?);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        return Err("no BENCH_*.json reports found".to_owned());
    }
    let mut bad = 0usize;
    for path in &files {
        match load_report(path)
            .and_then(|r| bench::validate(&r).map_err(|e| format!("{}: {e}", path.display())))
        {
            Ok(()) => println!("ok: {}", path.display()),
            Err(e) => {
                eprintln!("INVALID: {e}");
                bad += 1;
            }
        }
    }
    Ok(if bad == 0 {
        println!("{} report(s) valid", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{bad} of {} report(s) invalid", files.len());
        ExitCode::FAILURE
    })
}

fn cmd_regress(mut args: Vec<String>) -> Result<ExitCode, String> {
    let baseline = take_flag(&mut args, "--baseline")?
        .ok_or_else(|| "regress needs --baseline <base.json>".to_owned())?;
    let tolerance =
        parse_flag::<f64>(&mut args, "--tolerance")?.unwrap_or(regress::DEFAULT_TOLERANCE);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }
    let warn_only = match args.iter().position(|a| a == "--warn-only") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let [current] = &args[..] else {
        return Err("regress takes exactly one current report".to_owned());
    };
    let base = load_report(Path::new(&baseline))?;
    let cur = load_report(Path::new(current))?;
    let report = regress::compare(&base, &cur, tolerance);

    println!(
        "compared {} metric(s) against {} (noise band ±{:.0}%)",
        report.deltas.len(),
        baseline,
        tolerance * 100.0
    );
    for delta in &report.deltas {
        let verdict = if delta.regressed {
            "REGRESSION"
        } else if delta.direction == regress::Direction::Informational {
            "info"
        } else {
            "ok"
        };
        println!(
            "  {verdict:>10}: {} {} -> {} ({:+.1}%)",
            delta.path,
            delta.baseline,
            delta.current,
            delta.change * 100.0
        );
    }
    for skipped in &report.skipped {
        println!("  skipped: {skipped}");
    }
    let regressions = report.regressions().count();
    if report.deltas.is_empty() {
        // A gate that compared nothing must not pass vacuously: the
        // baseline does not cover this run (wrong experiment name,
        // incompatible shapes, stale summary format).
        eprintln!("FAIL: no shared numeric metric between baseline and current report");
        return Ok(if warn_only {
            eprintln!("WARNING: continuing anyway (--warn-only)");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    if regressions == 0 {
        println!("regress OK: every shared metric within the noise band");
        Ok(ExitCode::SUCCESS)
    } else if warn_only {
        eprintln!("WARNING: {regressions} metric(s) outside the noise band (--warn-only)");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("FAIL: {regressions} metric(s) regressed beyond the noise band");
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "spans" => cmd_spans(args),
        "bypass" => cmd_bypass(args),
        "convoy" => cmd_convoy(args),
        "collapse" => cmd_collapse(args),
        "causal" => cmd_causal(args),
        "check" => cmd_check(args),
        "bench-summary" => cmd_bench_summary(args),
        "bench-validate" => cmd_bench_validate(args),
        "regress" => cmd_regress(args),
        _ => {
            eprintln!("unknown command: {command}");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cso-analyze {command}: {message}");
            ExitCode::from(2)
        }
    }
}
