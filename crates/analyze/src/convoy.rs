//! Lock-tenure accounting: convoys and combiner stalls.
//!
//! A **convoy** is the classic pathology where the lock is handed
//! holder-to-holder without ever going idle — every arriving thread
//! queues behind the current holder, so the lock's *own* overhead
//! (handoff latency, cache-line migration) becomes the throughput
//! ceiling. We detect it structurally: a maximal run of consecutive
//! tenures where the gap between one `lock-release` and the next
//! `lock-acquire` stays under a small threshold is a *saturated run*;
//! runs at least as long as the process count are reported as
//! convoys.
//!
//! A **combiner-tenure stall** is the flat-combining failure mode:
//! one combiner holds the lock for a long tenure while serving a
//! *small* batch — the amortisation argument collapses and everyone
//! queues behind a slow tenure. We flag combining tenures whose
//! per-served-request cost exceeds a multiple of the median locked
//! tenure.

use crate::log::EventLog;

/// One lock tenure: a paired `lock-acquire` → `lock-release` on a
/// single thread.
#[derive(Debug, Clone)]
pub struct Tenure {
    /// Holding thread.
    pub thread: u32,
    /// Holding process (from the acquire payload).
    pub proc_id: u32,
    /// Acquire wall-clock nanoseconds.
    pub start_ns: u64,
    /// Release wall-clock nanoseconds.
    pub end_ns: u64,
    /// Acquire sequence number.
    pub start_seq: u64,
    /// `combine-batch` payload if this tenure combined.
    pub batch: Option<u64>,
}

impl Tenure {
    /// Tenure length in nanoseconds.
    #[must_use]
    pub fn hold_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A maximal saturated run of tenures (no idle gap between them).
#[derive(Debug, Clone)]
pub struct Convoy {
    /// Number of consecutive saturated hand-offs.
    pub length: usize,
    /// Wall-clock span of the run in nanoseconds.
    pub duration_ns: u64,
    /// Acquire sequence number of the first tenure in the run.
    pub start_seq: u64,
    /// Distinct processes trapped in the run.
    pub procs: usize,
}

/// A combining tenure whose amortisation collapsed.
#[derive(Debug, Clone)]
pub struct CombinerStall {
    /// The offending tenure.
    pub tenure: Tenure,
    /// Nanoseconds of tenure per served request.
    pub ns_per_request: u64,
}

/// The full tenure analysis.
#[derive(Debug, Default)]
pub struct ConvoyReport {
    /// All paired tenures, in acquire order.
    pub tenures: Vec<Tenure>,
    /// Median tenure in nanoseconds (0 when no tenures).
    pub median_hold_ns: u64,
    /// Maximum tenure in nanoseconds.
    pub max_hold_ns: u64,
    /// Saturated runs of length ≥ the process count.
    pub convoys: Vec<Convoy>,
    /// Combining tenures with collapsed amortisation.
    pub stalls: Vec<CombinerStall>,
}

/// Release-to-acquire gaps under this are "the lock never went idle".
pub const DEFAULT_GAP_NS: u64 = 1_000;

/// A combining tenure stalls when its per-request cost exceeds this
/// multiple of the median tenure.
const STALL_FACTOR: u64 = 4;

/// Pairs tenures and scans them for convoys and combiner stalls.
/// `gap_ns` is the idle-gap threshold (default [`DEFAULT_GAP_NS`]).
#[must_use]
pub fn analyze(log: &EventLog, gap_ns: Option<u64>) -> ConvoyReport {
    let gap_ns = gap_ns.unwrap_or(DEFAULT_GAP_NS);
    let mut report = ConvoyReport::default();

    // Pair acquire/release per thread; attach the batch probed inside.
    let mut open: Vec<(u32, Tenure)> = Vec::new();
    for row in &log.rows {
        match row.name.as_str() {
            "lock-acquire" => {
                open.retain(|(t, _)| *t != row.thread);
                open.push((
                    row.thread,
                    Tenure {
                        thread: row.thread,
                        proc_id: row.proc_id.unwrap_or(u32::MAX),
                        start_ns: row.wall_ns,
                        end_ns: row.wall_ns,
                        start_seq: row.seq,
                        batch: None,
                    },
                ));
            }
            "combine-batch" => {
                if let Some((_, tenure)) = open.iter_mut().find(|(t, _)| *t == row.thread) {
                    tenure.batch = row.value;
                }
            }
            "lock-release" => {
                if let Some(i) = open.iter().position(|(t, _)| t == &row.thread) {
                    let (_, mut tenure) = open.remove(i);
                    tenure.end_ns = row.wall_ns;
                    report.tenures.push(tenure);
                }
            }
            _ => {}
        }
    }
    report.tenures.sort_by_key(|t| t.start_ns);

    if report.tenures.is_empty() {
        return report;
    }
    let mut holds: Vec<u64> = report.tenures.iter().map(Tenure::hold_ns).collect();
    holds.sort_unstable();
    report.median_hold_ns = holds[holds.len() / 2];
    report.max_hold_ns = *holds.last().unwrap_or(&0);

    // Convoys: maximal saturated runs, reported when at least as many
    // hand-offs as there are processes chain up.
    let min_len = log.inferred_procs().max(2);
    let mut run_start = 0usize;
    let flush = |report: &mut ConvoyReport, start: usize, end: usize| {
        let length = end - start;
        if length >= min_len {
            let run = &report.tenures[start..end];
            let mut procs: Vec<u32> = run.iter().map(|t| t.proc_id).collect();
            procs.sort_unstable();
            procs.dedup();
            report.convoys.push(Convoy {
                length,
                duration_ns: run[length - 1].end_ns.saturating_sub(run[0].start_ns),
                start_seq: run[0].start_seq,
                procs: procs.len(),
            });
        }
    };
    for i in 1..report.tenures.len() {
        let gap = report.tenures[i]
            .start_ns
            .saturating_sub(report.tenures[i - 1].end_ns);
        if gap > gap_ns {
            flush(&mut report, run_start, i);
            run_start = i;
        }
    }
    let tenure_count = report.tenures.len();
    flush(&mut report, run_start, tenure_count);

    // Combiner stalls: tenure cost per served request far above the
    // median tenure means the batch did not amortise the hold.
    let threshold = report.median_hold_ns.saturating_mul(STALL_FACTOR).max(1);
    for tenure in &report.tenures {
        if let Some(batch) = tenure.batch {
            let ns_per_request = tenure.hold_ns() / batch.max(1);
            if ns_per_request > threshold {
                report.stalls.push(CombinerStall {
                    tenure: tenure.clone(),
                    ns_per_request,
                });
            }
        }
    }
    report
        .stalls
        .sort_by_key(|s| std::cmp::Reverse(s.ns_per_request));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestRow<'a> = (u64, u32, u64, &'a str, Option<u32>, Option<u64>);

    fn log_of(rows: &[TestRow<'_>]) -> EventLog {
        let mut text = String::from("# cso-trace-events v1\n# dropped 0\n");
        for (seq, thread, ns, name, proc_id, value) in rows {
            let p = proc_id.map_or("-".to_owned(), |p| p.to_string());
            let v = value.map_or("-".to_owned(), |v| v.to_string());
            text.push_str(&format!("{seq}\t{thread}\t{ns}\t{name}\t-\t{p}\t{v}\n"));
        }
        EventLog::parse(&text).expect("test log parses")
    }

    #[test]
    fn pairs_tenures_and_finds_a_convoy() {
        // Two procs hand the lock off back-to-back (gaps of 10 ns),
        // then the lock goes idle for 10 µs, then one more tenure.
        let log = log_of(&[
            (0, 0, 1_000, "lock-acquire", Some(0), None),
            (1, 0, 2_000, "lock-release", Some(0), None),
            (2, 1, 2_010, "lock-acquire", Some(1), None),
            (3, 1, 3_000, "lock-release", Some(1), None),
            (4, 0, 3_005, "lock-acquire", Some(0), None),
            (5, 0, 4_000, "lock-release", Some(0), None),
            (6, 1, 14_000, "lock-acquire", Some(1), None),
            (7, 1, 15_000, "lock-release", Some(1), None),
        ]);
        let report = analyze(&log, None);
        assert_eq!(report.tenures.len(), 4);
        assert_eq!(report.median_hold_ns, 1_000);
        assert_eq!(report.convoys.len(), 1);
        let convoy = &report.convoys[0];
        assert_eq!(convoy.length, 3);
        assert_eq!(convoy.procs, 2);
        assert_eq!(convoy.duration_ns, 3_000);
    }

    #[test]
    fn small_batch_long_tenure_is_a_stall() {
        // Three quick plain tenures set the median at 100 ns; one
        // combining tenure holds 4 µs for a batch of 2 → 2 µs per
        // request, far above 4× median.
        let log = log_of(&[
            (0, 0, 0, "lock-acquire", Some(0), None),
            (1, 0, 100, "lock-release", Some(0), None),
            (2, 0, 5_000, "lock-acquire", Some(0), None),
            (3, 0, 5_100, "lock-release", Some(0), None),
            (4, 0, 10_000, "lock-acquire", Some(0), None),
            (5, 0, 10_100, "lock-release", Some(0), None),
            (6, 1, 20_000, "lock-acquire", Some(1), None),
            (7, 1, 21_000, "combine-batch", None, Some(2)),
            (8, 1, 24_000, "lock-release", Some(1), None),
        ]);
        let report = analyze(&log, None);
        assert_eq!(report.stalls.len(), 1);
        assert_eq!(report.stalls[0].ns_per_request, 2_000);
        assert_eq!(report.stalls[0].tenure.batch, Some(2));

        // A large batch over the same tenure amortises fine.
        let log = log_of(&[
            (0, 0, 0, "lock-acquire", Some(0), None),
            (1, 0, 100, "lock-release", Some(0), None),
            (2, 0, 5_000, "lock-acquire", Some(0), None),
            (3, 0, 5_100, "lock-release", Some(0), None),
            (4, 0, 10_000, "lock-acquire", Some(0), None),
            (5, 0, 10_100, "lock-release", Some(0), None),
            (6, 1, 20_000, "lock-acquire", Some(1), None),
            (7, 1, 21_000, "combine-batch", None, Some(64)),
            (8, 1, 24_000, "lock-release", Some(1), None),
        ]);
        assert!(analyze(&log, None).stalls.is_empty());
    }

    #[test]
    fn unreleased_tenures_are_ignored() {
        let log = log_of(&[(0, 0, 0, "lock-acquire", Some(0), None)]);
        let report = analyze(&log, None);
        assert!(report.tenures.is_empty());
        assert!(report.convoys.is_empty());
    }
}
