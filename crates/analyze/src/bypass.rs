//! The §4.4 empirical bypass-bound check.
//!
//! The paper's starvation-freedom argument: once process `p` raises
//! its `FLAG` (line 04), at most `n − 1` other processes can acquire
//! the lock before `p` does — the round-robin `TURN` hand-off (lines
//! 10–11) reaches every flagged process within one sweep of the ring.
//!
//! This module replays a captured event log and measures the bound
//! *empirically*: for every `flag-raise(p)` → `lock-acquire(p)`
//! interval it counts the lock acquisitions by other processes inside
//! the interval. The maximum over all intervals is the observed
//! bypass count; any interval above the bound is a violation.
//!
//! Combining-path acquisitions (which go through the raw inner lock
//! without raising a flag) still *count as bypasses of waiting flagged
//! processes* — they genuinely delay them — so a mixed
//! combining/locked workload can legitimately exceed `n − 1`. The
//! bound is a CLI knob (`--bound`) for exactly that reason; the
//! default stays the paper's `n − 1`.

use crate::log::EventLog;

/// One interval that exceeded the bound.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The flagged process that was bypassed.
    pub proc_id: u32,
    /// Acquisitions by other processes inside its interval.
    pub bypasses: u64,
    /// Sequence number of the `flag-raise` opening the interval.
    pub flag_seq: u64,
    /// Sequence number of the closing `lock-acquire`.
    pub acquire_seq: u64,
}

/// The result of the bypass scan.
#[derive(Debug)]
pub struct BypassReport {
    /// Number of participating processes used for the default bound.
    pub procs: usize,
    /// The bound checked against (default `procs − 1`).
    pub bound: u64,
    /// Closed `flag-raise` → `lock-acquire` intervals examined.
    pub intervals: u64,
    /// Largest bypass count observed over all closed intervals.
    pub max_bypass: u64,
    /// Per-process maximum bypass count, ascending by process id.
    pub per_proc_max: Vec<(u32, u64)>,
    /// Intervals above the bound.
    pub violations: Vec<Violation>,
    /// Intervals still open when the capture ended (reported, never
    /// counted as violations — the acquire may simply be unrecorded).
    pub open_intervals: usize,
}

impl BypassReport {
    /// True when every closed interval respected the bound.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scans `log` (globally, in sequence order) for bypass-bound
/// violations. `procs` defaults to the highest process id seen plus
/// one; `bound` defaults to `procs − 1`.
#[must_use]
pub fn check(log: &EventLog, procs: Option<usize>, bound: Option<u64>) -> BypassReport {
    let procs = procs.unwrap_or_else(|| log.inferred_procs()).max(1);
    let bound = bound.unwrap_or_else(|| procs.saturating_sub(1) as u64);

    // proc -> (bypass count so far, flag seq) for open intervals.
    let mut open: Vec<Option<(u64, u64)>> = Vec::new();
    let mut per_proc_max: Vec<(u32, u64)> = Vec::new();
    let mut report = BypassReport {
        procs,
        bound,
        intervals: 0,
        max_bypass: 0,
        per_proc_max: Vec::new(),
        violations: Vec::new(),
        open_intervals: 0,
    };

    let slot = |v: &mut Vec<Option<(u64, u64)>>, p: u32| {
        let i = p as usize;
        if v.len() <= i {
            v.resize(i + 1, None);
        }
        i
    };

    for row in &log.rows {
        match row.name.as_str() {
            "flag-raise" => {
                if let Some(p) = row.proc_id {
                    let i = slot(&mut open, p);
                    // A flag-raise with an interval already open means
                    // the closing acquire was lost (ring wrap): start
                    // over rather than inventing bypasses.
                    open[i] = Some((0, row.seq));
                }
            }
            "lock-acquire" => {
                let Some(q) = row.proc_id else { continue };
                let qi = slot(&mut open, q);
                if let Some((bypasses, flag_seq)) = open[qi].take() {
                    report.intervals += 1;
                    report.max_bypass = report.max_bypass.max(bypasses);
                    match per_proc_max.iter_mut().find(|(p, _)| *p == q) {
                        Some((_, m)) => *m = (*m).max(bypasses),
                        None => per_proc_max.push((q, bypasses)),
                    }
                    if bypasses > bound {
                        report.violations.push(Violation {
                            proc_id: q,
                            bypasses,
                            flag_seq,
                            acquire_seq: row.seq,
                        });
                    }
                }
                // This acquisition bypasses every other flagged waiter.
                for (p, interval) in open.iter_mut().enumerate() {
                    if p != q as usize {
                        if let Some((bypasses, _)) = interval {
                            *bypasses += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }

    report.open_intervals = open.iter().flatten().count();
    per_proc_max.sort_unstable_by_key(|(p, _)| *p);
    report.per_proc_max = per_proc_max;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(rows: &[(u64, &str, u32)]) -> EventLog {
        let mut text = String::from("# cso-trace-events v1\n# dropped 0\n");
        for (seq, name, proc_id) in rows {
            text.push_str(&format!(
                "{seq}\t{proc_id}\t{seq}\t{name}\t-\t{proc_id}\t-\n"
            ));
        }
        EventLog::parse(&text).expect("test log parses")
    }

    #[test]
    fn round_robin_respects_n_minus_one() {
        // Three procs all flag, then acquire in turn order: the last
        // is bypassed exactly twice = n − 1.
        let log = log_of(&[
            (0, "flag-raise", 0),
            (1, "flag-raise", 1),
            (2, "flag-raise", 2),
            (3, "lock-acquire", 0),
            (4, "lock-acquire", 1),
            (5, "lock-acquire", 2),
        ]);
        let report = check(&log, None, None);
        assert_eq!(report.procs, 3);
        assert_eq!(report.bound, 2);
        assert_eq!(report.intervals, 3);
        assert_eq!(report.max_bypass, 2);
        assert!(report.holds());
        assert_eq!(report.per_proc_max, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn a_starved_proc_is_a_violation() {
        // Proc 1 flags once; proc 0 acquires three times before it —
        // 3 > n − 1 = 1.
        let log = log_of(&[
            (0, "flag-raise", 1),
            (1, "lock-acquire", 0),
            (2, "lock-acquire", 0),
            (3, "lock-acquire", 0),
            (4, "lock-acquire", 1),
        ]);
        let report = check(&log, None, None);
        assert_eq!(report.bound, 1);
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!((v.proc_id, v.bypasses), (1, 3));
        assert_eq!((v.flag_seq, v.acquire_seq), (0, 4));
        assert!(!report.holds());

        // The same trace passes with a caller-supplied looser bound.
        assert!(check(&log, None, Some(3)).holds());
    }

    #[test]
    fn open_intervals_are_reported_not_violations() {
        let log = log_of(&[
            (0, "flag-raise", 0),
            (1, "lock-acquire", 1),
            (2, "lock-acquire", 1),
        ]);
        let report = check(&log, Some(2), None);
        assert_eq!(report.open_intervals, 1);
        assert_eq!(report.intervals, 0);
        assert!(report.holds());
    }

    #[test]
    fn reflag_after_lost_acquire_resets_the_interval() {
        // flag(0) ... flag(0) again: the first interval's acquire was
        // lost to the ring; only the second interval counts.
        let log = log_of(&[
            (0, "flag-raise", 0),
            (1, "lock-acquire", 1),
            (2, "lock-acquire", 1),
            (3, "flag-raise", 0),
            (4, "lock-acquire", 0),
        ]);
        let report = check(&log, Some(2), None);
        assert_eq!(report.intervals, 1);
        assert_eq!(report.max_bypass, 0);
        assert!(report.holds());
    }
}
