//! Figure 3: the contention-sensitive starvation-free stack.

use std::time::Duration;

use cso_core::{
    Abortable, Aborted, AdaptiveGate, BatchStats, CombiningStats, ContentionSensitive, CsConfig,
    CsError, FaultStats, PathStats, ProgressCondition, RecoveryStats,
};
use cso_locks::{RawLock, TasLock};

use crate::abortable::{AbortStats, AbortableStack};
use crate::outcome::{PopOutcome, PushOutcome, StackOp};
use crate::value::StackValue;

/// The paper's **contention-sensitive, starvation-free stack**
/// (Figure 3, the paper's headline construction).
///
/// `strong_push`/`strong_pop` first read the `CONTENTION` register
/// and, if clear, run one weak operation with no lock: in a
/// contention-free context an operation completes in **six shared
/// memory accesses and lock-free** (Theorem 1). Under contention they
/// fall back to a critical section protected by a deadlock-free lock
/// `L` boosted to starvation freedom by the `FLAG`/`TURN` round-robin
/// of §4.4 — so *every* invocation terminates with a non-⊥ value.
///
/// Each participating thread passes its process identity
/// (`0..n`, typically from [`cso_memory::registry::ProcRegistry`]).
///
/// ```
/// use cso_stack::{CsStack, PushOutcome, PopOutcome};
/// use cso_memory::counting::CountScope;
///
/// let stack: CsStack<u32> = CsStack::new(64, 2);
/// let scope = CountScope::start();
/// assert_eq!(stack.push(0, 42), PushOutcome::Pushed);
/// assert_eq!(scope.take().total(), 6); // Theorem 1
/// assert_eq!(stack.pop(1), PopOutcome::Popped(42));
/// ```
#[derive(Debug)]
pub struct CsStack<V: StackValue, L: RawLock = TasLock> {
    inner: ContentionSensitive<AbortableStack<V>, L>,
}

impl<V: StackValue> CsStack<V, TasLock> {
    /// Creates an empty stack of capacity `capacity` for `n`
    /// processes, with the default TAS lock for the slow path (any
    /// deadlock-free lock works; the paper assumes nothing more).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1`, or if
    /// `n == 0`.
    #[must_use]
    pub fn new(capacity: usize, n: usize) -> CsStack<V, TasLock> {
        CsStack::with_lock(capacity, TasLock::new(), n)
    }
}

impl<V: StackValue, L: RawLock> CsStack<V, L> {
    /// Creates an empty stack using `lock` (deadlock-free suffices)
    /// for the slow path.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1`, or if
    /// `n == 0`.
    #[must_use]
    pub fn with_lock(capacity: usize, lock: L, n: usize) -> CsStack<V, L> {
        CsStack::with_config(capacity, lock, n, CsConfig::PAPER)
    }

    /// Creates a stack with an explicit mechanism selection (the E8
    /// ablations; [`CsConfig::PAPER`] is Figure 3 verbatim).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1`, or if
    /// `n == 0`.
    #[must_use]
    pub fn with_config(capacity: usize, lock: L, n: usize, config: CsConfig) -> CsStack<V, L> {
        CsStack {
            inner: ContentionSensitive::with_config(AbortableStack::new(capacity), lock, n, config),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::StarvationFree;

    /// `strong_push(v)` on behalf of process `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn push(&self, proc: usize, value: V) -> PushOutcome {
        self.inner.apply(proc, &StackOp::Push(value)).expect_push()
    }

    /// `strong_pop()` on behalf of process `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn pop(&self, proc: usize) -> PopOutcome<V> {
        self.inner.apply(proc, &StackOp::Pop).expect_pop()
    }

    /// Deadline-bounded [`CsStack::push`]: gives up with no effect if
    /// the slow-path lock stays unavailable for `timeout` (e.g. wedged
    /// by a crashed holder — the §5 failure mode).
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first, or
    /// [`CsError::Unrecoverable`] if the crash-recovery succession
    /// budget is exhausted (see [`cso_core::RecoveryPolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn try_push_for(
        &self,
        proc: usize,
        value: V,
        timeout: Duration,
    ) -> Result<PushOutcome, CsError> {
        self.inner
            .try_apply_for(proc, &StackOp::Push(value), timeout)
            .map(|resp| resp.expect_push())
    }

    /// Deadline-bounded [`CsStack::pop`]; see [`CsStack::try_push_for`].
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first, or
    /// [`CsError::Unrecoverable`] if the crash-recovery succession
    /// budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn try_pop_for(&self, proc: usize, timeout: Duration) -> Result<PopOutcome<V>, CsError> {
        self.inner
            .try_apply_for(proc, &StackOp::Pop, timeout)
            .map(|resp| resp.expect_pop())
    }

    /// The capacity fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.inner().capacity()
    }

    /// Racy size snapshot (one shared access).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.inner().len()
    }

    /// Racy emptiness snapshot (one shared access).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.inner().is_empty()
    }

    /// The number of processes this stack serves.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// How many operations completed on each path — fast, eliminated
    /// (the escalation ladder's rendezvous rung), or under the lock
    /// (experiments E4 and E13).
    pub fn path_stats(&self) -> PathStats {
        self.inner.stats()
    }

    /// Push/pop *pairs* completed by elimination rendezvous (zero
    /// unless built with [`CsConfig::with_elimination`]). Each pair
    /// accounts for **two** entries in [`PathStats::eliminated`] once
    /// both sides return.
    #[must_use]
    pub fn eliminated_pairs(&self) -> u64 {
        self.inner.inner().eliminated_pairs()
    }

    /// Resets the path statistics.
    pub fn reset_path_stats(&self) {
        self.inner.reset_stats()
    }

    /// Attempt/abort counters of the underlying weak operations.
    pub fn abort_stats(&self) -> AbortStats {
        self.inner.inner().abort_stats()
    }

    /// Survived slow-path panics and deadline expiries (see
    /// [`ContentionSensitive::fault_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    /// Combiner-tenure totals of the flat-combining slow path
    /// (all zero unless built with [`CsConfig::with_combining`]).
    pub fn combining_stats(&self) -> CombiningStats {
        self.inner.combining_stats()
    }

    /// Batches seen by the underlying abortable stack through its
    /// [`Abortable::batch_begin`] / [`Abortable::batch_end`] hooks.
    pub fn batch_stats(&self) -> BatchStats {
        self.inner.inner().batch_stats()
    }

    /// The adaptive contention gate (consulted only when built with
    /// [`CsConfig::with_adaptive_gate`]).
    pub fn gate(&self) -> &AdaptiveGate {
        self.inner.gate()
    }

    /// Whether the slow path is permanently closed because the
    /// crash-recovery succession budget ran out (see
    /// [`ContentionSensitive::is_poisoned`]).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Crash-recovery counters, or `None` unless built with
    /// [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::recovery_stats`]).
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.inner.recovery_stats()
    }

    /// The liveness registry driving crash recovery, or `None` unless
    /// built with [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::liveness`]).
    #[must_use]
    pub fn liveness(&self) -> Option<&std::sync::Arc<cso_core::Liveness>> {
        self.inner.liveness()
    }

    /// Registers this stack's live metrics under `prefix` (see
    /// [`ContentionSensitive::attach_metrics`]; first call wins, and
    /// unattached stacks keep Theorem 1's access budget untouched).
    pub fn attach_metrics(&self, registry: &cso_metrics::Registry, prefix: &str) {
        self.inner.attach_metrics(registry, prefix);
    }
}

/// A `CsStack` is itself abortable in the degenerate sense that it
/// never aborts; exposing the trait lets generic harnesses treat every
/// stack uniformly. `proc` is carried in the op via
/// [`CsStackOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsStackOp<V> {
    /// The invoking process identity.
    pub proc: usize,
    /// The stack operation.
    pub op: StackOp<V>,
}

impl<V: StackValue, L: RawLock> Abortable for CsStack<V, L> {
    type Op = CsStackOp<V>;
    type Response = crate::outcome::StackResponse<V>;

    fn try_apply(&self, op: &CsStackOp<V>) -> Result<Self::Response, Aborted> {
        Ok(self.inner.apply(op.proc, &op.op))
    }

    fn batch_begin(&self, pending: usize) {
        self.inner.inner().batch_begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        self.inner.inner().batch_end(applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::counting::CountScope;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack: CsStack<u32> = CsStack::new(8, 2);
        for v in 1..=5 {
            assert_eq!(stack.push(0, v), PushOutcome::Pushed);
        }
        for v in (1..=5).rev() {
            assert_eq!(stack.pop(1), PopOutcome::Popped(v));
        }
        assert_eq!(stack.pop(0), PopOutcome::Empty);
    }

    /// Theorem 1's headline number: a contention-free strong operation
    /// performs exactly six shared-memory accesses and takes no lock.
    #[test]
    fn solo_strong_push_is_exactly_six_accesses() {
        let stack: CsStack<u32> = CsStack::new(64, 4);
        let scope = CountScope::start();
        stack.push(0, 1);
        let c = scope.take();
        assert_eq!(c.total(), 6, "Theorem 1: got {c}");
        assert_eq!(stack.path_stats().locked, 0, "no lock in a solo run");
    }

    #[test]
    fn solo_strong_pop_is_exactly_six_accesses() {
        let stack: CsStack<u32> = CsStack::new(64, 4);
        stack.push(0, 1);
        let scope = CountScope::start();
        assert_eq!(stack.pop(0), PopOutcome::Popped(1));
        assert_eq!(scope.take().total(), 6);
    }

    #[test]
    fn six_access_bound_is_independent_of_capacity_and_n() {
        for (capacity, n) in [(2, 1), (16, 2), (4096, 32), (60_000, 64)] {
            let stack: CsStack<u32> = CsStack::new(capacity, n);
            stack.push(0, 7);
            let scope = CountScope::start();
            stack.push(n - 1, 9);
            assert_eq!(scope.take().total(), 6, "capacity={capacity}, n={n}");
            let scope = CountScope::start();
            stack.pop(0);
            assert_eq!(scope.take().total(), 6, "capacity={capacity}, n={n}");
        }
    }

    #[test]
    fn full_and_empty_solo() {
        let stack: CsStack<u32> = CsStack::new(1, 2);
        assert_eq!(stack.pop(0), PopOutcome::Empty);
        assert_eq!(stack.push(0, 1), PushOutcome::Pushed);
        assert_eq!(stack.push(0, 2), PushOutcome::Full);
        assert_eq!(stack.pop(1), PopOutcome::Popped(1));
    }

    #[test]
    fn concurrent_strong_ops_conserve_values_and_never_bot() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 1_500;
        let stack: Arc<CsStack<u32>> = Arc::new(CsStack::new(
            (THREADS * PER_THREAD) as usize,
            THREADS as usize,
        ));

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            stack.push(t as usize, t * PER_THREAD + i),
                            PushOutcome::Pushed
                        );
                        if let PopOutcome::Popped(v) = stack.pop(t as usize) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let PopOutcome::Popped(v) = stack.pop(0) {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
        // Every operation completed on one of the two paths.
        assert_eq!(
            stack.path_stats().total(),
            u64::from(THREADS * PER_THREAD) * 2 + 1
        );
    }

    #[test]
    fn ablation_configs_remain_correct() {
        for config in [CsConfig::PAPER, CsConfig::NO_FLAG, CsConfig::UNFAIR] {
            let stack: CsStack<u32> = CsStack::with_config(16, TasLock::new(), 2, config);
            assert_eq!(stack.push(0, 1), PushOutcome::Pushed);
            assert_eq!(stack.pop(1), PopOutcome::Popped(1));
            assert_eq!(stack.pop(1), PopOutcome::Empty);
        }
    }

    /// Forced-slow combining: every completion is either a combiner's
    /// own op or a served record, and the batch hooks reach the
    /// underlying abortable stack.
    #[test]
    fn combining_slow_path_conserves_and_reports_batches() {
        const THREADS: u32 = 3;
        const PER_THREAD: u32 = 1_000;
        let config = CsConfig::PAPER.without_fast_path().with_combining();
        let stack: Arc<CsStack<u32>> = Arc::new(CsStack::with_config(
            (THREADS * PER_THREAD) as usize,
            TasLock::new(),
            THREADS as usize,
            config,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            stack.push(t as usize, t * PER_THREAD + i),
                            PushOutcome::Pushed
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = HashSet::new();
        while let PopOutcome::Popped(v) = stack.pop(0) {
            assert!(seen.insert(v), "duplicate value {v}");
        }
        assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);

        let paths = stack.path_stats();
        let combining = stack.combining_stats();
        assert_eq!(paths.fast, 0, "fast path disabled");
        // Pops above run after the threads joined, so the totals still
        // satisfy the tenure accounting: every locked completion is a
        // combiner's own op (one per batch) or a served record.
        assert_eq!(combining.batches + combining.combined, paths.locked);
        // The batch hooks reached the abortable stack itself.
        assert_eq!(stack.batch_stats().applied, combining.combined);
    }

    #[test]
    fn ladder_config_preserves_theorem_one_budget() {
        // Arming both middle rungs must not cost a solo operation
        // anything: the fast path succeeds and the ladder is never
        // entered, so Theorem 1's six accesses stay exact.
        let stack: CsStack<u32> = CsStack::with_config(64, TasLock::new(), 4, CsConfig::LADDER);
        stack.push(0, 1);
        let scope = CountScope::start();
        stack.push(0, 2);
        assert_eq!(scope.take().total(), 6, "Theorem 1 with the ladder armed");
        let scope = CountScope::start();
        assert_eq!(stack.pop(0), PopOutcome::Popped(2));
        assert_eq!(scope.take().total(), 6);
        assert_eq!(stack.path_stats().locked, 0);
        assert_eq!(stack.eliminated_pairs(), 0, "solo ops never rendezvous");
    }

    #[test]
    fn ladder_config_conserves_values_under_contention() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 1_500;
        let stack: Arc<CsStack<u32>> = Arc::new(CsStack::with_config(
            (THREADS * PER_THREAD) as usize,
            TasLock::new(),
            THREADS as usize,
            CsConfig::LADDER,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            stack.push(t as usize, t * PER_THREAD + i),
                            PushOutcome::Pushed
                        );
                        if let PopOutcome::Popped(v) = stack.pop(t as usize) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let PopOutcome::Popped(v) = stack.pop(0) {
            all.push(v);
        }
        // Conservation: eliminated pairs hand the value straight from
        // pusher to popper, so nothing is lost or duplicated.
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
        // Every completion took exactly one rung of the ladder.
        let paths = stack.path_stats();
        assert_eq!(paths.total(), u64::from(THREADS * PER_THREAD) * 2 + 1);
        // Both sides of each rendezvous count in `eliminated`.
        assert_eq!(paths.eliminated, stack.eliminated_pairs() * 2);
    }

    #[test]
    fn custom_lock_variant() {
        use cso_locks::TicketLock;
        let stack: CsStack<u32, TicketLock> = CsStack::with_lock(8, TicketLock::new(), 3);
        assert_eq!(stack.push(2, 5), PushOutcome::Pushed);
        assert_eq!(stack.pop(0), PopOutcome::Popped(5));
        assert_eq!(stack.n(), 3);
        assert_eq!(stack.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_proc() {
        let stack: CsStack<u32> = CsStack::new(8, 2);
        let _ = stack.push(5, 1);
    }
}
