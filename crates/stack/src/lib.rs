//! The concurrent stacks of Mostefaoui & Raynal (2011).
//!
//! The paper constructs one object — a bounded shared stack — three
//! times, each construction strengthening the previous one's liveness:
//!
//! | Type | Paper | Progress | Lock use |
//! |---|---|---|---|
//! | [`AbortableStack`] | Figure 1 | abortable (≥ obstruction-free) | none |
//! | [`NonBlockingStack`] | Figure 2 | non-blocking | none |
//! | [`CsStack`] | Figure 3 | starvation-free | only under contention |
//!
//! plus the baselines the benchmarks compare against:
//! [`TreiberStack`] (classic lock-free linked stack),
//! [`LockStack`] (everything under a single lock — the "traditional"
//! approach of §1.1) and [`EliminationStack`] (Treiber + elimination
//! backoff; an extension, see `DESIGN.md`).
//!
//! Values stored in the register-based stacks are 32-bit
//! ([`StackValue`]); [`IndirectStack`] lifts any `Send` payload over a
//! slab of handles.
//!
//! # Quickstart
//!
//! ```
//! use cso_stack::{CsStack, PushOutcome, PopOutcome};
//!
//! // A stack with capacity 1024 shared by up to 4 processes.
//! let stack: CsStack<u32> = CsStack::new(1024, 4);
//!
//! // Process 0 pushes, process 3 pops. Contention-free operations
//! // take the lock-free fast path (6 shared-memory accesses).
//! assert_eq!(stack.push(0, 7), PushOutcome::Pushed);
//! assert_eq!(stack.pop(3), PopOutcome::Popped(7));
//! assert_eq!(stack.pop(3), PopOutcome::Empty);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod abortable;
mod contention_sensitive;
mod elimination;
mod indirect;
mod lock_stack;
mod nonblocking;
mod outcome;
mod seqspec;
mod treiber;
mod value;

pub use abortable::{AbortStats, AbortableStack};
pub use contention_sensitive::CsStack;
pub use elimination::EliminationStack;
pub use indirect::{HandleStack, IndirectStack};
pub use lock_stack::LockStack;
pub use nonblocking::NonBlockingStack;
pub use outcome::{PopOutcome, PushOutcome, StackOp, StackResponse};
pub use seqspec::SeqStack;
pub use treiber::TreiberStack;
pub use value::StackValue;

/// Every probe event this crate emits, paired with the causal site
/// class a what-if profiling run delays it under (`"-"` for events
/// never delayed). The class names mirror
/// `cso_trace::probe::SiteClass`; `cso-profile` carries a test keeping
/// this table and `Event::site_class` in sync.
pub const PROBE_SITES: &[(&str, &str)] = &[
    // Causal annotation (which thread's inverse operation paired with
    // ours in the elimination rendezvous); never delayed.
    ("helped-by-partner", "-"),
];
