//! Operation descriptors and outcomes shared by all stack flavours.

/// The definitive (non-⊥) result of a push.
///
/// The paper's `weak_push` "returns `done` if v has been pushed on the
/// stack and `full` if the stack is full" (§3). Both are *answers*,
/// not aborts: a `Full` outcome linearizes like any other operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PushOutcome {
    /// The value is now on the stack (`done`).
    Pushed,
    /// The stack was at capacity; nothing was pushed (`full`).
    Full,
}

impl PushOutcome {
    /// True when the value landed on the stack.
    #[must_use]
    pub fn is_pushed(self) -> bool {
        matches!(self, PushOutcome::Pushed)
    }
}

/// The definitive (non-⊥) result of a pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopOutcome<V> {
    /// The value that was at the top of the stack.
    Popped(V),
    /// The stack was empty (`empty`).
    Empty,
}

impl<V> PopOutcome<V> {
    /// Converts to an `Option`, discarding the `Empty`/`Popped`
    /// vocabulary.
    pub fn into_option(self) -> Option<V> {
        match self {
            PopOutcome::Popped(v) => Some(v),
            PopOutcome::Empty => None,
        }
    }

    /// True when a value was returned.
    #[must_use]
    pub fn is_popped(&self) -> bool {
        matches!(self, PopOutcome::Popped(_))
    }
}

impl<V> From<PopOutcome<V>> for Option<V> {
    fn from(outcome: PopOutcome<V>) -> Option<V> {
        outcome.into_option()
    }
}

/// A stack operation descriptor, for plugging stacks into the generic
/// transformations of `cso-core` (the paper's
/// `weak_push_or_pop(par)` where "`par = v` if the operation is push
/// and ⊥ if the operation is pop", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackOp<V> {
    /// Push `v`.
    Push(V),
    /// Pop the top value.
    Pop,
}

/// The response to a [`StackOp`], preserving which operation it
/// answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackResponse<V> {
    /// Response to [`StackOp::Push`].
    Push(PushOutcome),
    /// Response to [`StackOp::Pop`].
    Pop(PopOutcome<V>),
}

impl<V> StackResponse<V> {
    /// Extracts a push outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is a pop response.
    #[must_use]
    pub fn expect_push(self) -> PushOutcome {
        match self {
            StackResponse::Push(outcome) => outcome,
            StackResponse::Pop(_) => panic!("expected a push response, got a pop response"),
        }
    }

    /// Extracts a pop outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is a push response.
    #[must_use]
    pub fn expect_pop(self) -> PopOutcome<V> {
        match self {
            StackResponse::Pop(outcome) => outcome,
            StackResponse::Push(_) => panic!("expected a pop response, got a push response"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_outcome_option_conversion() {
        assert_eq!(PopOutcome::Popped(3).into_option(), Some(3));
        assert_eq!(PopOutcome::<u32>::Empty.into_option(), None);
        let opt: Option<u32> = PopOutcome::Popped(9).into();
        assert_eq!(opt, Some(9));
    }

    #[test]
    fn predicates() {
        assert!(PushOutcome::Pushed.is_pushed());
        assert!(!PushOutcome::Full.is_pushed());
        assert!(PopOutcome::Popped(1).is_popped());
        assert!(!PopOutcome::<u32>::Empty.is_popped());
    }

    #[test]
    fn response_extractors() {
        assert_eq!(
            StackResponse::<u32>::Push(PushOutcome::Full).expect_push(),
            PushOutcome::Full
        );
        assert_eq!(
            StackResponse::<u32>::Pop(PopOutcome::Empty).expect_pop(),
            PopOutcome::Empty
        );
    }

    #[test]
    #[should_panic(expected = "expected a push response")]
    fn mismatched_extractor_panics() {
        let _ = StackResponse::<u32>::Pop(PopOutcome::Empty).expect_push();
    }
}
