//! Values storable directly in the paper's registers.

/// A value that fits the 32-bit `value` field of the packed `TOP` /
/// `STACK[x]` registers — an alias for [`cso_memory::bits::Bits32`],
/// which carries the implementations for the primitive types and the
/// lossless round-trip law.
///
/// ```
/// use cso_stack::StackValue;
/// assert_eq!(<i32 as StackValue>::from_bits((-5i32).to_bits()), -5);
/// ```
pub use cso_memory::bits::Bits32 as StackValue;
