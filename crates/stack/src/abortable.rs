//! Figure 1: the abortable array-based stack.
//!
//! A faithful transcription of the paper's Figure 1 (itself a
//! simplified version of Shafiei's non-blocking array stack, paper
//! ref \[22\]). Line numbers in the code comments refer to the figure.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use cso_core::{Abortable, Aborted, BatchCounters, BatchStats};
use cso_memory::combining::{CachePadded, NO_HELPER};
use cso_memory::exchange::Exchanger;
use cso_memory::fail_point;
use cso_memory::packed::{SlotWord, TopWord};
use cso_memory::reg::Reg64;
use cso_trace::{probe, probe_if, Event};

use crate::outcome::{PopOutcome, PushOutcome, StackOp, StackResponse};
use crate::value::StackValue;

/// Abort/attempt counters for experiment E2 (kept in plain atomics —
/// they are diagnostics, not part of the algorithm's shared-memory
/// footprint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortStats {
    /// `weak_push` invocations.
    pub push_attempts: u64,
    /// `weak_push` invocations that returned ⊥.
    pub push_aborts: u64,
    /// `weak_pop` invocations.
    pub pop_attempts: u64,
    /// `weak_pop` invocations that returned ⊥.
    pub pop_aborts: u64,
}

impl AbortStats {
    /// Fraction of all attempts that aborted (0.0 when idle).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.push_attempts + self.pop_attempts;
        if attempts == 0 {
            0.0
        } else {
            (self.push_aborts + self.pop_aborts) as f64 / attempts as f64
        }
    }
}

/// The paper's **abortable stack** (Figure 1).
///
/// Two registers implement the stack of capacity `k`:
///
/// * `TOP` — a `⟨index, value, seqnb⟩` triple naming the top entry,
///   its value, and the sequence number of the *pending* write of
///   `STACK[index]`;
/// * `STACK[0..k]` — `⟨val, sn⟩` pairs; `STACK\[0\]` is a dummy entry
///   for the empty stack.
///
/// The implementation is *lazy*: a successful operation installs its
/// result in `TOP` only and leaves the matching `STACK[index]` write
/// to the **next** operation (the `help` procedure, lines 15–16). The
/// per-slot sequence numbers make helping idempotent and defeat the
/// ABA problem (§2.2).
///
/// Both operations are **abortable**: executed solo they always return
/// a definitive outcome ([`PushOutcome`]/[`PopOutcome`]), and under
/// contention they may return ⊥ ([`Aborted`]) *with no effect* —
/// exactly one `TOP.C&S` decides each state change.
///
/// A solo `weak_push`/`weak_pop` performs exactly **five** shared
/// memory accesses (read `TOP`; the two accesses of `help`; read the
/// neighbour slot; `C&S` on `TOP`) — the building block of Theorem 1's
/// six-access bound.
///
/// ```
/// use cso_stack::{AbortableStack, PushOutcome, PopOutcome};
///
/// let stack: AbortableStack<u32> = AbortableStack::new(8);
/// assert_eq!(stack.weak_push(5), Ok(PushOutcome::Pushed)); // solo: never ⊥
/// assert_eq!(stack.weak_pop(), Ok(PopOutcome::Popped(5)));
/// assert_eq!(stack.weak_pop(), Ok(PopOutcome::Empty));
/// ```
#[derive(Debug)]
pub struct AbortableStack<V> {
    /// The `TOP` register — every operation's decisive `C&S` lands
    /// here, so it gets its own cache line: without the padding, the
    /// adjacent `STACK[..]` slots (helped lazily by *other*
    /// operations) would false-share with the hottest word in the
    /// structure.
    top: CachePadded<Reg64>,
    /// `STACK[0..k]`: entry 0 is the dummy; capacity is `len - 1`.
    slots: Box<[Reg64]>,
    /// Rendezvous slots for the escalation ladder's elimination rung
    /// ([`Abortable::try_eliminate`]): inverse push/pop pairs exchange
    /// values here without touching `TOP` at all.
    exchanger: Exchanger<u32>,
    // Diagnostics (not shared-memory accesses).
    push_attempts: AtomicU64,
    push_aborts: AtomicU64,
    pop_attempts: AtomicU64,
    pop_aborts: AtomicU64,
    batch: BatchCounters,
    _values: PhantomData<V>,
}

/// The dummy value stored below the stack bottom (never observed by
/// users: popping at index 0 returns `Empty` before reading it).
const BOTTOM: u32 = 0;

/// Rendezvous slots in the elimination exchanger. Small and fixed: one
/// pairing per slot at a time is plenty below ~16 threads, and the
/// ladder falls through to the lock anyway when slots are contended.
const ELIM_SLOTS: usize = 4;

impl<V: StackValue> AbortableStack<V> {
    /// Creates an empty stack of capacity `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1` (the index
    /// field of the packed `TOP` register is 16 bits).
    #[must_use]
    pub fn new(capacity: usize) -> AbortableStack<V> {
        assert!(capacity > 0, "stack capacity must be positive");
        assert!(
            capacity < usize::from(u16::MAX),
            "stack capacity must fit the 16-bit index field"
        );
        // TOP ← ⟨0, ⊥, 0⟩; STACK[0] ← ⟨⊥, −1⟩ (so the very first help,
        // with seqnb = 0, finds old = ⟨⊥, −1⟩ and idempotently
        // rewrites the dummy); STACK[1..k] ← ⟨⊥, 0⟩.
        let top = Reg64::new(
            TopWord {
                index: 0,
                seq: 0,
                value: BOTTOM,
            }
            .pack(),
        );
        let slots = (0..=capacity)
            .map(|x| {
                let seq = if x == 0 { u16::MAX } else { 0 };
                Reg64::new(SlotWord { value: BOTTOM, seq }.pack())
            })
            .collect();
        AbortableStack {
            top: CachePadded::new(top),
            slots,
            exchanger: Exchanger::new(ELIM_SLOTS),
            push_attempts: AtomicU64::new(0),
            push_aborts: AtomicU64::new(0),
            pop_attempts: AtomicU64::new(0),
            pop_aborts: AtomicU64::new(0),
            batch: BatchCounters::new(),
            _values: PhantomData,
        }
    }

    /// The capacity `k` fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len() - 1
    }

    /// A racy snapshot of the current size (the `index` field of
    /// `TOP`). Exact only in a quiescent state.
    ///
    /// Note: this performs one (counted) shared-memory access.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(TopWord::unpack(self.top.read()).index)
    }

    /// Racy emptiness snapshot; see [`AbortableStack::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `help(index, value, seqnb)` — lines 15–16: finish the pending
    /// lazy write of the previous successful operation.
    ///
    /// The previous operation required `⟨value, seqnb⟩` to be written
    /// into `STACK[index]`; do it with a `C&S` so it happens at most
    /// once (if some other helper already did it, the slot's sequence
    /// number has moved past `seqnb − 1` and our `C&S` fails,
    /// harmlessly).
    fn help(&self, top: TopWord) {
        let slot = &self.slots[usize::from(top.index)];
        // Line 15: stacktop ← STACK[index].val.
        let current = SlotWord::unpack(slot.read());
        // Line 16: STACK[index].C&S(⟨stacktop, seqnb − 1⟩, ⟨value, seqnb⟩).
        let old = SlotWord {
            value: current.value,
            seq: top.seq.wrapping_sub(1),
        };
        let new = SlotWord {
            value: top.value,
            seq: top.seq,
        };
        probe_if!(
            slot.cas(old.pack(), new.pack()),
            Event::HelpingWrite("stack::slot")
        );
    }

    /// `weak_push(v)` — lines 01–07.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥) if a concurrent operation changed `TOP`
    /// between lines 01 and 06; the stack is unchanged in that case.
    /// Never aborts in a contention-free execution.
    pub fn weak_push(&self, value: V) -> Result<PushOutcome, Aborted> {
        self.push_attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("stack::push", {
            self.push_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        // Line 01: (index, value, seqnb) ← TOP.
        let observed = TopWord::unpack(self.top.read());
        // Line 02: help the previous operation's pending write.
        self.help(observed);
        // Line 03: full?
        if usize::from(observed.index) == self.capacity() {
            return Ok(PushOutcome::Full);
        }
        // Line 04: sn_of_next ← STACK[index + 1].sn.
        let next_slot = SlotWord::unpack(self.slots[usize::from(observed.index) + 1].read());
        // Line 05: newtop ← ⟨index + 1, v, sn_of_next + 1⟩.
        let newtop = TopWord {
            index: observed.index + 1,
            value: value.to_bits(),
            seq: next_slot.seq.wrapping_add(1),
        };
        // Lines 06–07: register the push in TOP, or abort. The
        // validated CAS peeks (uncounted) first: a doomed C&S on a
        // diverged TOP costs an exclusive cache-line acquisition for
        // nothing, while solo the validation always passes and the
        // counted cost is identical (pinned by the five-access tests).
        if self.top.cas_validated(observed.pack(), newtop.pack()) {
            Ok(PushOutcome::Pushed)
        } else {
            self.push_aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail("stack::top"));
            Err(Aborted)
        }
    }

    /// `weak_pop()` — lines 08–14.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥) if a concurrent operation changed `TOP`
    /// between lines 08 and 13; the stack is unchanged in that case.
    /// Never aborts in a contention-free execution.
    pub fn weak_pop(&self) -> Result<PopOutcome<V>, Aborted> {
        self.pop_attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("stack::pop", {
            self.pop_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        // Line 08: (index, value, seqnb) ← TOP.
        let observed = TopWord::unpack(self.top.read());
        // Line 09: help the previous operation's pending write.
        self.help(observed);
        // Line 10: empty?
        if observed.index == 0 {
            return Ok(PopOutcome::Empty);
        }
        // Line 11: belowtop ← STACK[index − 1]. (That slot is final:
        // the only possibly-stale slot is STACK[index], which help
        // just fixed.)
        let below = SlotWord::unpack(self.slots[usize::from(observed.index) - 1].read());
        // Line 12: newtop ← ⟨index − 1, belowtop.val, belowtop.sn + 1⟩.
        let newtop = TopWord {
            index: observed.index - 1,
            value: below.value,
            seq: below.seq.wrapping_add(1),
        };
        // Lines 13–14: register the pop in TOP, or abort (validated
        // C&S — see `weak_push`).
        if self.top.cas_validated(observed.pack(), newtop.pack()) {
            Ok(PopOutcome::Popped(V::from_bits(observed.value)))
        } else {
            self.pop_aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail("stack::top"));
            Err(Aborted)
        }
    }

    /// Snapshot of the attempt/abort counters (experiment E2).
    pub fn abort_stats(&self) -> AbortStats {
        AbortStats {
            push_attempts: self.push_attempts.load(Ordering::Relaxed),
            push_aborts: self.push_aborts.load(Ordering::Relaxed),
            pop_attempts: self.pop_attempts.load(Ordering::Relaxed),
            pop_aborts: self.pop_aborts.load(Ordering::Relaxed),
        }
    }

    /// Resets the attempt/abort counters.
    pub fn reset_abort_stats(&self) {
        self.push_attempts.store(0, Ordering::Relaxed);
        self.push_aborts.store(0, Ordering::Relaxed);
        self.pop_attempts.store(0, Ordering::Relaxed);
        self.pop_aborts.store(0, Ordering::Relaxed);
    }

    /// Combining-batch totals observed through the
    /// [`Abortable::batch_begin`] / [`Abortable::batch_end`] hooks
    /// (all zero unless a combining transformation drives this stack).
    #[must_use]
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.snapshot()
    }

    /// Push/pop *pairs* completed by elimination rendezvous through
    /// [`Abortable::try_eliminate`] (zero unless an escalation ladder
    /// with `elimination` drives this stack).
    #[must_use]
    pub fn eliminated_pairs(&self) -> u64 {
        self.exchanger.exchanges()
    }
}

/// Plugs the stack into the generic transformations of `cso-core`
/// (Figure 2 / Figure 3 are written over `weak_push_or_pop(par)`).
impl<V: StackValue> Abortable for AbortableStack<V> {
    type Op = StackOp<V>;
    type Response = StackResponse<V>;

    fn try_apply(&self, op: &StackOp<V>) -> Result<StackResponse<V>, Aborted> {
        match op {
            StackOp::Push(v) => self.weak_push(*v).map(StackResponse::Push),
            StackOp::Pop => self.weak_pop().map(StackResponse::Pop),
        }
    }

    fn batch_begin(&self, pending: usize) {
        self.batch.begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        self.batch.end(applied);
    }

    /// Elimination: an aborted push parks its value in the exchanger;
    /// an aborted pop takes a parked value directly. The pair
    /// linearizes as back-to-back `push(v); pop() → v` at the instant
    /// the taker commits — sound whenever the stack has room for the
    /// transiting value at that instant, which the taker validates
    /// (under the sequential spec the push must be legal; the pop then
    /// trivially is, the stack being momentarily non-empty).
    fn try_eliminate(&self, op: &StackOp<V>, polls: u32) -> Option<StackResponse<V>> {
        match op {
            StackOp::Push(v) => {
                // Quick decline while TOP shows a full stack: the pair
                // could not linearize (its push would have to return
                // Full). The authoritative admission check runs on the
                // taker side; this peek (uncounted) just avoids
                // parking a value no pop may legally take.
                if usize::from(TopWord::unpack(self.top.peek()).index) >= self.capacity() {
                    return None;
                }
                self.exchanger
                    .offer_stamped(v.to_bits(), polls, probe::thread_id())
                    .ok()
                    .map(|partner| {
                        // Causal edge: the taker's stamp names the
                        // thread whose pop absorbed this value.
                        probe_if!(partner != NO_HELPER, Event::HelpedByPartner(partner));
                        StackResponse::Push(PushOutcome::Pushed)
                    })
            }
            StackOp::Pop => self
                .exchanger
                .take_if_stamped(
                    || {
                        // Admission check, evaluated after the partner
                        // is observed parked and before the taking C&S
                        // — an instant inside both operations'
                        // intervals. The pair linearizes here, so
                        // occupancy < capacity must hold *now* for the
                        // eliminated push to be legal.
                        usize::from(TopWord::unpack(self.top.peek()).index) < self.capacity()
                    },
                    probe::thread_id(),
                )
                .map(|(bits, partner)| {
                    // Causal edge: the offeror's stamp names the thread
                    // whose push supplied this value.
                    probe_if!(partner != NO_HELPER, Event::HelpedByPartner(partner));
                    StackResponse::Pop(PopOutcome::Popped(V::from_bits(bits)))
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::backoff::XorShift64;
    use cso_memory::counting::CountScope;

    #[test]
    fn lifo_order_solo() {
        let stack: AbortableStack<u32> = AbortableStack::new(16);
        for v in 1..=5 {
            assert_eq!(stack.weak_push(v), Ok(PushOutcome::Pushed));
        }
        for v in (1..=5).rev() {
            assert_eq!(stack.weak_pop(), Ok(PopOutcome::Popped(v)));
        }
        assert_eq!(stack.weak_pop(), Ok(PopOutcome::Empty));
    }

    #[test]
    fn full_and_empty_are_definitive_not_aborts() {
        let stack: AbortableStack<u32> = AbortableStack::new(2);
        assert_eq!(stack.weak_pop(), Ok(PopOutcome::Empty));
        assert_eq!(stack.weak_push(1), Ok(PushOutcome::Pushed));
        assert_eq!(stack.weak_push(2), Ok(PushOutcome::Pushed));
        assert_eq!(stack.weak_push(3), Ok(PushOutcome::Full));
        // Full did not clobber anything.
        assert_eq!(stack.weak_pop(), Ok(PopOutcome::Popped(2)));
    }

    #[test]
    fn solo_push_is_exactly_five_accesses() {
        let stack: AbortableStack<u32> = AbortableStack::new(64);
        let scope = CountScope::start();
        stack.weak_push(1).unwrap();
        let c = scope.take();
        assert_eq!(c.total(), 5, "Figure 1 solo push: got {c}");
        assert_eq!((c.reads, c.cas), (3, 2));
    }

    #[test]
    fn solo_pop_is_exactly_five_accesses() {
        let stack: AbortableStack<u32> = AbortableStack::new(64);
        stack.weak_push(1).unwrap();
        let scope = CountScope::start();
        stack.weak_pop().unwrap();
        let c = scope.take();
        assert_eq!(c.total(), 5, "Figure 1 solo pop: got {c}");
    }

    #[test]
    fn empty_pop_is_three_accesses() {
        let stack: AbortableStack<u32> = AbortableStack::new(8);
        let scope = CountScope::start();
        assert_eq!(stack.weak_pop(), Ok(PopOutcome::Empty));
        assert_eq!(scope.take().total(), 3); // read TOP + help (2)
    }

    #[test]
    fn len_tracks_quiescent_size() {
        let stack: AbortableStack<u32> = AbortableStack::new(8);
        assert!(stack.is_empty());
        stack.weak_push(1).unwrap();
        stack.weak_push(2).unwrap();
        assert_eq!(stack.len(), 2);
        stack.weak_pop().unwrap();
        assert_eq!(stack.len(), 1);
        assert_eq!(stack.capacity(), 8);
    }

    #[test]
    fn solo_operations_never_abort_long_run() {
        // The "solo success" half of the abortable contract, run long
        // enough to cycle sequence numbers within slots.
        let stack: AbortableStack<u16> = AbortableStack::new(4);
        for round in 0..10_000u32 {
            let v = (round % 17) as u16;
            assert!(stack.weak_push(v).is_ok());
            assert_eq!(stack.weak_pop(), Ok(PopOutcome::Popped(v)));
        }
        assert_eq!(stack.abort_stats().abort_rate(), 0.0);
    }

    #[test]
    fn abortable_trait_round_trips() {
        let stack: AbortableStack<u32> = AbortableStack::new(4);
        let resp = stack.try_apply(&StackOp::Push(9)).unwrap();
        assert_eq!(resp.expect_push(), PushOutcome::Pushed);
        let resp = stack.try_apply(&StackOp::Pop).unwrap();
        assert_eq!(resp.expect_pop(), PopOutcome::Popped(9));
    }

    #[test]
    fn stats_count_attempts() {
        let stack: AbortableStack<u32> = AbortableStack::new(4);
        stack.weak_push(1).unwrap();
        stack.weak_pop().unwrap();
        stack.weak_pop().unwrap(); // Empty still counts as an attempt
        let stats = stack.abort_stats();
        assert_eq!(stats.push_attempts, 1);
        assert_eq!(stats.pop_attempts, 2);
        assert_eq!(stats.push_aborts + stats.pop_aborts, 0);
        stack.reset_abort_stats();
        assert_eq!(stack.abort_stats(), AbortStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = AbortableStack::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "16-bit index")]
    fn oversized_capacity_panics() {
        let _ = AbortableStack::<u32>::new(usize::from(u16::MAX));
    }

    #[test]
    fn top_register_is_cache_padded() {
        // Compile-time: the wrapper pads to at least 128 bytes.
        const _: () = assert!(std::mem::align_of::<CachePadded<Reg64>>() >= 128);
        const _: () = assert!(std::mem::size_of::<CachePadded<Reg64>>() >= 128);
        let stack: AbortableStack<u32> = AbortableStack::new(4);
        let top_addr = std::ptr::from_ref::<Reg64>(&stack.top) as usize;
        assert_eq!(top_addr % 128, 0, "TOP must start its own cache line");
        // The helped slots live outside TOP's padded line, so lazy
        // helping writes never false-share with the decisive C&S.
        let slot0 = std::ptr::from_ref::<Reg64>(&stack.slots[0]) as usize;
        assert!(slot0.abs_diff(top_addr) >= 128);
    }

    #[test]
    fn elimination_pairs_exchange_without_touching_top() {
        use std::sync::Arc;
        let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(8));
        let offeror = {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || loop {
                match stack.try_eliminate(&StackOp::Push(42), 10_000) {
                    Some(resp) => return resp,
                    None => std::thread::yield_now(),
                }
            })
        };
        let popped = loop {
            if let Some(resp) = stack.try_eliminate(&StackOp::Pop, 0) {
                break resp;
            }
            std::hint::spin_loop();
        };
        assert_eq!(offeror.join().unwrap().expect_push(), PushOutcome::Pushed);
        assert_eq!(popped.expect_pop(), PopOutcome::Popped(42));
        assert_eq!(stack.eliminated_pairs(), 1);
        assert!(stack.is_empty(), "elimination must not touch the stack");
        // No weak operation ran at all: the rendezvous bypassed TOP.
        assert_eq!(stack.abort_stats(), AbortStats::default());
    }

    /// The causal stamps ride the rendezvous only when the probe rings
    /// are live (thread ids come from registration order).
    #[cfg(feature = "trace")]
    #[test]
    fn eliminated_pair_records_both_partner_edges() {
        use cso_trace::probe;
        use std::sync::Arc;

        let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(8));
        let taker_tid = probe::thread_id();
        let offeror = {
            let stack = Arc::clone(&stack);
            std::thread::spawn(move || loop {
                match stack.try_eliminate(&StackOp::Push(42), 10_000) {
                    Some(_) => return probe::thread_id(),
                    None => std::thread::yield_now(),
                }
            })
        };
        while stack.try_eliminate(&StackOp::Pop, 0).is_none() {
            std::hint::spin_loop();
        }
        let offeror_tid = offeror.join().unwrap();
        // The rings are process-global and other tests emit too; only
        // assert our own edges exist, one on each side's thread.
        let trace = probe::collect();
        let edges: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.event, Event::HelpedByPartner(_)))
            .collect();
        assert!(
            edges
                .iter()
                .any(|e| e.thread == taker_tid && e.event == Event::HelpedByPartner(offeror_tid)),
            "the pop must name the offering thread"
        );
        assert!(
            edges
                .iter()
                .any(|e| e.thread == offeror_tid && e.event == Event::HelpedByPartner(taker_tid)),
            "the push must name the taking thread"
        );
    }

    #[test]
    fn taker_admission_rejects_when_stack_is_full() {
        let stack: AbortableStack<u32> = AbortableStack::new(1);
        stack.weak_push(9).unwrap();
        // A full stack pre-declines the offering side outright.
        assert!(stack.try_eliminate(&StackOp::Push(1), 1).is_none());
        // A value parked directly (as if the stack filled after the
        // offeror's peek) must be refused by the taker's admission
        // check: the pair's push could only return Full here.
        std::thread::scope(|s| {
            let parked = s.spawn(|| stack.exchanger.offer(5, 200_000));
            for _ in 0..1_000 {
                assert!(stack.try_eliminate(&StackOp::Pop, 0).is_none());
            }
            assert_eq!(parked.join().unwrap(), Err(5), "no pop may admit it");
        });
        assert_eq!(stack.eliminated_pairs(), 0);
    }

    /// Concurrent aborts leave the stack consistent: every pushed
    /// value is popped exactly once (conservation), even though weak
    /// operations freely abort.
    #[test]
    fn concurrent_weak_ops_conserve_values() {
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        const THREADS: usize = 4;
        const PER_THREAD: u32 = 2_000;

        let stack: Arc<AbortableStack<u32>> = Arc::new(AbortableStack::new(1024));
        let popped = Arc::new(Mutex::new(Vec::<u32>::new()));

        let handles: Vec<_> = (0..THREADS as u32)
            .map(|t| {
                let stack = Arc::clone(&stack);
                let popped = Arc::clone(&popped);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        // Retry aborted pushes (Full cannot happen:
                        // capacity ≥ total pushes in flight).
                        loop {
                            match stack.weak_push(v) {
                                Ok(PushOutcome::Pushed) => break,
                                Ok(PushOutcome::Full) => panic!("stack cannot be full"),
                                Err(Aborted) => std::thread::yield_now(),
                            }
                        }
                        // Pop something back (retry ⊥; Empty possible
                        // if others popped our value first — then we
                        // just carry on).
                        loop {
                            match stack.weak_pop() {
                                Ok(PopOutcome::Popped(v)) => {
                                    mine.push(v);
                                    break;
                                }
                                Ok(PopOutcome::Empty) => break,
                                Err(Aborted) => std::thread::yield_now(),
                            }
                        }
                    }
                    popped.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Drain the remainder.
        let mut remaining = Vec::new();
        loop {
            match stack.weak_pop() {
                Ok(PopOutcome::Popped(v)) => remaining.push(v),
                Ok(PopOutcome::Empty) => break,
                Err(Aborted) => unreachable!("no contention while draining"),
            }
        }
        let mut all = popped.lock().unwrap().clone();
        all.extend(remaining);
        assert_eq!(
            all.len(),
            THREADS * PER_THREAD as usize,
            "every push popped exactly once"
        );
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "no duplicates");
    }

    /// Solo differential test: the abortable stack agrees with the
    /// sequential reference on randomized operation sequences.
    #[test]
    fn random_ops_match_sequential_spec() {
        let mut rng = XorShift64::new(0xABBA_57AC);
        for case in 0..256u64 {
            let _ = case;
            let stack: AbortableStack<u16> = AbortableStack::new(16);
            let mut reference: Vec<u16> = Vec::new();
            let len = (rng.next_u64() % 200) as usize;
            for _ in 0..len {
                let word = rng.next_u64();
                if word & 1 == 0 {
                    let v = (word >> 1) as u16;
                    let got = stack.weak_push(v).expect("solo never aborts");
                    let want = if reference.len() == 16 {
                        PushOutcome::Full
                    } else {
                        reference.push(v);
                        PushOutcome::Pushed
                    };
                    assert_eq!(got, want);
                } else {
                    let got = stack.weak_pop().expect("solo never aborts");
                    let want = match reference.pop() {
                        Some(v) => PopOutcome::Popped(v),
                        None => PopOutcome::Empty,
                    };
                    assert_eq!(got, want);
                }
            }
            assert_eq!(stack.len(), reference.len());
        }
    }
}
