//! Figure 2: the non-blocking stack.

use cso_core::{ContentionManager, NoBackoff, NonBlocking, ProgressCondition};

use crate::abortable::{AbortStats, AbortableStack};
use crate::outcome::{PopOutcome, PushOutcome, StackOp};
use crate::value::StackValue;

/// The paper's **non-blocking stack** (Figure 2): an
/// [`AbortableStack`] whose operations are retried until they return a
/// non-⊥ value.
///
/// ```text
/// operation non_blocking_push(v):
///     repeat res ← weak_push(v) until res ≠ ⊥; return(res).
/// operation non_blocking_pop():
///     repeat res ← weak_pop() until res ≠ ⊥; return(res).
/// ```
///
/// No operation ever returns ⊥, and whatever the contention pattern at
/// least one concurrent operation terminates (the proof is in Shafiei
/// \[22\]): the implementation is **non-blocking** (lock-free). It is
/// *not* starvation-free — a specific process can lose every race —
/// which is what Figure 3 ([`crate::CsStack`]) repairs.
///
/// `M` selects the inter-retry backoff ([`NoBackoff`] = the literal
/// figure).
///
/// ```
/// use cso_stack::{NonBlockingStack, PushOutcome, PopOutcome};
///
/// let stack: NonBlockingStack<u32> = NonBlockingStack::new(128);
/// assert_eq!(stack.push(1), PushOutcome::Pushed);
/// assert_eq!(stack.pop(), PopOutcome::Popped(1));
/// assert_eq!(stack.pop(), PopOutcome::Empty);
/// ```
#[derive(Debug)]
pub struct NonBlockingStack<V: StackValue, M: ContentionManager = NoBackoff> {
    inner: NonBlocking<AbortableStack<V>, M>,
}

impl<V: StackValue> NonBlockingStack<V, NoBackoff> {
    /// Creates an empty stack of capacity `capacity` with the paper's
    /// immediate-retry loop.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1`.
    #[must_use]
    pub fn new(capacity: usize) -> NonBlockingStack<V, NoBackoff> {
        NonBlockingStack {
            inner: NonBlocking::new(AbortableStack::new(capacity)),
        }
    }
}

impl<V: StackValue, M: ContentionManager> NonBlockingStack<V, M> {
    /// Creates an empty stack whose retries are paced by `manager`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u16::MAX - 1`.
    #[must_use]
    pub fn with_manager(capacity: usize, manager: M) -> NonBlockingStack<V, M> {
        NonBlockingStack {
            inner: NonBlocking::with_manager(AbortableStack::new(capacity), manager),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Pushes `value`; never returns ⊥.
    pub fn push(&self, value: V) -> PushOutcome {
        self.inner.apply(&StackOp::Push(value)).expect_push()
    }

    /// Pops the top value; never returns ⊥.
    pub fn pop(&self) -> PopOutcome<V> {
        self.inner.apply(&StackOp::Pop).expect_pop()
    }

    /// The capacity fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.inner().capacity()
    }

    /// Racy size snapshot (one shared access).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.inner().len()
    }

    /// Racy emptiness snapshot (one shared access).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.inner().is_empty()
    }

    /// Attempt/abort counters of the underlying weak operations.
    pub fn abort_stats(&self) -> AbortStats {
        self.inner.inner().abort_stats()
    }

    /// The underlying abortable stack.
    pub fn as_abortable(&self) -> &AbortableStack<V> {
        self.inner.inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack: NonBlockingStack<i32> = NonBlockingStack::new(8);
        for v in [-1, -2, -3] {
            assert_eq!(stack.push(v), PushOutcome::Pushed);
        }
        assert_eq!(stack.pop(), PopOutcome::Popped(-3));
        assert_eq!(stack.pop(), PopOutcome::Popped(-2));
        assert_eq!(stack.pop(), PopOutcome::Popped(-1));
        assert_eq!(stack.pop(), PopOutcome::Empty);
    }

    #[test]
    fn full_outcome_is_returned_not_retried() {
        let stack: NonBlockingStack<u32> = NonBlockingStack::new(1);
        assert_eq!(stack.push(1), PushOutcome::Pushed);
        // Full is a definitive answer (non-⊥), so the loop exits.
        assert_eq!(stack.push(2), PushOutcome::Full);
    }

    #[test]
    fn concurrent_pushes_and_pops_conserve_values() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 2_000;
        let stack: Arc<NonBlockingStack<u32>> =
            Arc::new(NonBlockingStack::new((THREADS * PER_THREAD) as usize));
        // Phase 1: concurrent pushes of distinct values.
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert_eq!(stack.push(t * PER_THREAD + i), PushOutcome::Pushed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stack.len(), (THREADS * PER_THREAD) as usize);

        // Phase 2: concurrent pops; every value comes back exactly once.
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let PopOutcome::Popped(v) = stack.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn with_manager_variant_works() {
        use cso_core::ExpBackoff;
        let stack: NonBlockingStack<u32, ExpBackoff> =
            NonBlockingStack::with_manager(8, ExpBackoff::default());
        assert_eq!(stack.push(3), PushOutcome::Pushed);
        assert_eq!(stack.pop(), PopOutcome::Popped(3));
    }

    #[test]
    fn exposes_abort_stats() {
        let stack: NonBlockingStack<u32> = NonBlockingStack::new(8);
        stack.push(1);
        stack.pop();
        let stats = stack.abort_stats();
        assert_eq!(stats.push_attempts, 1);
        assert_eq!(stats.pop_attempts, 1);
        assert!(!stack.as_abortable().is_empty() || stack.is_empty());
    }
}
