//! The sequential reference stack (differential-testing oracle).

use crate::outcome::{PopOutcome, PushOutcome, StackOp, StackResponse};

/// A plain single-threaded bounded stack with the same vocabulary as
/// the concurrent ones — the sequential specification that
/// linearizability is defined against (§1.1), used by the property
/// tests, the linearizability checker, and the model checker.
///
/// ```
/// use cso_stack::{SeqStack, PushOutcome, PopOutcome};
///
/// let mut stack = SeqStack::new(2);
/// assert_eq!(stack.push(1), PushOutcome::Pushed);
/// assert_eq!(stack.push(2), PushOutcome::Pushed);
/// assert_eq!(stack.push(3), PushOutcome::Full);
/// assert_eq!(stack.pop(), PopOutcome::Popped(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqStack<V> {
    capacity: usize,
    items: Vec<V>,
}

impl<V: Clone> SeqStack<V> {
    /// Creates an empty stack of capacity `capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> SeqStack<V> {
        SeqStack {
            capacity,
            items: Vec::new(),
        }
    }

    /// Pushes `value`, or reports `Full` at capacity.
    pub fn push(&mut self, value: V) -> PushOutcome {
        if self.items.len() == self.capacity {
            PushOutcome::Full
        } else {
            self.items.push(value);
            PushOutcome::Pushed
        }
    }

    /// Pops the top value, or reports `Empty`.
    pub fn pop(&mut self) -> PopOutcome<V> {
        match self.items.pop() {
            Some(v) => PopOutcome::Popped(v),
            None => PopOutcome::Empty,
        }
    }

    /// Applies an operation descriptor (checker-facing interface).
    pub fn apply(&mut self, op: &StackOp<V>) -> StackResponse<V> {
        match op {
            StackOp::Push(v) => StackResponse::Push(self.push(v.clone())),
            StackOp::Pop => StackResponse::Pop(self.pop()),
        }
    }

    /// Current size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A view of the current content, bottom first.
    #[must_use]
    pub fn items(&self) -> &[V] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_lifo_semantics() {
        let mut s = SeqStack::new(2);
        assert_eq!(s.pop(), PopOutcome::<u32>::Empty);
        assert_eq!(s.push(1), PushOutcome::Pushed);
        assert_eq!(s.push(2), PushOutcome::Pushed);
        assert_eq!(s.push(3), PushOutcome::Full);
        assert_eq!(s.items(), &[1, 2]);
        assert_eq!(s.pop(), PopOutcome::Popped(2));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn apply_mirrors_direct_calls() {
        let mut s = SeqStack::new(4);
        assert_eq!(
            s.apply(&StackOp::Push(7u32)),
            StackResponse::Push(PushOutcome::Pushed)
        );
        assert_eq!(
            s.apply(&StackOp::Pop),
            StackResponse::Pop(PopOutcome::Popped(7))
        );
        assert_eq!(
            s.apply(&StackOp::Pop),
            StackResponse::Pop(PopOutcome::Empty)
        );
    }
}
