//! Elimination back-off stack (extension baseline).
//!
//! Hendler, Shavit & Yerushalmi's observation: a concurrent push and
//! pop *cancel out* — they can meet in a side array and exchange the
//! value without touching the stack at all. This is the classical
//! high-contention stack optimization and a natural "non-interfering
//! operations" companion to the paper's contention-sensitive theme
//! (it eliminates precisely the operation pairs that commute).
//!
//! This is an **extension** (see `DESIGN.md`): the paper mentions no
//! elimination, but its related-work discussion of contention
//! management motivates including one strong lock-free baseline.

use std::cell::{RefCell, UnsafeCell};
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicU64, Ordering};

use cso_core::ProgressCondition;
use cso_memory::backoff::XorShift64;
use cso_memory::epoch::{self, Atomic, Owned};

// Exchange-slot states (low 32 bits of the packed word; high 32 = tag).
const EMPTY: u32 = 0;
/// A pusher owns the cell and is writing its item.
const CLAIMED: u32 = 1;
/// An item is parked and available to a popper.
const WAITING: u32 = 2;
/// A popper owns the cell and is taking the item.
const BUSY: u32 = 3;
/// The pusher timed out and is reclaiming its item.
const RETRACT: u32 = 4;

fn pack(tag: u32, state: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(state)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

struct ExchangeSlot<T> {
    state: AtomicU64,
    item: UnsafeCell<Option<T>>,
}

// SAFETY: the slot's state machine grants exclusive access to `item`
// to exactly one thread at a time (see the window analysis on
// `try_eliminate_push` / `try_eliminate_pop`), and items move across
// threads, hence `T: Send`.
unsafe impl<T: Send> Send for ExchangeSlot<T> {}
unsafe impl<T: Send> Sync for ExchangeSlot<T> {}

impl<T> ExchangeSlot<T> {
    fn new() -> ExchangeSlot<T> {
        ExchangeSlot {
            state: AtomicU64::new(pack(0, EMPTY)),
            item: UnsafeCell::new(None),
        }
    }
}

thread_local! {
    static RNG: RefCell<XorShift64> = RefCell::new(XorShift64::from_entropy());
}

/// A lock-free stack with an elimination back-off array.
///
/// Push and pop first attempt one CAS on the Treiber head; on failure
/// (i.e. under contention) they visit a random slot of the elimination
/// array, where a concurrent push/pop pair can exchange the value and
/// complete without ever modifying the stack.
///
/// ```
/// use cso_stack::EliminationStack;
///
/// let stack = EliminationStack::new(4);
/// stack.push(1u32);
/// assert_eq!(stack.pop(), Some(1));
/// assert_eq!(stack.pop(), None);
/// ```
pub struct EliminationStack<T> {
    head: Atomic<Node<T>>,
    slots: Box<[ExchangeSlot<T>]>,
    eliminated: AtomicU64,
}

struct Node<T> {
    value: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

impl<T: Send> EliminationStack<T> {
    /// How long a parked pusher waits for a partner before retracting.
    const PARK_POLLS: u32 = 128;

    /// Creates an empty stack with `slots` elimination slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(slots: usize) -> EliminationStack<T> {
        assert!(slots > 0, "the elimination array needs at least one slot");
        EliminationStack {
            head: Atomic::null(),
            slots: (0..slots).map(|_| ExchangeSlot::new()).collect(),
            eliminated: AtomicU64::new(0),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Number of operation *pairs* completed via elimination.
    #[must_use]
    pub fn eliminated_pairs(&self) -> u64 {
        self.eliminated.load(Ordering::Relaxed)
    }

    /// Pushes `value` (unbounded; always succeeds).
    pub fn push(&self, mut value: T) {
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            // Head contention: try to meet a popper instead.
            match self.try_eliminate_push(value) {
                Ok(()) => {
                    self.eliminated.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(v) => value = v,
            }
        }
    }

    /// Pops the most recently pushed value, or `None` when the stack
    /// is observed empty.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Ok(result) = self.try_pop() {
                return result;
            }
            if let Some(value) = self.try_eliminate_pop() {
                return Some(value);
            }
        }
    }

    /// One CAS attempt on the Treiber head.
    fn try_push(&self, value: T) -> Result<(), T> {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        });
        node.next.store(head, Ordering::Relaxed);
        match self
            .head
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard)
        {
            Ok(_) => Ok(()),
            Err(err) => {
                let node = err.new;
                // Reclaim the value from the unpublished node.
                let Node { value, .. } = *node.into_box();
                Err(ManuallyDrop::into_inner(value))
            }
        }
    }

    /// One CAS attempt on the Treiber head; `Err(())` means contention.
    fn try_pop(&self) -> Result<Option<T>, ()> {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        let Some(node) = (unsafe { head.as_ref() }) else {
            return Ok(None);
        };
        let next = node.next.load(Ordering::Acquire, &guard);
        if self
            .head
            .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
            .is_ok()
        {
            // SAFETY: unlinked; unique ownership of the value (see
            // `TreiberStack::pop`).
            let value = unsafe { std::ptr::read(&node.value) };
            unsafe { guard.defer_destroy(head) };
            Ok(Some(ManuallyDrop::into_inner(value)))
        } else {
            Err(())
        }
    }

    /// Parks `value` in a random slot hoping a popper takes it.
    ///
    /// Cell-access windows (exclusive by the state machine):
    /// pusher owns the cell from the `EMPTY→CLAIMED` CAS to the
    /// `WAITING` store, and again from a successful `WAITING→RETRACT`
    /// CAS to the `EMPTY` store; a popper owns it from a successful
    /// `WAITING→BUSY` CAS to its `EMPTY` store. A new claim is only
    /// possible after an `EMPTY` store with a bumped tag.
    fn try_eliminate_push(&self, value: T) -> Result<(), T> {
        let slot = self.random_slot();
        let word = slot.state.load(Ordering::Acquire);
        let (tag, state) = unpack(word);
        if state != EMPTY
            || slot
                .state
                .compare_exchange(
                    word,
                    pack(tag, CLAIMED),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
        {
            return Err(value);
        }
        // We own the cell: park the item.
        // SAFETY: exclusive window (CLAIMED).
        unsafe { *slot.item.get() = Some(value) };
        slot.state.store(pack(tag, WAITING), Ordering::Release);

        for _ in 0..Self::PARK_POLLS {
            let (now_tag, now_state) = unpack(slot.state.load(Ordering::Acquire));
            if now_tag != tag || now_state == BUSY {
                // A popper moved us to BUSY (and possibly already
                // recycled the slot): the item is theirs.
                return Ok(());
            }
            std::hint::spin_loop();
        }
        // Timed out: retract if no popper has committed.
        if slot
            .state
            .compare_exchange(
                pack(tag, WAITING),
                pack(tag, RETRACT),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            // SAFETY: exclusive window (RETRACT).
            let value = unsafe { (*slot.item.get()).take() }.expect("parked item present");
            slot.state
                .store(pack(tag.wrapping_add(1), EMPTY), Ordering::Release);
            Err(value)
        } else {
            // The CAS lost: a popper got there first — exchanged.
            Ok(())
        }
    }

    /// Visits a random slot hoping to find a parked pusher.
    fn try_eliminate_pop(&self) -> Option<T> {
        let slot = self.random_slot();
        let word = slot.state.load(Ordering::Acquire);
        let (tag, state) = unpack(word);
        if state != WAITING {
            return None;
        }
        if slot
            .state
            .compare_exchange(word, pack(tag, BUSY), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        // SAFETY: exclusive window (BUSY).
        let value = unsafe { (*slot.item.get()).take() }.expect("parked item present");
        slot.state
            .store(pack(tag.wrapping_add(1), EMPTY), Ordering::Release);
        // The pair is counted on the push side.
        Some(value)
    }

    fn random_slot(&self) -> &ExchangeSlot<T> {
        let idx = RNG.with(|rng| rng.borrow_mut().next_below(self.slots.len() as u64)) as usize;
        &self.slots[idx]
    }

    /// Racy emptiness snapshot of the backing stack (parked items in
    /// the elimination array are in flight, not "in" the stack).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for EliminationStack<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut cursor = self.head.load(Ordering::Relaxed, guard);
        while !cursor.is_null() {
            // SAFETY: `&mut self` excludes concurrent access.
            unsafe {
                let mut node = cursor.into_owned();
                ManuallyDrop::drop(&mut node.value);
                cursor = node.next.load(Ordering::Relaxed, guard);
            }
        }
        // Parked items (if a thread died mid-exchange) drop with the
        // UnsafeCell<Option<T>> automatically.
    }
}

impl<T> std::fmt::Debug for EliminationStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EliminationStack")
            .field("slots", &self.slots.len())
            .field("eliminated_pairs", &self.eliminated.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack = EliminationStack::new(2);
        for v in 0..5u32 {
            stack.push(v);
        }
        for v in (0..5).rev() {
            assert_eq!(stack.pop(), Some(v));
        }
        assert_eq!(stack.pop(), None);
    }

    #[test]
    fn exchange_slot_direct_protocol() {
        // Drive the elimination protocol deterministically: park via
        // the internal path by simulating contention is hard solo, so
        // exercise the public API with one slot and check stats stay
        // coherent.
        let stack = EliminationStack::new(1);
        stack.push(7u32);
        assert_eq!(stack.pop(), Some(7));
        assert!(stack.eliminated_pairs() <= 1);
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let stack: Arc<EliminationStack<u64>> = Arc::new(EliminationStack::new(2));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        stack.push(t * PER_THREAD + i);
                        if let Some(v) = stack.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let Some(v) = stack.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }

    #[test]
    fn drop_frees_everything() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let stack = EliminationStack::new(2);
            for _ in 0..8 {
                stack.push(Counted);
            }
            drop(stack.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 8);
    }
}
