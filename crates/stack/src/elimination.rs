//! Elimination back-off stack (extension baseline).
//!
//! Hendler, Shavit & Yerushalmi's observation: a concurrent push and
//! pop *cancel out* — they can meet in a side array and exchange the
//! value without touching the stack at all. This is the classical
//! high-contention stack optimization and a natural "non-interfering
//! operations" companion to the paper's contention-sensitive theme
//! (it eliminates precisely the operation pairs that commute).
//!
//! This is an **extension** (see `DESIGN.md`): the paper mentions no
//! elimination, but its related-work discussion of contention
//! management motivates including one strong lock-free baseline.
//!
//! The rendezvous machinery itself — the tagged slot state machine,
//! its exclusive cell windows and its panic-safe retract — lives in
//! [`cso_memory::exchange`], shared with the contention-sensitive
//! escalation ladder; this file only combines it with a Treiber stack.

use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;

use cso_core::ProgressCondition;
use cso_memory::epoch::{self, Atomic, Owned};
use cso_memory::exchange::Exchanger;

/// A lock-free stack with an elimination back-off array.
///
/// Push and pop first attempt one CAS on the Treiber head; on failure
/// (i.e. under contention) they visit the elimination [`Exchanger`],
/// where a concurrent push/pop pair can exchange the value and
/// complete without ever modifying the stack.
///
/// ```
/// use cso_stack::EliminationStack;
///
/// let stack = EliminationStack::new(4);
/// stack.push(1u32);
/// assert_eq!(stack.pop(), Some(1));
/// assert_eq!(stack.pop(), None);
/// ```
pub struct EliminationStack<T> {
    head: Atomic<Node<T>>,
    exchanger: Exchanger<T>,
}

struct Node<T> {
    value: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

impl<T: Send> EliminationStack<T> {
    /// How long a parked pusher waits for a partner before retracting.
    const PARK_POLLS: u32 = 128;

    /// Creates an empty stack with `slots` elimination slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(slots: usize) -> EliminationStack<T> {
        EliminationStack {
            head: Atomic::null(),
            exchanger: Exchanger::new(slots),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Number of operation *pairs* completed via elimination.
    #[must_use]
    pub fn eliminated_pairs(&self) -> u64 {
        self.exchanger.exchanges()
    }

    /// Pushes `value` (unbounded; always succeeds).
    pub fn push(&self, mut value: T) {
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => value = v,
            }
            // Head contention: try to meet a popper instead.
            match self.exchanger.offer(value, Self::PARK_POLLS) {
                Ok(()) => return,
                Err(v) => value = v,
            }
        }
    }

    /// Pops the most recently pushed value, or `None` when the stack
    /// is observed empty.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Ok(result) = self.try_pop() {
                return result;
            }
            if let Some(value) = self.exchanger.take() {
                return Some(value);
            }
        }
    }

    /// One CAS attempt on the Treiber head.
    fn try_push(&self, value: T) -> Result<(), T> {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        let node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        });
        node.next.store(head, Ordering::Relaxed);
        match self
            .head
            .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed, &guard)
        {
            Ok(_) => Ok(()),
            Err(err) => {
                let node = err.new;
                // Reclaim the value from the unpublished node.
                let Node { value, .. } = *node.into_box();
                Err(ManuallyDrop::into_inner(value))
            }
        }
    }

    /// One CAS attempt on the Treiber head; `Err(())` means contention.
    fn try_pop(&self) -> Result<Option<T>, ()> {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        let Some(node) = (unsafe { head.as_ref() }) else {
            return Ok(None);
        };
        let next = node.next.load(Ordering::Acquire, &guard);
        if self
            .head
            .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
            .is_ok()
        {
            // SAFETY: unlinked; unique ownership of the value (see
            // `TreiberStack::pop`).
            let value = unsafe { std::ptr::read(&node.value) };
            unsafe { guard.defer_destroy(head) };
            Ok(Some(ManuallyDrop::into_inner(value)))
        } else {
            Err(())
        }
    }

    /// Racy emptiness snapshot of the backing stack (parked items in
    /// the elimination array are in flight, not "in" the stack).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for EliminationStack<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        let mut cursor = self.head.load(Ordering::Relaxed, guard);
        while !cursor.is_null() {
            // SAFETY: `&mut self` excludes concurrent access.
            unsafe {
                let mut node = cursor.into_owned();
                ManuallyDrop::drop(&mut node.value);
                cursor = node.next.load(Ordering::Relaxed, guard);
            }
        }
        // Parked items (if a thread died mid-exchange) drop with the
        // exchanger's slot cells automatically.
    }
}

impl<T> std::fmt::Debug for EliminationStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EliminationStack")
            .field("exchanger", &self.exchanger)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack = EliminationStack::new(2);
        for v in 0..5u32 {
            stack.push(v);
        }
        for v in (0..5).rev() {
            assert_eq!(stack.pop(), Some(v));
        }
        assert_eq!(stack.pop(), None);
    }

    #[test]
    fn exchange_slot_direct_protocol() {
        // Drive the elimination protocol deterministically: park via
        // the internal path by simulating contention is hard solo, so
        // exercise the public API with one slot and check stats stay
        // coherent.
        let stack = EliminationStack::new(1);
        stack.push(7u32);
        assert_eq!(stack.pop(), Some(7));
        assert!(stack.eliminated_pairs() <= 1);
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let stack: Arc<EliminationStack<u64>> = Arc::new(EliminationStack::new(2));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        stack.push(t * PER_THREAD + i);
                        if let Some(v) = stack.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let Some(v) = stack.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }

    #[test]
    fn drop_frees_everything() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let stack = EliminationStack::new(2);
            for _ in 0..8 {
                stack.push(Counted);
            }
            drop(stack.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 8);
    }
}
