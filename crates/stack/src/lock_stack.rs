//! The traditional fully lock-based stack (§1.1's baseline).

use std::cell::UnsafeCell;

use cso_core::ProgressCondition;
use cso_locks::{RawLock, TasLock};

use crate::outcome::{PopOutcome, PushOutcome};

/// A stack protected by a single lock — "associating a single lock
/// with an object prevents several processes/threads from accessing it
/// simultaneously" (§1.1). Every operation, contended or not, pays the
/// lock.
///
/// The lock type is pluggable so the benchmarks can compare the
/// contention-sensitive stack against TAS-, ticket- and OS-locked
/// variants. Progress inherits from the lock: deadlock-free for TAS,
/// starvation-free for a ticket lock.
///
/// An optional capacity bound mirrors the bounded semantics of the
/// paper's array stack (`Full`/`Empty` outcomes), so all stacks answer
/// the same workload interface.
///
/// ```
/// use cso_stack::{LockStack, PushOutcome, PopOutcome};
///
/// let stack: LockStack<&str> = LockStack::new(2);
/// assert_eq!(stack.push("a"), PushOutcome::Pushed);
/// assert_eq!(stack.push("b"), PushOutcome::Pushed);
/// assert_eq!(stack.push("c"), PushOutcome::Full);
/// assert_eq!(stack.pop(), PopOutcome::Popped("b"));
/// ```
pub struct LockStack<T, L: RawLock = TasLock> {
    lock: L,
    capacity: usize,
    items: UnsafeCell<Vec<T>>,
}

// SAFETY: all access to `items` happens inside the critical section of
// `lock` (a `RawLock` provides mutual exclusion per its contract), so
// the stack may be shared across threads whenever the payload moves
// across threads safely.
unsafe impl<T: Send, L: RawLock> Send for LockStack<T, L> {}
unsafe impl<T: Send, L: RawLock> Sync for LockStack<T, L> {}

impl<T> LockStack<T, TasLock> {
    /// Creates an empty stack of capacity `capacity` behind a TAS
    /// lock.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> LockStack<T, TasLock> {
        LockStack::with_lock(capacity, TasLock::new())
    }
}

impl<T, L: RawLock> LockStack<T, L> {
    /// Creates an empty stack of capacity `capacity` behind `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_lock(capacity: usize, lock: L) -> LockStack<T, L> {
        assert!(capacity > 0, "stack capacity must be positive");
        LockStack {
            lock,
            capacity,
            items: UnsafeCell::new(Vec::new()),
        }
    }

    /// The progress condition (that of the weakest supported lock).
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Pushes `value`, or reports `Full` at capacity.
    pub fn push(&self, value: T) -> PushOutcome {
        self.lock.with(|| {
            // SAFETY: inside the critical section (see Send/Sync note).
            let items = unsafe { &mut *self.items.get() };
            if items.len() == self.capacity {
                PushOutcome::Full
            } else {
                items.push(value);
                PushOutcome::Pushed
            }
        })
    }

    /// Pops the top value, or reports `Empty`.
    pub fn pop(&self) -> PopOutcome<T> {
        self.lock.with(|| {
            // SAFETY: inside the critical section (see Send/Sync note).
            let items = unsafe { &mut *self.items.get() };
            match items.pop() {
                Some(v) => PopOutcome::Popped(v),
                None => PopOutcome::Empty,
            }
        })
    }

    /// Current size (takes the lock).
    #[must_use]
    pub fn len(&self) -> usize {
        // SAFETY: inside the critical section (see Send/Sync note).
        self.lock.with(|| unsafe { (*self.items.get()).len() })
    }

    /// True when empty (takes the lock).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T, L: RawLock> std::fmt::Debug for LockStack<T, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockStack")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_locks::{OsLock, TicketLock};
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack: LockStack<u32> = LockStack::new(8);
        for v in 1..=3 {
            assert_eq!(stack.push(v), PushOutcome::Pushed);
        }
        assert_eq!(stack.pop(), PopOutcome::Popped(3));
        assert_eq!(stack.len(), 2);
        assert_eq!(stack.capacity(), 8);
    }

    #[test]
    fn bounded_semantics() {
        let stack: LockStack<u32> = LockStack::new(1);
        assert_eq!(stack.pop(), PopOutcome::Empty);
        assert_eq!(stack.push(1), PushOutcome::Pushed);
        assert_eq!(stack.push(2), PushOutcome::Full);
        assert!(!stack.is_empty());
    }

    #[test]
    fn works_with_other_locks() {
        let ticket: LockStack<u32, TicketLock> = LockStack::with_lock(4, TicketLock::new());
        assert_eq!(ticket.push(1), PushOutcome::Pushed);
        assert_eq!(ticket.pop(), PopOutcome::Popped(1));
        let os: LockStack<u32, OsLock> = LockStack::with_lock(4, OsLock::new());
        assert_eq!(os.push(2), PushOutcome::Pushed);
        assert_eq!(os.pop(), PopOutcome::Popped(2));
    }

    #[test]
    fn owned_payloads_are_dropped() {
        let stack: LockStack<String> = LockStack::new(4);
        stack.push("leak-check".to_owned());
        // Dropped with the stack; run under ASAN/Miri to verify.
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 2_000;
        let stack: Arc<LockStack<u32>> = Arc::new(LockStack::new((THREADS * PER_THREAD) as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(stack.push(t * PER_THREAD + i), PushOutcome::Pushed);
                        if let PopOutcome::Popped(v) = stack.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let PopOutcome::Popped(v) = stack.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }
}
