//! Treiber's lock-free linked stack — the classical baseline.

use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;

use cso_core::ProgressCondition;
use cso_memory::epoch::{self, Atomic, Owned};

/// Treiber's stack: an unbounded lock-free linked stack, the standard
/// point of comparison for concurrent stacks.
///
/// Unlike the paper's array-based algorithms it allocates a node per
/// element and needs safe memory reclamation (provided here by
/// epoch-based reclamation, `cso_memory::epoch`) — which is exactly the
/// machinery the paper's array + sequence-number design avoids.
/// Non-blocking (lock-free), not starvation-free.
///
/// ```
/// use cso_stack::TreiberStack;
///
/// let stack = TreiberStack::new();
/// stack.push("a");
/// stack.push("b");
/// assert_eq!(stack.pop(), Some("b"));
/// assert_eq!(stack.pop(), Some("a"));
/// assert_eq!(stack.pop(), None);
/// ```
#[derive(Debug)]
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

#[derive(Debug)]
struct Node<T> {
    value: ManuallyDrop<T>,
    next: Atomic<Node<T>>,
}

impl<T> TreiberStack<T> {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> TreiberStack<T> {
        TreiberStack {
            head: Atomic::null(),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Pushes `value` (always succeeds; the stack is unbounded).
    pub fn push(&self, value: T) {
        let guard = epoch::pin();
        let mut node = Owned::new(Node {
            value: ManuallyDrop::new(value),
            next: Atomic::null(),
        });
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            node.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => return,
                Err(err) => node = err.new,
            }
        }
    }

    /// Pops the most recently pushed value, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Acquire, &guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // SAFETY: we unlinked `head`, so we are the unique
                // owner of its value (`ManuallyDrop` keeps the node's
                // destructor from double-dropping it); the node itself
                // is freed once the epoch advances past all readers.
                let value = unsafe { std::ptr::read(&node.value) };
                unsafe { guard.defer_destroy(head) };
                return Some(ManuallyDrop::into_inner(value));
            }
        }
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Default for TreiberStack<T> {
    fn default() -> TreiberStack<T> {
        TreiberStack::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Single-threaded teardown: walk and free the list.
        let guard = unsafe { epoch::unprotected() };
        let mut cursor = self.head.load(Ordering::Relaxed, guard);
        while !cursor.is_null() {
            // SAFETY: `&mut self` excludes concurrent access; each
            // node is visited once, its value dropped exactly once.
            unsafe {
                let mut node = cursor.into_owned();
                ManuallyDrop::drop(&mut node.value);
                cursor = node.next.load(Ordering::Relaxed, guard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn lifo_order_solo() {
        let stack = TreiberStack::new();
        for v in 0..10 {
            stack.push(v);
        }
        for v in (0..10).rev() {
            assert_eq!(stack.pop(), Some(v));
        }
        assert_eq!(stack.pop(), None);
        assert!(stack.is_empty());
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let stack = TreiberStack::new();
            for _ in 0..10 {
                stack.push(Counted);
            }
            drop(stack.pop());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        let stack: Arc<TreiberStack<u64>> = Arc::new(TreiberStack::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        stack.push(t * PER_THREAD + i);
                        if let Some(v) = stack.pop() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let Some(v) = stack.pop() {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }
}
