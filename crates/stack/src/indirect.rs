//! Arbitrary payloads over the 32-bit register stacks.

use cso_core::ContentionManager;
use cso_locks::RawLock;
use cso_memory::slab::Slab;

use crate::contention_sensitive::CsStack;
use crate::nonblocking::NonBlockingStack;
use crate::outcome::{PopOutcome, PushOutcome};

/// A stack of 32-bit *handles* — the common face of [`CsStack<u32>`]
/// and [`NonBlockingStack<u32>`] that [`IndirectStack`] builds on.
///
/// The `proc` argument is the invoking process identity; handle stacks
/// that do not need identities (Figure 2) ignore it.
pub trait HandleStack: Send + Sync {
    /// Pushes a handle.
    fn push_handle(&self, proc: usize, handle: u32) -> PushOutcome;

    /// Pops a handle.
    fn pop_handle(&self, proc: usize) -> PopOutcome<u32>;

    /// The capacity of the handle stack.
    fn handle_capacity(&self) -> usize;
}

impl<L: RawLock> HandleStack for CsStack<u32, L> {
    fn push_handle(&self, proc: usize, handle: u32) -> PushOutcome {
        self.push(proc, handle)
    }

    fn pop_handle(&self, proc: usize) -> PopOutcome<u32> {
        self.pop(proc)
    }

    fn handle_capacity(&self) -> usize {
        self.capacity()
    }
}

impl<M: ContentionManager> HandleStack for NonBlockingStack<u32, M> {
    fn push_handle(&self, _proc: usize, handle: u32) -> PushOutcome {
        self.push(handle)
    }

    fn pop_handle(&self, _proc: usize) -> PopOutcome<u32> {
        self.pop()
    }

    fn handle_capacity(&self) -> usize {
        self.capacity()
    }
}

/// A bounded concurrent stack of arbitrary `Send` payloads: values
/// live in a fixed slab and the chosen register stack (`S`) carries
/// their 32-bit handles.
///
/// The slab is provisioned with `capacity + max_pushers` slots, since
/// up to `max_pushers` values can be staged in the slab while their
/// pushes are in flight.
///
/// ```
/// use cso_stack::{CsStack, IndirectStack};
///
/// // Capacity 64, up to 4 processes; payloads are Strings.
/// let inner: CsStack<u32> = CsStack::new(64, 4);
/// let stack: IndirectStack<String, _> = IndirectStack::new(inner, 4);
/// assert!(stack.push(0, "hello".to_owned()).is_ok());
/// assert_eq!(stack.pop(1), Some("hello".to_owned()));
/// assert_eq!(stack.pop(1), None);
/// ```
#[derive(Debug)]
pub struct IndirectStack<T, S> {
    handles: S,
    slab: Slab<T>,
}

impl<T: Send, S: HandleStack> IndirectStack<T, S> {
    /// Wraps the handle stack `handles`; at most `max_pushers` pushes
    /// may be in flight concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the combined slab capacity would exceed `u32` handle
    /// space.
    #[must_use]
    pub fn new(handles: S, max_pushers: usize) -> IndirectStack<T, S> {
        let slab = Slab::new(handles.handle_capacity() + max_pushers.max(1));
        IndirectStack { handles, slab }
    }

    /// Pushes `value` on behalf of process `proc`.
    ///
    /// # Errors
    ///
    /// Hands `value` back when the stack is at capacity.
    pub fn push(&self, proc: usize, value: T) -> Result<(), T> {
        // Stage the payload, then publish the handle. A full slab means
        // the stack is full with the maximum number of pushers staged.
        let handle = self.slab.insert(value)?;
        match self.handles.push_handle(proc, handle) {
            PushOutcome::Pushed => Ok(()),
            PushOutcome::Full => {
                // Unstage: the push never happened.
                let value = self.slab.remove(handle).expect("staged value present");
                Err(value)
            }
        }
    }

    /// Pops the most recent payload on behalf of process `proc`.
    pub fn pop(&self, proc: usize) -> Option<T> {
        match self.handles.pop_handle(proc) {
            PopOutcome::Popped(handle) => Some(
                self.slab
                    .remove(handle)
                    .expect("popped handle maps to a staged value"),
            ),
            PopOutcome::Empty => None,
        }
    }

    /// Racy size snapshot of staged + stacked payloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// The capacity of the underlying handle stack.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.handles.handle_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn cs_indirect(capacity: usize, n: usize) -> IndirectStack<String, CsStack<u32>> {
        IndirectStack::new(CsStack::new(capacity, n), n)
    }

    #[test]
    fn round_trips_owned_payloads() {
        let stack = cs_indirect(4, 2);
        stack.push(0, "a".to_owned()).unwrap();
        stack.push(0, "b".to_owned()).unwrap();
        assert_eq!(stack.pop(1).as_deref(), Some("b"));
        assert_eq!(stack.pop(1).as_deref(), Some("a"));
        assert_eq!(stack.pop(1), None);
    }

    #[test]
    fn full_hands_the_value_back() {
        let stack = cs_indirect(1, 1);
        stack.push(0, "kept".to_owned()).unwrap();
        let err = stack.push(0, "bounced".to_owned()).unwrap_err();
        assert_eq!(err, "bounced");
        assert_eq!(stack.len(), 1);
    }

    #[test]
    fn nonblocking_flavour_works() {
        let inner: NonBlockingStack<u32> = NonBlockingStack::new(8);
        let stack: IndirectStack<Vec<u8>, _> = IndirectStack::new(inner, 2);
        stack.push(0, vec![1, 2]).unwrap();
        assert_eq!(stack.pop(0), Some(vec![1, 2]));
        assert_eq!(stack.capacity(), 8);
    }

    #[test]
    fn concurrent_conservation_of_boxed_values() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 500;
        let stack: Arc<IndirectStack<Box<usize>, CsStack<u32>>> = Arc::new(IndirectStack::new(
            CsStack::new(THREADS * PER_THREAD, THREADS),
            THREADS,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        stack.push(t, Box::new(t * PER_THREAD + i)).unwrap();
                        if let Some(v) = stack.pop(t) {
                            got.push(*v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let Some(v) = stack.pop(0) {
            all.push(*v);
        }
        assert_eq!(all.len(), THREADS * PER_THREAD);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
        assert!(stack.is_empty());
    }
}
