//! The paper's step-count claims as tests, enforced by the
//! `cso-trace` step auditor — not just measured by the E1 bench bin.
//!
//! * Theorem 1: a contention-free strong `push`/`pop` on the Figure 3
//!   stack performs at most **6** shared-memory accesses and takes no
//!   lock (solo it is exactly 6, deterministically).
//! * §3 / Figure 1: a solo `weak_push`/`weak_pop` performs exactly
//!   **5**.
//! * The locked slow path never exceeds its documented bound,
//!   [`cso_core::LOCKED_SOLO_ACCESS_BOUND`] plus the weak operation's
//!   own 5 accesses (chaos-gated — the fail point is the only
//!   deterministic way to veto the fast path of a real stack).
//!
//! A budget violation panics inside [`StepAuditor::audit`], failing
//! the build — Theorem 1 is a regression test now.

use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_memory::counting::CountScope;
use cso_stack::{AbortableStack, CsStack, PopOutcome, PushOutcome};
use cso_trace::StepAuditor;

/// Theorem 1's budget for a contention-free strong operation.
const STRONG_BUDGET: u64 = 6;
/// Figure 1's cost for a solo weak operation.
const WEAK_COST: u64 = 5;

/// The access-counting substrate this whole file leans on must be the
/// zero-cost passthrough in a default build — the `model` runtime is
/// opt-in and would invalidate the bit-exact totals below.
#[test]
fn default_build_runs_the_std_runtime() {
    assert_eq!(cso_memory::runtime::active_name(), "std");
}

#[test]
fn contention_free_strong_ops_stay_within_six_accesses() {
    let cs: CsStack<u32> = CsStack::new(1024, 4);
    // First op on a fresh object may take a boundary path; warm up.
    cs.push(0, 0);
    cs.pop(0);

    let auditor = StepAuditor::strict(STRONG_BUDGET);
    for i in 0..10_000u32 {
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        assert_eq!(auditor.audit(|| cs.pop(0)), PopOutcome::Popped(i));
    }

    let report = auditor.report();
    assert_eq!(report.checked, 20_000);
    assert!(report.clean());
    // Solo the cost is not merely bounded but exact.
    assert_eq!(report.worst, STRONG_BUDGET, "Theorem 1 is tight");
    assert_eq!(
        cs.path_stats().locked,
        0,
        "Theorem 1: contention-free operations take no lock"
    );
}

#[test]
fn weak_ops_cost_exactly_five_accesses() {
    let stack: AbortableStack<u32> = AbortableStack::new(1024);
    stack.weak_push(0).expect("solo never aborts");
    stack.weak_pop().expect("solo never aborts");

    let auditor = StepAuditor::strict(WEAK_COST);
    for i in 0..10_000u32 {
        let scope = CountScope::start();
        stack.weak_push(i).expect("solo never aborts");
        let push_cost = scope.take();
        assert_eq!(push_cost.total(), WEAK_COST, "weak_push: {push_cost}");
        auditor.observe(push_cost);

        let scope = CountScope::start();
        stack.weak_pop().expect("solo never aborts");
        let pop_cost = scope.take();
        assert_eq!(pop_cost.total(), WEAK_COST, "weak_pop: {pop_cost}");
        auditor.observe(pop_cost);
    }
    assert!(auditor.report().clean());
}

/// Theorem 1 must survive the combining upgrade: with the
/// flat-combining slow path and the adaptive gate *compiled in* (the
/// `COMBINING` config), a contention-free strong operation still
/// performs exactly six counted shared-memory accesses — the
/// publication records and the gate's EWMA bookkeeping live entirely
/// in uncounted memory.
#[test]
fn combining_config_keeps_theorem_one_exact() {
    let cs: CsStack<u32> = CsStack::with_config(1024, TasLock::new(), 4, CsConfig::COMBINING);
    cs.push(0, 0);
    cs.pop(0);

    let auditor = StepAuditor::strict(STRONG_BUDGET);
    for i in 0..10_000u32 {
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        assert_eq!(auditor.audit(|| cs.pop(0)), PopOutcome::Popped(i));
    }

    let report = auditor.report();
    assert_eq!(report.checked, 20_000);
    assert!(report.clean());
    assert_eq!(report.worst, STRONG_BUDGET, "Theorem 1 is still tight");
    assert_eq!(cs.path_stats().locked, 0, "solo ops never take the lock");
    assert!(!cs.gate().engaged(), "solo successes never engage the gate");
    assert_eq!(cs.combining_stats().batches, 0);
}

/// Theorem 1 must survive the escalation ladder too: with the
/// contention-management and elimination rungs *armed* (the `LADDER`
/// config), a contention-free strong operation still performs exactly
/// six counted shared-memory accesses — the ladder only runs after a
/// weak-op abort, which never happens solo, and its own machinery
/// (backoff state, exchanger slots) lives in uncounted memory.
#[test]
fn ladder_config_keeps_theorem_one_exact() {
    let cs: CsStack<u32> = CsStack::with_config(1024, TasLock::new(), 4, CsConfig::LADDER);
    cs.push(0, 0);
    cs.pop(0);

    let auditor = StepAuditor::strict(STRONG_BUDGET);
    for i in 0..10_000u32 {
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        assert_eq!(auditor.audit(|| cs.pop(0)), PopOutcome::Popped(i));
    }

    let report = auditor.report();
    assert_eq!(report.checked, 20_000);
    assert!(report.clean());
    assert_eq!(report.worst, STRONG_BUDGET, "Theorem 1 is still tight");
    assert_eq!(cs.path_stats().locked, 0, "solo ops never take the lock");
    assert_eq!(cs.path_stats().eliminated, 0, "solo ops never rendezvous");
    assert_eq!(cs.eliminated_pairs(), 0);
}

/// A vetoed operation that the ladder rescues stays cheap: one aborted
/// weak attempt plus one contention-management retry, never the lock.
/// The retry is a full weak operation, so the whole strong op lands
/// within `6 + 5` counted accesses.
#[cfg(feature = "chaos")]
#[test]
fn ladder_rescued_ops_stay_within_one_extra_weak_attempt() {
    use cso_memory::chaos::{self, Fault, Plan};

    let cs: CsStack<u32> = CsStack::with_config(1024, TasLock::new(), 4, CsConfig::LADDER);
    cs.push(0, 0);

    let auditor = StepAuditor::strict(STRONG_BUDGET + WEAK_COST);
    for i in 0..1_000u32 {
        chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        cs.pop(0);
    }
    chaos::reset();

    assert!(auditor.report().clean());
    assert_eq!(
        cs.path_stats().locked,
        0,
        "the contention-management rung must absorb every veto"
    );
}

/// The adaptive gate's full cycle, step-counted: engaged, it diverts
/// operations onto the combining slow path (which costs more than six
/// counted accesses — the batch apply runs under the lock); its
/// periodic probes succeed, decay the abort estimate, and disengage
/// it; after which the fast path is *exactly* six accesses again.
#[test]
fn engaged_gate_diverts_then_recovery_restores_the_six_access_fast_path() {
    let cs: CsStack<u32> = CsStack::with_config(1024, TasLock::new(), 4, CsConfig::COMBINING);
    cs.push(0, 0);
    cs.pop(0);

    // Phase 1: disengaged gate — Theorem 1 exactly.
    let auditor = StepAuditor::strict(STRONG_BUDGET);
    for i in 0..1_000u32 {
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        assert_eq!(auditor.audit(|| cs.pop(0)), PopOutcome::Popped(i));
    }
    assert!(auditor.report().clean());
    assert_eq!(auditor.report().worst, STRONG_BUDGET);

    // Phase 2: force-engage. Diverted operations take the combining
    // slow path; the probes (1 in PROBE_PERIOD) run the fast path,
    // succeed solo, and decay the EWMA until the gate disengages.
    cs.gate().force_engage();
    let mut slow_costs = 0u32;
    let mut ops = 0u32;
    while cs.gate().engaged() {
        let scope = CountScope::start();
        assert_eq!(cs.push(0, ops), PushOutcome::Pushed);
        if scope.take().total() != STRONG_BUDGET {
            slow_costs += 1;
        }
        cs.pop(0);
        ops += 1;
        assert!(ops < 10_000, "engaged gate never disengaged");
    }
    assert!(
        slow_costs > 0,
        "an engaged gate never paid a slow-path cost"
    );
    assert!(cs.path_stats().locked > 0, "diversions must take the lock");
    assert!(cs.gate().stats().diverted > 0);
    assert!(
        cs.combining_stats().batches > 0,
        "diverted ops must go through the combining tenure machinery"
    );

    // Phase 3: disengaged again — back to exactly six.
    let auditor = StepAuditor::strict(STRONG_BUDGET);
    for i in 0..1_000u32 {
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        assert_eq!(auditor.audit(|| cs.pop(0)), PopOutcome::Popped(i));
    }
    let report = auditor.report();
    assert!(report.clean(), "recovery must restore the six-access bound");
    assert_eq!(report.worst, STRONG_BUDGET, "Theorem 1 is tight again");
}

/// Under real concurrency the auditor can still enforce Theorem 1 —
/// on exactly the operations that completed contention-free (fast
/// path), which only the probe layer can identify.
#[cfg(feature = "trace")]
#[test]
fn concurrent_fast_path_completions_stay_within_six_accesses() {
    use std::sync::Arc;

    const THREADS: usize = 4;
    const OPS: u32 = 20_000;
    let cs: Arc<CsStack<u32>> = Arc::new(CsStack::new(1 << 15, THREADS));
    let auditor = Arc::new(StepAuditor::strict(STRONG_BUDGET));

    std::thread::scope(|s| {
        for proc in 0..THREADS {
            let cs = Arc::clone(&cs);
            let auditor = Arc::clone(&auditor);
            s.spawn(move || {
                for i in 0..OPS {
                    if (proc + i as usize) % 2 == 0 {
                        auditor.audit_contention_free(|| cs.push(proc, i));
                    } else {
                        auditor.audit_contention_free(|| cs.pop(proc));
                    }
                }
            });
        }
    });

    let report = auditor.report();
    assert_eq!(report.checked, THREADS as u64 * u64::from(OPS));
    assert!(report.clean(), "a fast-path completion exceeded 6 accesses");
}

/// The slow path has a documented bound too: the transformation's own
/// footprint ([`cso_core::LOCKED_SOLO_ACCESS_BOUND`]) plus one weak
/// operation. A solo invocation vetoed off the fast path must land
/// within it.
#[cfg(feature = "chaos")]
#[test]
fn locked_path_stays_within_documented_bound() {
    use cso_memory::chaos::{self, Fault, Plan};

    let locked_budget = cso_core::LOCKED_SOLO_ACCESS_BOUND + WEAK_COST;
    let cs: CsStack<u32> = CsStack::new(1024, 4);
    cs.push(0, 0);

    let auditor = StepAuditor::strict(locked_budget);
    for i in 0..1_000u32 {
        chaos::arm_plan("cs::fast", Plan::once(Fault::SpuriousAbort));
        assert_eq!(auditor.audit(|| cs.push(0, i)), PushOutcome::Pushed);
        cs.pop(0);
    }
    chaos::reset();

    let report = auditor.report();
    assert!(report.clean());
    assert_eq!(
        cs.path_stats().locked,
        1_000,
        "every audited push must have been forced onto the lock path"
    );
}
