//! The original HLM deque: retry ⊥ — obstruction-free, and *only*
//! obstruction-free.

use cso_core::{ContentionManager, NoBackoff, ProgressCondition};
use cso_memory::bits::Bits32;

use crate::abortable::AbortableDeque;
use crate::outcome::{DequePopOutcome, DequePushOutcome, End};

/// The Herlihy–Luchangco–Moir deque as published: each operation
/// retries its attempt until it gets a definitive answer.
///
/// **Progress: obstruction-free** — an operation is guaranteed to
/// terminate only when it eventually runs solo (paper §1.2 / ref
/// \[8\]). Unlike the stack's Figure 2, the retry loop here is *not*
/// non-blocking: two symmetric two-`C&S` operations can keep
/// invalidating each other's first `C&S` forever without either
/// completing (no "my abort implies your success" property). This is
/// the genuinely weakest rung of the paper's hierarchy, which is why
/// a contention manager (`M`) matters in practice and why
/// [`crate::CsDeque`] exists.
///
/// ```
/// use cso_deque::{HlmDeque, DequePushOutcome, DequePopOutcome, End};
///
/// let deque: HlmDeque<u32> = HlmDeque::new(8);
/// assert_eq!(deque.push(End::Left, 1), DequePushOutcome::Pushed);
/// assert_eq!(deque.pop(End::Right), DequePopOutcome::Popped(1));
/// ```
#[derive(Debug)]
pub struct HlmDeque<V: Bits32, M: ContentionManager = NoBackoff> {
    inner: AbortableDeque<V>,
    manager: M,
}

impl<V: Bits32> HlmDeque<V, NoBackoff> {
    /// Creates an empty deque with immediate retries.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities (see [`AbortableDeque::new`]).
    #[must_use]
    pub fn new(capacity: usize) -> HlmDeque<V, NoBackoff> {
        HlmDeque {
            inner: AbortableDeque::new(capacity),
            manager: NoBackoff,
        }
    }
}

impl<V: Bits32, M: ContentionManager> HlmDeque<V, M> {
    /// Creates an empty deque whose retries are paced by `manager`
    /// (the practical mitigation for the livelock the progress
    /// condition permits).
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities.
    #[must_use]
    pub fn with_manager(capacity: usize, manager: M) -> HlmDeque<V, M> {
        HlmDeque {
            inner: AbortableDeque::new(capacity),
            manager,
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::ObstructionFree;

    /// Pushes `value` at `end`, retrying ⊥.
    pub fn push(&self, end: End, value: V) -> DequePushOutcome {
        let mut attempt = 0u32;
        loop {
            match self.inner.try_push(end, value) {
                Ok(outcome) => return outcome,
                Err(_) => {
                    self.manager.on_abort(attempt);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Pops from `end`, retrying ⊥.
    pub fn pop(&self, end: End) -> DequePopOutcome<V> {
        let mut attempt = 0u32;
        loop {
            match self.inner.try_pop(end) {
                Ok(outcome) => return outcome,
                Err(_) => {
                    self.manager.on_abort(attempt);
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// The underlying abortable deque.
    pub fn as_abortable(&self) -> &AbortableDeque<V> {
        &self.inner
    }

    /// The total value capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Racy size snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_core::YieldBackoff;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn deque_semantics_solo() {
        let d: HlmDeque<u32> = HlmDeque::new(6);
        d.push(End::Right, 2);
        d.push(End::Left, 1);
        d.push(End::Right, 3);
        assert_eq!(d.pop(End::Left), DequePopOutcome::Popped(1));
        assert_eq!(d.pop(End::Left), DequePopOutcome::Popped(2));
        assert_eq!(d.pop(End::Left), DequePopOutcome::Popped(3));
        assert_eq!(d.pop(End::Left), DequePopOutcome::Empty);
        assert_eq!(d.capacity(), 6);
    }

    /// Under real threads (with yields giving solo windows,
    /// satisfying the obstruction-freedom hypothesis) values are
    /// conserved.
    #[test]
    fn concurrent_conservation_with_yielding() {
        const THREADS: u32 = 3;
        const PER_THREAD: u32 = 800;
        let deque: Arc<HlmDeque<u32, YieldBackoff>> =
            Arc::new(HlmDeque::with_manager(16, YieldBackoff));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let deque = Arc::clone(&deque);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let my_end = if t % 2 == 0 { End::Right } else { End::Left };
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        // Bounded *linear* deque: on Full, drain one
                        // from this end to regenerate a null cell. If
                        // the data block has drifted away from this
                        // end (Full with nothing to pop — every null
                        // is on the far side), push there instead.
                        let mut end = my_end;
                        loop {
                            match deque.push(end, v) {
                                DequePushOutcome::Pushed => break,
                                DequePushOutcome::Full => {
                                    if let DequePopOutcome::Popped(v) = deque.pop(end) {
                                        got.push(v);
                                    } else {
                                        end = end.opposite();
                                    }
                                }
                            }
                        }
                        if let DequePopOutcome::Popped(v) = deque.pop(my_end.opposite()) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let DequePopOutcome::Popped(v) = deque.pop(End::Left) {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len(), "no duplicates, nothing lost");
    }
}
