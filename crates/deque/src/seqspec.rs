//! The sequential reference deque (differential-testing oracle).

use std::collections::VecDeque;

use crate::outcome::{DequePopOutcome, DequePushOutcome, End};

/// A single-threaded deque with the **linear-HLM arena semantics**:
/// each end owns a block of null slots, a push consumes a null on its
/// own side (reporting `Full` when only that side's sentinel remains)
/// and a pop returns a null to the popping side.
///
/// This is deliberately *not* a plain bounded `VecDeque`: it is the
/// sequential specification of [`crate::AbortableDeque`]'s observable
/// behaviour, used by the property tests and (conceptually) by any
/// linearizability checking of the deque family.
///
/// ```
/// use cso_deque::{SeqDeque, DequePushOutcome, End};
///
/// let mut d = SeqDeque::new(2); // arena: LN LN RN RN
/// assert_eq!(d.push(End::Right, 1), DequePushOutcome::Pushed);
/// assert_eq!(d.push(End::Right, 2), DequePushOutcome::Full); // right sentinel only
/// assert_eq!(d.push(End::Left, 0), DequePushOutcome::Pushed);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqDeque<V> {
    left_nulls: usize,
    right_nulls: usize,
    items: VecDeque<V>,
}

impl<V: Clone> SeqDeque<V> {
    /// An empty deque over a `capacity + 2`-slot arena, nulls split
    /// like [`crate::AbortableDeque::new`] (left gets the odd slot).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> SeqDeque<V> {
        assert!(capacity > 0, "deque capacity must be positive");
        let left = 1 + capacity.div_ceil(2);
        SeqDeque {
            left_nulls: left,
            right_nulls: capacity + 2 - left,
            items: VecDeque::new(),
        }
    }

    /// Pushes at `end`, honouring the per-side space rule.
    pub fn push(&mut self, end: End, value: V) -> DequePushOutcome {
        match end {
            End::Right => {
                if self.right_nulls == 1 {
                    DequePushOutcome::Full
                } else {
                    self.right_nulls -= 1;
                    self.items.push_back(value);
                    DequePushOutcome::Pushed
                }
            }
            End::Left => {
                if self.left_nulls == 1 {
                    DequePushOutcome::Full
                } else {
                    self.left_nulls -= 1;
                    self.items.push_front(value);
                    DequePushOutcome::Pushed
                }
            }
        }
    }

    /// Pops from `end`, returning a null slot to that side.
    pub fn pop(&mut self, end: End) -> DequePopOutcome<V> {
        let popped = match end {
            End::Right => self.items.pop_back(),
            End::Left => self.items.pop_front(),
        };
        match popped {
            Some(v) => {
                match end {
                    End::Right => self.right_nulls += 1,
                    End::Left => self.left_nulls += 1,
                }
                DequePopOutcome::Popped(v)
            }
            None => DequePopOutcome::Empty,
        }
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The content, left to right.
    #[must_use]
    pub fn items(&self) -> &VecDeque<V> {
        &self.items
    }

    /// Free slots on the given side (including the sentinel).
    #[must_use]
    pub fn nulls(&self, end: End) -> usize {
        match end {
            End::Left => self.left_nulls,
            End::Right => self.right_nulls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_accounting() {
        let mut d: SeqDeque<u32> = SeqDeque::new(3); // arena of 5: LLL RR
        assert_eq!(d.nulls(End::Left), 3);
        assert_eq!(d.nulls(End::Right), 2);
        assert_eq!(d.push(End::Right, 1), DequePushOutcome::Pushed);
        assert_eq!(d.push(End::Right, 2), DequePushOutcome::Full);
        assert_eq!(d.push(End::Left, 0), DequePushOutcome::Pushed);
        assert_eq!(d.push(End::Left, 9), DequePushOutcome::Pushed);
        assert_eq!(d.push(End::Left, 8), DequePushOutcome::Full);
        assert_eq!(d.items().iter().copied().collect::<Vec<_>>(), vec![9, 0, 1]);
        assert_eq!(d.pop(End::Right), DequePopOutcome::Popped(1));
        assert_eq!(d.push(End::Right, 5), DequePushOutcome::Pushed);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_pops() {
        let mut d: SeqDeque<u32> = SeqDeque::new(2);
        assert_eq!(d.pop(End::Left), DequePopOutcome::Empty);
        assert_eq!(d.pop(End::Right), DequePopOutcome::Empty);
    }
}
