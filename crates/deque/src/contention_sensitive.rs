//! Figure 3 over the deque: obstruction-free → starvation-free in
//! one transformation.

use cso_core::{
    AdaptiveGate, BatchStats, CombiningStats, ContentionSensitive, CsConfig, FaultStats, PathStats,
    ProgressCondition, RecoveryStats,
};
use cso_locks::{RawLock, TasLock};
use cso_memory::bits::Bits32;

use crate::abortable::AbortableDeque;
use crate::outcome::{DequeOp, DequePopOutcome, DequePushOutcome, End};

/// The contention-sensitive, **starvation-free** deque: Figure 3
/// applied to the weakest object in the family.
///
/// This instantiation is the sharpest demonstration of the paper's
/// §1.2 remark that its mechanism generalizes: the HLM deque's naive
/// retry loop is only obstruction-free (opposing operations can
/// livelock), yet under the `CONTENTION` + `FLAG`/`TURN` + lock
/// wrapper every invocation terminates — the transformation leaps
/// from the bottom of the progress hierarchy to the top. (Lemma 2's
/// argument carries over verbatim: weak attempts always terminate,
/// and once the in-flight fast-path attempts drain, the lock holder
/// runs solo and must succeed.)
///
/// ```
/// use cso_deque::{CsDeque, DequePushOutcome, DequePopOutcome, End};
///
/// let deque: CsDeque<u32> = CsDeque::new(8, 4);
/// assert_eq!(deque.push_right(0, 1), DequePushOutcome::Pushed);
/// assert_eq!(deque.pop_left(3), DequePopOutcome::Popped(1));
/// ```
#[derive(Debug)]
pub struct CsDeque<V: Bits32, L: RawLock = TasLock> {
    inner: ContentionSensitive<AbortableDeque<V>, L>,
}

impl<V: Bits32> CsDeque<V, TasLock> {
    /// Creates an empty deque for `n` processes with the default TAS
    /// lock.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities (see [`AbortableDeque::new`]) or
    /// if `n == 0`.
    #[must_use]
    pub fn new(capacity: usize, n: usize) -> CsDeque<V, TasLock> {
        CsDeque::with_lock(capacity, TasLock::new(), n)
    }
}

impl<V: Bits32, L: RawLock> CsDeque<V, L> {
    /// Creates an empty deque using `lock` (deadlock-free suffices)
    /// for the slow path.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities or if `n == 0`.
    #[must_use]
    pub fn with_lock(capacity: usize, lock: L, n: usize) -> CsDeque<V, L> {
        CsDeque::with_config(capacity, lock, n, CsConfig::PAPER)
    }

    /// Creates a deque with an explicit mechanism selection (the E8
    /// ablations; [`CsConfig::COMBINING`] adds the flat-combining slow
    /// path).
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities or if `n == 0`.
    #[must_use]
    pub fn with_config(capacity: usize, lock: L, n: usize, config: CsConfig) -> CsDeque<V, L> {
        CsDeque {
            inner: ContentionSensitive::with_config(AbortableDeque::new(capacity), lock, n, config),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::StarvationFree;

    /// Pushes at `end` on behalf of `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn push(&self, proc: usize, end: End, value: V) -> DequePushOutcome {
        self.inner
            .apply(proc, &DequeOp::Push(end, value))
            .expect_push()
    }

    /// Pops from `end` on behalf of `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn pop(&self, proc: usize, end: End) -> DequePopOutcome<V> {
        self.inner.apply(proc, &DequeOp::Pop(end)).expect_pop()
    }

    /// `push(proc, End::Left, value)`.
    pub fn push_left(&self, proc: usize, value: V) -> DequePushOutcome {
        self.push(proc, End::Left, value)
    }

    /// `push(proc, End::Right, value)`.
    pub fn push_right(&self, proc: usize, value: V) -> DequePushOutcome {
        self.push(proc, End::Right, value)
    }

    /// `pop(proc, End::Left)`.
    pub fn pop_left(&self, proc: usize) -> DequePopOutcome<V> {
        self.pop(proc, End::Left)
    }

    /// `pop(proc, End::Right)`.
    pub fn pop_right(&self, proc: usize) -> DequePopOutcome<V> {
        self.pop(proc, End::Right)
    }

    /// The total value capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.inner().capacity()
    }

    /// Racy size snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.inner().len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.inner().is_empty()
    }

    /// The number of processes served.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Fast-path vs lock-path completion counts.
    pub fn path_stats(&self) -> PathStats {
        self.inner.stats()
    }

    /// Survived slow-path panics and deadline expiries (see
    /// [`ContentionSensitive::fault_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    /// Combiner-tenure totals of the flat-combining slow path
    /// (all zero unless built with [`CsConfig::with_combining`]).
    pub fn combining_stats(&self) -> CombiningStats {
        self.inner.combining_stats()
    }

    /// Batches seen by the underlying abortable deque through its
    /// batch-apply hooks.
    pub fn batch_stats(&self) -> BatchStats {
        self.inner.inner().batch_stats()
    }

    /// The adaptive contention gate (consulted only when built with
    /// [`CsConfig::with_adaptive_gate`]).
    pub fn gate(&self) -> &AdaptiveGate {
        self.inner.gate()
    }

    /// Whether the slow path is permanently closed because the
    /// crash-recovery succession budget ran out (see
    /// [`ContentionSensitive::is_poisoned`]).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Crash-recovery counters, or `None` unless built with
    /// [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::recovery_stats`]).
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.inner.recovery_stats()
    }

    /// The liveness registry driving crash recovery, or `None` unless
    /// built with [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::liveness`]).
    #[must_use]
    pub fn liveness(&self) -> Option<&std::sync::Arc<cso_core::Liveness>> {
        self.inner.liveness()
    }

    /// Registers this deque's live metrics under `prefix` (see
    /// [`ContentionSensitive::attach_metrics`]; first call wins, and
    /// unattached deques keep Theorem 1's access budget untouched).
    pub fn attach_metrics(&self, registry: &cso_metrics::Registry, prefix: &str) {
        self.inner.attach_metrics(registry, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn deque_semantics_solo() {
        let d: CsDeque<u32> = CsDeque::new(6, 2);
        assert_eq!(d.push_right(0, 2), DequePushOutcome::Pushed);
        assert_eq!(d.push_left(1, 1), DequePushOutcome::Pushed);
        assert_eq!(d.push_right(0, 3), DequePushOutcome::Pushed);
        assert_eq!(d.pop_left(0), DequePopOutcome::Popped(1));
        assert_eq!(d.pop_right(1), DequePopOutcome::Popped(3));
        assert_eq!(d.pop_right(1), DequePopOutcome::Popped(2));
        assert_eq!(d.pop_left(0), DequePopOutcome::Empty);
        assert_eq!(d.n(), 2);
        assert_eq!(d.capacity(), 6);
    }

    #[test]
    fn solo_ops_take_the_fast_path() {
        let d: CsDeque<u32> = CsDeque::new(4, 2);
        d.push_left(0, 1);
        d.pop_right(0);
        let stats = d.path_stats();
        assert_eq!(stats.locked, 0);
        assert_eq!(stats.fast, 2);
    }

    /// Every strong operation terminates with a definitive answer
    /// under heavy two-sided contention — the starvation-freedom
    /// boost over a merely obstruction-free object.
    #[test]
    fn concurrent_strong_ops_all_terminate_and_conserve() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 800;
        let deque: Arc<CsDeque<u32>> = Arc::new(CsDeque::new(16, THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let deque = Arc::clone(&deque);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let my_end = if t % 2 == 0 { End::Right } else { End::Left };
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        loop {
                            match deque.push(t as usize, my_end, v) {
                                DequePushOutcome::Pushed => break,
                                DequePushOutcome::Full => {
                                    if let DequePopOutcome::Popped(v) =
                                        deque.pop(t as usize, my_end)
                                    {
                                        got.push(v);
                                    }
                                }
                            }
                        }
                        if let DequePopOutcome::Popped(v) = deque.pop(t as usize, my_end.opposite())
                        {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let DequePopOutcome::Popped(v) = deque.pop_left(0) {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
    }

    /// Forced-slow combining on the deque: both-end traffic conserves
    /// values and the tenure accounting holds.
    #[test]
    fn combining_slow_path_conserves_and_reports_batches() {
        use cso_locks::TasLock;
        const THREADS: u32 = 3;
        const PER_THREAD: u32 = 600;
        let config = CsConfig::PAPER.without_fast_path().with_combining();
        let deque: Arc<CsDeque<u32>> = Arc::new(CsDeque::with_config(
            (THREADS * PER_THREAD) as usize,
            TasLock::new(),
            THREADS as usize,
            config,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let deque = Arc::clone(&deque);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let my_end = if t % 2 == 0 { End::Right } else { End::Left };
                    for i in 0..PER_THREAD {
                        loop {
                            // The arena splits capacity per end, so a
                            // side can fill up: drain our own end then.
                            match deque.push(t as usize, my_end, t * PER_THREAD + i) {
                                DequePushOutcome::Pushed => break,
                                DequePushOutcome::Full => {
                                    if let DequePopOutcome::Popped(v) =
                                        deque.pop(t as usize, my_end)
                                    {
                                        got.push(v);
                                    }
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "duplicate value {v}");
            }
        }
        while let DequePopOutcome::Popped(v) = deque.pop_left(0) {
            assert!(seen.insert(v), "duplicate value {v}");
        }
        assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);

        let paths = deque.path_stats();
        let combining = deque.combining_stats();
        assert_eq!(paths.fast, 0, "fast path disabled");
        assert_eq!(combining.batches + combining.combined, paths.locked);
        assert_eq!(deque.batch_stats().applied, combining.combined);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_proc() {
        let d: CsDeque<u32> = CsDeque::new(4, 2);
        let _ = d.push_left(2, 1);
    }
}
