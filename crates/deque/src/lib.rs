//! The obstruction-free double-ended queue — the paper's reference
//! \[8\] (Herlihy, Luchangco & Moir, ICDCS'03), integrated into the
//! Mostefaoui–Raynal object family.
//!
//! The paper's progress hierarchy (§1.2) has three rungs. The stack
//! and queue crates populate the top two (non-blocking,
//! starvation-free); this crate supplies a *genuinely
//! obstruction-free-only* object for the bottom rung — the HLM linear
//! bounded deque, whose two-`C&S` operations can abort **each other**
//! symmetrically, so naive retrying guarantees only solo termination:
//!
//! | Type | Progress | How |
//! |---|---|---|
//! | [`AbortableDeque`] | abortable | single attempt of the HLM operation |
//! | [`HlmDeque`] | **obstruction-free** | retry ⊥ (the original HLM loop) |
//! | [`CsDeque`] | starvation-free | Figure 3 over the abortable deque |
//!
//! That last row is the paper's §1.2 observation made concrete: the
//! contention-sensitive transformation is also an
//! obstruction-freedom booster — it lifts the weakest rung straight
//! to the strongest.
//!
//! # The algorithm (linear bounded HLM deque)
//!
//! An array `A[0..=m]` always matches the pattern `LN⁺ DATA* RN⁺`
//! (left-null block, data, right-null block). A right push finds the
//! boundary (leftmost `RN`), *bumps* the sequence number of the slot
//! left of it (serializing against neighbours), then converts the
//! `RN` slot to data; pops mirror. Both ends consume their own null
//! block: `rightpush` reports `Full` when only the right sentinel
//! remains **even if space is left on the other side** — the
//! documented semantics of the linear (non-circular) HLM variant,
//! mirrored exactly by [`SeqDeque`].
//!
//! # Example
//!
//! ```
//! use cso_deque::{CsDeque, DequePushOutcome, DequePopOutcome};
//!
//! // Capacity 8 (per the two-sided arena rules), 2 processes.
//! let deque: CsDeque<u32> = CsDeque::new(8, 2);
//! assert_eq!(deque.push_right(0, 1), DequePushOutcome::Pushed);
//! assert_eq!(deque.push_left(1, 2), DequePushOutcome::Pushed);
//! assert_eq!(deque.pop_right(0), DequePopOutcome::Popped(1));
//! assert_eq!(deque.pop_right(0), DequePopOutcome::Popped(2));
//! assert_eq!(deque.pop_left(1), DequePopOutcome::Empty);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod abortable;
mod contention_sensitive;
mod obstruction_free;
mod outcome;
mod seqspec;

pub use abortable::AbortableDeque;
pub use contention_sensitive::CsDeque;
pub use obstruction_free::HlmDeque;
pub use outcome::{DequeOp, DequePopOutcome, DequePushOutcome, DequeResponse, End};
pub use seqspec::SeqDeque;

/// A value storable in the deque's packed registers — an alias for
/// [`cso_memory::bits::Bits32`].
pub use cso_memory::bits::Bits32 as DequeValue;
