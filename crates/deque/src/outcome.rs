//! Operation descriptors and outcomes for the deque family.

/// Which end of the deque an operation works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum End {
    /// The left end (the `LN` side).
    Left,
    /// The right end (the `RN` side).
    Right,
}

impl End {
    /// The opposite end.
    #[must_use]
    pub fn opposite(self) -> End {
        match self {
            End::Left => End::Right,
            End::Right => End::Left,
        }
    }
}

/// The definitive (non-⊥) result of a push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequePushOutcome {
    /// The value is now at the chosen end.
    Pushed,
    /// That end's null block is down to its sentinel — no room on
    /// this side (linear HLM semantics; the other side may have
    /// space).
    Full,
}

impl DequePushOutcome {
    /// True when the value landed in the deque.
    #[must_use]
    pub fn is_pushed(self) -> bool {
        matches!(self, DequePushOutcome::Pushed)
    }
}

/// The definitive (non-⊥) result of a pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequePopOutcome<V> {
    /// The value that was at the chosen end.
    Popped(V),
    /// The deque held no values.
    Empty,
}

impl<V> DequePopOutcome<V> {
    /// Converts to an `Option`.
    pub fn into_option(self) -> Option<V> {
        match self {
            DequePopOutcome::Popped(v) => Some(v),
            DequePopOutcome::Empty => None,
        }
    }

    /// True when a value was returned.
    #[must_use]
    pub fn is_popped(&self) -> bool {
        matches!(self, DequePopOutcome::Popped(_))
    }
}

impl<V> From<DequePopOutcome<V>> for Option<V> {
    fn from(outcome: DequePopOutcome<V>) -> Option<V> {
        outcome.into_option()
    }
}

/// A deque operation descriptor for the generic transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeOp<V> {
    /// Push `v` at `End`.
    Push(End, V),
    /// Pop from `End`.
    Pop(End),
}

/// The response to a [`DequeOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeResponse<V> {
    /// Response to a push.
    Push(DequePushOutcome),
    /// Response to a pop.
    Pop(DequePopOutcome<V>),
}

impl<V> DequeResponse<V> {
    /// Extracts a push outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is a pop response.
    #[must_use]
    pub fn expect_push(self) -> DequePushOutcome {
        match self {
            DequeResponse::Push(outcome) => outcome,
            DequeResponse::Pop(_) => panic!("expected a push response, got a pop response"),
        }
    }

    /// Extracts a pop outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is a push response.
    #[must_use]
    pub fn expect_pop(self) -> DequePopOutcome<V> {
        match self {
            DequeResponse::Pop(outcome) => outcome,
            DequeResponse::Push(_) => panic!("expected a pop response, got a push response"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ends_mirror() {
        assert_eq!(End::Left.opposite(), End::Right);
        assert_eq!(End::Right.opposite(), End::Left);
    }

    #[test]
    fn conversions_and_predicates() {
        assert!(DequePushOutcome::Pushed.is_pushed());
        assert!(!DequePushOutcome::Full.is_pushed());
        assert_eq!(DequePopOutcome::Popped(3).into_option(), Some(3));
        assert_eq!(DequePopOutcome::<u32>::Empty.into_option(), None);
        assert!(DequePopOutcome::Popped(1).is_popped());
    }

    #[test]
    #[should_panic(expected = "expected a pop response")]
    fn mismatched_extractor_panics() {
        let _ = DequeResponse::<u32>::Push(DequePushOutcome::Pushed).expect_pop();
    }
}
