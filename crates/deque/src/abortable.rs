//! The HLM deque as an abortable object (single-attempt operations).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use cso_core::{Abortable, Aborted, BatchCounters, BatchStats};
use cso_memory::bits::Bits32;
use cso_memory::fail_point;
use cso_memory::packed::{DequeState, DequeWord};
use cso_memory::reg::Reg64;
use cso_trace::{probe, Event};

use crate::outcome::{DequeOp, DequePopOutcome, DequePushOutcome, DequeResponse, End};

/// One attempt of an HLM deque operation (the body of the
/// obstruction-free loop), packaged as an [`Abortable`] object.
///
/// The array `A[0..=m]` (with `m = capacity + 1`) always matches
/// `LN⁺ DATA* RN⁺`; `A[0]` stays `LN` and `A[m]` stays `RN` forever
/// (the sentinels). An operation:
///
/// 1. **scans** for its boundary (leftmost `RN` for right-end
///    operations, rightmost `LN` for left-end ones), remembering the
///    neighbour word read on the way;
/// 2. for the `Full`/`Empty` answers, **re-validates** both boundary
///    words (sequence numbers make re-reads conclusive) and
///    linearizes at the validated instant;
/// 3. otherwise performs the HLM two-`C&S`: *bump* the neighbour's
///    sequence number, then convert the boundary slot. Any failed
///    `C&S` aborts — and the bump alone changes no abstract state, so
///    aborts are effect-free.
///
/// Solo attempts never abort; concurrent attempts at either end may
/// abort each other (even push-vs-push at *opposite* ends when the
/// deque is near-empty — the boundaries touch), which is exactly why
/// naive retrying yields only obstruction-freedom.
///
/// ```
/// use cso_deque::{AbortableDeque, DequePushOutcome, DequePopOutcome, End};
///
/// let deque: AbortableDeque<u32> = AbortableDeque::new(4);
/// assert_eq!(deque.try_push(End::Right, 7), Ok(DequePushOutcome::Pushed));
/// assert_eq!(deque.try_pop(End::Left), Ok(DequePopOutcome::Popped(7)));
/// assert_eq!(deque.try_pop(End::Right), Ok(DequePopOutcome::Empty));
/// ```
#[derive(Debug)]
pub struct AbortableDeque<V> {
    slots: Box<[Reg64]>,
    attempts: AtomicU64,
    aborts: AtomicU64,
    batch: BatchCounters,
    _values: PhantomData<V>,
}

impl<V: Bits32> AbortableDeque<V> {
    /// Creates an empty deque over a `capacity + 2`-slot arena.
    ///
    /// Capacity is shared between the two ends per the linear-HLM
    /// rules: each end can absorb as many pushes as there are nulls
    /// on its side. Initially the nulls split as evenly as possible
    /// (left gets the extra slot when `capacity` is odd).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `capacity > 60_000`.
    #[must_use]
    pub fn new(capacity: usize) -> AbortableDeque<V> {
        assert!(capacity > 0, "deque capacity must be positive");
        assert!(capacity <= 60_000, "deque capacity out of range");
        let m = capacity + 1;
        // LN block: indices 0..=capacity/2 + (odd bonus); RN the rest.
        let left_block = 1 + capacity.div_ceil(2);
        let slots = (0..=m)
            .map(|i| {
                let state = if i < left_block {
                    DequeState::LeftNull
                } else {
                    DequeState::RightNull
                };
                Reg64::new(
                    DequeWord {
                        state,
                        seq: 0,
                        value: 0,
                    }
                    .pack(),
                )
            })
            .collect();
        AbortableDeque {
            slots,
            attempts: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            batch: BatchCounters::new(),
            _values: PhantomData,
        }
    }

    /// The total value capacity of the arena.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len() - 2
    }

    /// Racy snapshot of the number of stored values (exact only in
    /// quiescence).
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.slots.len())
            .filter(|&i| DequeWord::unpack(self.slots[i].read()).state == DequeState::Data)
            .count()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn word(&self, i: usize) -> DequeWord {
        DequeWord::unpack(self.slots[i].read())
    }

    /// Finds the right boundary: the leftmost `RN` index `k` plus the
    /// neighbour word `A[k-1]` read just before it. `None` on a torn
    /// scan (concurrent restructuring) — the caller aborts.
    fn right_boundary(&self) -> Option<(usize, DequeWord, DequeWord)> {
        let mut prev = self.word(0);
        if prev.state == DequeState::RightNull {
            return None; // A[0] must be LN; torn read under concurrency
        }
        for k in 1..self.slots.len() {
            let cur = self.word(k);
            if cur.state == DequeState::RightNull {
                return Some((k, prev, cur));
            }
            prev = cur;
        }
        None
    }

    /// Finds the left boundary: the rightmost `LN` index `j` plus the
    /// neighbour word `A[j+1]` read just before it.
    fn left_boundary(&self) -> Option<(usize, DequeWord, DequeWord)> {
        let m = self.slots.len() - 1;
        let mut next = self.word(m);
        if next.state == DequeState::LeftNull {
            return None;
        }
        for j in (0..m).rev() {
            let cur = self.word(j);
            if cur.state == DequeState::LeftNull {
                return Some((j, cur, next));
            }
            next = cur;
        }
        None
    }

    /// One push attempt at `end`.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥, no effect) when a concurrent operation
    /// interfered. Never aborts solo.
    pub fn try_push(&self, end: End, value: V) -> Result<DequePushOutcome, Aborted> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("deque::push", {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        let result = match end {
            End::Right => self.try_push_right(value),
            End::Left => self.try_push_left(value),
        };
        if result.is_err() {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail(match end {
                End::Right => "deque::right",
                End::Left => "deque::left",
            }));
        }
        result
    }

    /// One pop attempt at `end`.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥, no effect) when a concurrent operation
    /// interfered. Never aborts solo.
    pub fn try_pop(&self, end: End) -> Result<DequePopOutcome<V>, Aborted> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("deque::pop", {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        let result = match end {
            End::Right => self.try_pop_right(),
            End::Left => self.try_pop_left(),
        };
        if result.is_err() {
            self.aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail(match end {
                End::Right => "deque::right",
                End::Left => "deque::left",
            }));
        }
        result
    }

    fn try_push_right(&self, value: V) -> Result<DequePushOutcome, Aborted> {
        let (k, prev, cur) = self.right_boundary().ok_or(Aborted)?;
        if k == self.slots.len() - 1 {
            // Only the right sentinel remains: Full, if the boundary
            // is real — validate both words (seq numbers make equal
            // re-reads conclusive; both held at the instant between).
            if self.word(k - 1) == prev && self.word(k) == cur {
                return Ok(DequePushOutcome::Full);
            }
            return Err(Aborted);
        }
        // The HLM two-C&S: bump the neighbour, then take the slot.
        if !self.slots[k - 1].cas(prev.pack(), prev.bumped().pack()) {
            return Err(Aborted);
        }
        let data = DequeWord {
            state: DequeState::Data,
            seq: cur.seq.wrapping_add(1),
            value: value.to_bits(),
        };
        if self.slots[k].cas(cur.pack(), data.pack()) {
            Ok(DequePushOutcome::Pushed)
        } else {
            Err(Aborted)
        }
    }

    fn try_push_left(&self, value: V) -> Result<DequePushOutcome, Aborted> {
        let (j, cur, next) = self.left_boundary().ok_or(Aborted)?;
        if j == 0 {
            if self.word(j + 1) == next && self.word(j) == cur {
                return Ok(DequePushOutcome::Full);
            }
            return Err(Aborted);
        }
        if !self.slots[j + 1].cas(next.pack(), next.bumped().pack()) {
            return Err(Aborted);
        }
        let data = DequeWord {
            state: DequeState::Data,
            seq: cur.seq.wrapping_add(1),
            value: value.to_bits(),
        };
        if self.slots[j].cas(cur.pack(), data.pack()) {
            Ok(DequePushOutcome::Pushed)
        } else {
            Err(Aborted)
        }
    }

    fn try_pop_right(&self) -> Result<DequePopOutcome<V>, Aborted> {
        let (k, prev, cur) = self.right_boundary().ok_or(Aborted)?;
        if prev.state == DequeState::LeftNull {
            // Nothing between the blocks: Empty, validated.
            if self.word(k - 1) == prev && self.word(k) == cur {
                return Ok(DequePopOutcome::Empty);
            }
            return Err(Aborted);
        }
        // Bump the RN first, then reclaim the data slot (HLM order).
        if !self.slots[k].cas(cur.pack(), cur.bumped().pack()) {
            return Err(Aborted);
        }
        let hole = DequeWord {
            state: DequeState::RightNull,
            seq: prev.seq.wrapping_add(1),
            value: 0,
        };
        if self.slots[k - 1].cas(prev.pack(), hole.pack()) {
            Ok(DequePopOutcome::Popped(V::from_bits(prev.value)))
        } else {
            Err(Aborted)
        }
    }

    fn try_pop_left(&self) -> Result<DequePopOutcome<V>, Aborted> {
        let (j, cur, next) = self.left_boundary().ok_or(Aborted)?;
        if next.state == DequeState::RightNull {
            if self.word(j + 1) == next && self.word(j) == cur {
                return Ok(DequePopOutcome::Empty);
            }
            return Err(Aborted);
        }
        if !self.slots[j].cas(cur.pack(), cur.bumped().pack()) {
            return Err(Aborted);
        }
        let hole = DequeWord {
            state: DequeState::LeftNull,
            seq: next.seq.wrapping_add(1),
            value: 0,
        };
        if self.slots[j + 1].cas(next.pack(), hole.pack()) {
            Ok(DequePopOutcome::Popped(V::from_bits(next.value)))
        } else {
            Err(Aborted)
        }
    }

    /// Attempt/abort counters.
    #[must_use]
    pub fn abort_counts(&self) -> (u64, u64) {
        (
            self.attempts.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    /// Combining-batch totals observed through the
    /// [`Abortable::batch_begin`] / [`Abortable::batch_end`] hooks
    /// (all zero unless a combining transformation drives this deque).
    #[must_use]
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.snapshot()
    }
}

impl<V: Bits32> Abortable for AbortableDeque<V> {
    type Op = DequeOp<V>;
    type Response = DequeResponse<V>;

    fn try_apply(&self, op: &DequeOp<V>) -> Result<DequeResponse<V>, Aborted> {
        match op {
            DequeOp::Push(end, v) => self.try_push(*end, *v).map(DequeResponse::Push),
            DequeOp::Pop(end) => self.try_pop(*end).map(DequeResponse::Pop),
        }
    }

    fn batch_begin(&self, pending: usize) {
        self.batch.begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        self.batch.end(applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::backoff::XorShift64;

    #[test]
    fn deque_semantics_solo() {
        let d: AbortableDeque<u32> = AbortableDeque::new(4);
        assert!(d.is_empty());
        assert_eq!(d.try_push(End::Right, 1), Ok(DequePushOutcome::Pushed));
        assert_eq!(d.try_push(End::Right, 2), Ok(DequePushOutcome::Pushed));
        assert_eq!(d.try_push(End::Left, 0), Ok(DequePushOutcome::Pushed));
        assert_eq!(d.len(), 3);
        // Content is now 0 1 2, left to right.
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(0)));
        assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Popped(2)));
        assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Popped(1)));
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Empty));
        assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Empty));
        let (attempts, aborts) = d.abort_counts();
        assert_eq!(attempts, 8);
        assert_eq!(aborts, 0, "solo attempts never abort");
    }

    #[test]
    fn linear_full_semantics_per_side() {
        // Capacity 2: arena LN LN RN RN (left block 2, right block 2).
        let d: AbortableDeque<u32> = AbortableDeque::new(2);
        assert_eq!(d.try_push(End::Right, 1), Ok(DequePushOutcome::Pushed));
        // The right block is down to its sentinel: right side full...
        assert_eq!(d.try_push(End::Right, 2), Ok(DequePushOutcome::Full));
        // ...but the left side still has a spare null.
        assert_eq!(d.try_push(End::Left, 0), Ok(DequePushOutcome::Pushed));
        assert_eq!(d.try_push(End::Left, 9), Ok(DequePushOutcome::Full));
        assert_eq!(d.len(), 2);
        // Popping right frees right-side space again.
        assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Popped(1)));
        assert_eq!(d.try_push(End::Right, 5), Ok(DequePushOutcome::Pushed));
    }

    #[test]
    fn pops_restore_space_on_the_popping_side() {
        let d: AbortableDeque<u32> = AbortableDeque::new(4);
        for v in 0..2 {
            assert!(d.try_push(End::Right, v).unwrap().is_pushed());
        }
        // Left pops migrate the boundary: left space grows.
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(0)));
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(1)));
        // Left block is now larger; pushes on the left still work.
        assert!(d.try_push(End::Left, 7).unwrap().is_pushed());
        assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Popped(7)));
    }

    #[test]
    fn used_as_stack_from_either_end() {
        let d: AbortableDeque<i32> = AbortableDeque::new(6);
        for v in 1..=3 {
            d.try_push(End::Right, v).unwrap();
        }
        for v in (1..=3).rev() {
            assert_eq!(d.try_pop(End::Right), Ok(DequePopOutcome::Popped(v)));
        }
        for v in 1..=3 {
            d.try_push(End::Left, v).unwrap();
        }
        for v in (1..=3).rev() {
            assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(v)));
        }
    }

    #[test]
    fn used_as_queue_across_ends() {
        let d: AbortableDeque<u32> = AbortableDeque::new(4);
        // Enqueue right, dequeue left = FIFO, within right-side space.
        d.try_push(End::Right, 1).unwrap();
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(1)));
        d.try_push(End::Right, 2).unwrap();
        assert_eq!(d.try_pop(End::Left), Ok(DequePopOutcome::Popped(2)));
    }

    #[test]
    fn abortable_trait_round_trips() {
        let d: AbortableDeque<u32> = AbortableDeque::new(4);
        let resp = d.try_apply(&DequeOp::Push(End::Left, 3)).unwrap();
        assert_eq!(resp.expect_push(), DequePushOutcome::Pushed);
        let resp = d.try_apply(&DequeOp::Pop(End::Right)).unwrap();
        assert_eq!(resp.expect_pop(), DequePopOutcome::Popped(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = AbortableDeque::<u32>::new(0);
    }

    /// Solo differential test against the sequential reference, over
    /// randomized operation sequences.
    #[test]
    fn random_ops_match_sequential_spec() {
        let mut rng = XorShift64::new(0xDE9E_CAFE);
        for _ in 0..256u64 {
            let deque: AbortableDeque<u16> = AbortableDeque::new(6);
            let mut reference = crate::seqspec::SeqDeque::new(6);
            let len = (rng.next_u64() % 200) as usize;
            for _ in 0..len {
                let word = rng.next_u64();
                let end = if word & 2 == 0 { End::Left } else { End::Right };
                let v = (word >> 2) as u16;
                if word & 1 == 0 {
                    let got = deque.try_push(end, v).expect("solo never aborts");
                    assert_eq!(got, reference.push(end, v));
                } else {
                    let got = deque.try_pop(end).expect("solo never aborts");
                    assert_eq!(got, reference.pop(end));
                }
            }
            assert_eq!(deque.len(), reference.len());
        }
    }
}
