//! Causal attribution through the deque's combining slow path — the
//! deque reuses the Figure 3 transformation, so a combined push/pop
//! must carry a `helped-by-combiner` edge exactly like the stack and
//! queue.
#![cfg(feature = "trace")]

use std::sync::Arc;

use cso_core::CsConfig;
use cso_deque::{CsDeque, DequePopOutcome, DequePushOutcome};
use cso_locks::TasLock;
use cso_trace::{probe, Event};

#[test]
fn combined_deque_ops_are_attributed_to_their_combiner() {
    // Small enough that no per-thread ring (4096 slots) evicts events.
    const THREADS: u32 = 3;
    const PER_THREAD: u32 = 60;
    probe::clear();
    let config = CsConfig::PAPER.without_fast_path().with_combining();
    let deque: Arc<CsDeque<u32>> = Arc::new(CsDeque::with_config(
        1024,
        TasLock::new(),
        THREADS as usize,
        config,
    ));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let deque = Arc::clone(&deque);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let v = t * PER_THREAD + i;
                    let outcome = if t % 2 == 0 {
                        deque.push_left(t as usize, v)
                    } else {
                        deque.push_right(t as usize, v)
                    };
                    assert_eq!(outcome, DequePushOutcome::Pushed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut drained = 0;
    while let DequePopOutcome::Popped(_) = deque.pop_left(0) {
        drained += 1;
    }
    assert_eq!(drained, THREADS * PER_THREAD);

    let trace = probe::collect();
    assert_eq!(trace.dropped, 0, "rings must not have truncated");
    let edges: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e.event {
            Event::HelpedByCombiner(tid) => Some((e.thread, tid)),
            _ => None,
        })
        .collect();
    assert_eq!(
        edges.len() as u64,
        deque.combining_stats().combined,
        "one helped-by edge per combined operation"
    );
    for (owner, helper) in edges {
        assert_ne!(owner, helper, "nobody combines for themselves");
    }
}
