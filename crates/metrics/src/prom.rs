//! Prometheus text exposition (format version 0.0.4) and the JSON
//! equivalent, rendered from a [`Snapshot`].

use std::fmt::Write as _;

use crate::json::Json;
use crate::registry::Snapshot;

/// Renders the snapshot in the Prometheus text exposition format:
///
/// * counters as `# TYPE <name> counter` plus one sample;
/// * gauges as `# TYPE <name> gauge`;
/// * timers as a `summary` — `quantile="0.5"/"0.9"/"0.99"` samples
///   (bucket upper bounds, ≤6.25% above the true sample) plus
///   `_sum` / `_count`, and a companion `<name>_max` gauge (the exact
///   maximum, which a summary cannot express).
///
/// All values are nanoseconds for timers; consumers divide as needed.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(*value));
    }
    for (name, hist) in &snap.timers {
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", hist.p50_ns);
        let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", hist.p90_ns);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", hist.p99_ns);
        // The histogram keeps an exact running sum but snapshots only
        // the mean; mean × count restores the sum to ±count/2 ns.
        let _ = writeln!(
            out,
            "{name}_sum {}",
            hist.mean_ns.saturating_mul(hist.count)
        );
        let _ = writeln!(out, "{name}_count {}", hist.count);
        let _ = writeln!(out, "# TYPE {name}_max gauge");
        let _ = writeln!(out, "{name}_max {}", hist.max_ns);
    }
    out
}

/// Renders the snapshot as a JSON object:
///
/// ```json
/// {
///   "counters": {"name": 1},
///   "gauges": {"name": 0.5},
///   "timers": {"name": {"count": 1, "mean_ns": 5, "p50_ns": 5,
///                        "p90_ns": 5, "p99_ns": 5, "max_ns": 5}}
/// }
/// ```
#[must_use]
pub fn render_json(snap: &Snapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), Json::U64(*v)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(n, v)| (n.clone(), Json::F64(*v)))
        .collect();
    let timers = snap
        .timers
        .iter()
        .map(|(n, h)| {
            (
                n.clone(),
                Json::obj()
                    .field("count", h.count)
                    .field("mean_ns", h.mean_ns)
                    .field("p50_ns", h.p50_ns)
                    .field("p90_ns", h.p90_ns)
                    .field("p99_ns", h.p99_ns)
                    .field("max_ns", h.max_ns),
            )
        })
        .collect();
    Json::obj()
        .field("counters", Json::Obj(counters))
        .field("gauges", Json::Obj(gauges))
        .field("timers", Json::Obj(timers))
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Structural validation of a Prometheus text page: every line is a
/// comment (`# HELP` / `# TYPE`), blank, or `<name>[{labels}] <value>`
/// with a valid metric name and a parseable value. Returns the first
/// offending line. Used by the CI scrape smoke test.
///
/// # Errors
///
/// `Err((line_number, line))`, 1-based, on the first malformed line.
pub fn validate_prometheus(page: &str) -> Result<(), (usize, String)> {
    for (i, line) in page.lines().enumerate() {
        let bad = || Err((i + 1, line.to_owned()));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("HELP" | "TYPE") if words.next().is_some() => continue,
                _ => return bad(),
            }
        }
        // Sample line: name[{labels}] value [timestamp]
        let rest =
            line.trim_start_matches(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if rest.len() == line.len() {
            return bad(); // no metric name at all
        }
        let rest = if let Some(after) = rest.strip_prefix('{') {
            match after.find('}') {
                Some(end) => &after[end + 1..],
                None => return bad(),
            }
        } else {
            rest
        };
        let mut words = rest.split_whitespace();
        let Some(value) = words.next() else {
            return bad();
        };
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf") {
            return bad();
        }
        if let Some(ts) = words.next() {
            if ts.parse::<i64>().is_err() {
                return bad();
            }
        }
        if words.next().is_some() {
            return bad();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("cs_ops_fast_total").add(10);
        reg.counter("cs_ops_locked_total").add(2);
        reg.gauge("cs_gate_abort_ewma").set(0.125);
        let t = reg.timer("cs_fast_ns");
        for i in 1..=100 {
            t.record_ns(i * 10);
        }
        reg.snapshot()
    }

    #[test]
    fn prometheus_page_has_expected_series() {
        let page = render_prometheus(&sample());
        assert!(page.contains("# TYPE cs_ops_fast_total counter"));
        assert!(page.contains("cs_ops_fast_total 10"));
        assert!(page.contains("# TYPE cs_gate_abort_ewma gauge"));
        assert!(page.contains("cs_gate_abort_ewma 0.125"));
        assert!(page.contains("# TYPE cs_fast_ns summary"));
        assert!(page.contains("cs_fast_ns{quantile=\"0.5\"}"));
        assert!(page.contains("cs_fast_ns_count 100"));
        assert!(page.contains("cs_fast_ns_max 1000"));
        validate_prometheus(&page).expect("page validates");
    }

    #[test]
    fn json_snapshot_round_trips() {
        let json = render_json(&sample());
        let parsed = Json::parse(&json.render()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("cs_ops_fast_total"))
                .and_then(Json::as_u64),
            Some(10)
        );
        assert_eq!(
            parsed
                .get("timers")
                .and_then(|t| t.get("cs_fast_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(100)
        );
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        assert!(validate_prometheus("just words\n").is_err());
        assert!(validate_prometheus("# FOO bar\n").is_err());
        assert!(validate_prometheus("name notanumber\n").is_err());
        assert!(validate_prometheus("name{unclosed 1\n").is_err());
        assert!(validate_prometheus("name 1 2 3\n").is_err());
        assert!(validate_prometheus("name 1\nname{l=\"x\"} 2.5\n# TYPE name counter\n").is_ok());
        assert!(validate_prometheus("g NaN\ng2 +Inf\n").is_ok());
    }
}
