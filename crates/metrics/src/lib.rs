//! # `cso-metrics` — live metrics for contention-sensitive objects
//!
//! The offline story (bench tables, `cso-trace` rings, the step
//! auditor) answers "what happened during that run"; this crate
//! answers "what is the object doing *right now*". It provides:
//!
//! * a [`Registry`] of wait-free, per-thread-sharded [`Counter`]s,
//!   [`Gauge`]s and [`LogHistogram`]-backed [`Timer`]s
//!   ([`registry`]) — cheap enough to leave attached to a production
//!   object (one relaxed `fetch_add` on a cache-padded shard per
//!   increment, no locks on the hot path);
//! * exporters: Prometheus text exposition ([`prom`]) and JSON
//!   ([`json`]), both hand-rolled because the workspace builds
//!   `--offline` with zero external dependencies;
//! * a std-only scrape endpoint ([`serve::MetricsServer`]) on
//!   `std::net::TcpListener`, plus a headless periodic dump mode
//!   ([`serve::PeriodicDump`]).
//!
//! The object crates integrate via `attach_metrics` methods
//! (`ContentionSensitive`, `StarvationFree`, and the `CsStack` /
//! `CsQueue` / `CsDeque` wrappers): once attached, a live object
//! exposes its fast/locked/combining path mix, abort rate, EWMA gate
//! state, and per-path latency quantiles. Attachment is optional and
//! `&self`; an object with no registry attached pays one uncounted
//! atomic load per operation, so the paper's Theorem 1 step budgets
//! (six *counted* shared accesses contention-free) are unchanged.
//!
//! [`LogHistogram`]: cso_trace::LogHistogram

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod json;
pub mod prom;
pub mod registry;
pub mod serve;

pub use json::Json;
pub use registry::{Counter, Gauge, Registry, Snapshot, Timer};
pub use serve::{MetricsServer, PeriodicDump, RouteHandler, Routes};
