//! A minimal JSON value: build, render, parse.
//!
//! The workspace is deliberately dependency-free (it builds
//! `--offline`), so the JSON spoken by the exporters, the bench
//! report writer and the `cso-analyze` validators lives here —
//! one small, shared implementation instead of three hand-rolled
//! string formatters.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `u64` (counts, nanoseconds).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number. Non-finite values render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for builder-style construction.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` (builder style; only meaningful on
    /// [`Json::Obj`], a no-op otherwise).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.to_owned(), value.into()));
        }
        self
    }

    /// Object field lookup (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a float with
    /// an exact integral value).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation (stable, diff-friendly — the
    /// format checked into `results/`).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    for _ in 0..indent + 1 {
                        out.push_str("  ");
                    }
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                for _ in 0..indent {
                    out.push_str("  ");
                }
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input (including
    /// trailing junk after the top-level value).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                offset: pos,
                message: "trailing characters after value",
            });
        }
        Ok(value)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if let Ok(u) = u64::try_from(v) {
            Json::U64(u)
        } else {
            Json::I64(v)
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What was expected.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable and round-trippable.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, message: &'static str) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(ParseError {
            offset: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            offset: *pos,
            message: "invalid literal",
        })
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{', "expected '{'")?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => {
                return Err(ParseError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(ParseError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(ParseError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(ParseError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                            offset: *pos,
                            message: "invalid \\u escape",
                        })?;
                        // Surrogates (paired or lone) are replaced; the
                        // exporters never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            offset: *pos,
                            message: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).unwrap_or("\u{fffd}"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| ParseError {
        offset: start,
        message: "invalid number",
    })?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
        offset: start,
        message: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_compact_and_pretty() {
        let v = Json::obj()
            .field("experiment", "e1")
            .field("count", 3u64)
            .field("rate", 1.5)
            .field("items", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        assert_eq!(
            v.render(),
            r#"{"experiment":"e1","count":3,"rate":1.5,"items":[1,2]}"#
        );
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"experiment\": \"e1\""));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"a": [1, -2, 3.5, true, false, null], "b": {"c": "x\ty"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ty"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::parse("-5").unwrap();
        assert_eq!(v.as_f64(), Some(-5.0));
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_render_safely() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_owned());
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
