//! The metric primitives and the registry that aggregates them.
//!
//! # Sharding
//!
//! A [`Counter`] keeps [`SHARDS`] cache-padded `AtomicU64`s; each
//! thread is assigned a home shard (round-robin at first use, cached
//! in a thread-local) and increments only that shard with one relaxed
//! `fetch_add` — wait-free, and free of the cross-core cache-line
//! ping-pong a single shared counter would cost under contention.
//! Reading a counter sums the shards.
//!
//! # `snapshot()` consistency model
//!
//! [`Registry::snapshot`] reads every metric with relaxed loads and no
//! global lock-out of writers, so it is a *per-metric-consistent*
//! view, not a cross-metric atomic cut:
//!
//! * each counter value is the sum of its shards as they were read —
//!   monotone between snapshots, but an increment racing the snapshot
//!   may appear in one counter and not yet in a logically-related one
//!   (e.g. `ops_fast_total` may momentarily lag `ops_total`);
//! * timer quantiles summarize *some recent prefix* of samples (see
//!   `LogHistogram::snapshot`);
//! * polled gauges run their closures at snapshot time.
//!
//! This is the standard contract of scrape-based metrics (Prometheus
//! makes the same trade); rates and ratios computed across metrics are
//! accurate to within the in-flight operations at scrape time.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cso_memory::CachePadded;
use cso_trace::{HistSnapshot, LogHistogram};

/// Shards per counter. Threads hash onto shards round-robin; 16 covers
/// the workspace's bench range (`CSO_MAX_THREADS` ≤ 16) without
/// aliasing, and costs 16 × 128 B = 2 KiB per counter.
pub const SHARDS: usize = 16;

/// This thread's home shard, assigned round-robin at first use.
fn home_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// A monotone event counter, sharded per thread. Cloning is shallow
/// (an `Arc` bump): every clone observes the same value.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[CachePadded<AtomicU64>]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Adds `n`. Wait-free: one relaxed `fetch_add` on the calling
    /// thread's home shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[home_shard()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards; monotone between reads).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits in one
/// atomic). Clones share the value.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge. Wait-free (one relaxed store).
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A latency recorder backed by a [`LogHistogram`] (≤6.25% relative
/// quantile error, wait-free recording). Clones share the histogram.
#[derive(Clone)]
pub struct Timer {
    hist: Arc<LogHistogram>,
}

impl Timer {
    fn new() -> Timer {
        Timer {
            hist: Arc::new(LogHistogram::new()),
        }
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.hist.record(d);
    }

    /// Records one sample in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.hist.record_ns(ns);
    }

    /// Times a closure and records its wall duration.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(t0.elapsed());
        out
    }

    /// A point-in-time percentile summary.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        self.hist.snapshot()
    }
}

impl std::fmt::Debug for Timer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Timer(count={})", self.snapshot().count)
    }
}

/// A polled gauge: evaluated at snapshot time.
type PolledFn = Box<dyn Fn() -> f64 + Send + Sync>;

#[derive(Default)]
struct Inner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    polled: Mutex<Vec<(String, PolledFn)>>,
    timers: Mutex<Vec<(String, Timer)>>,
}

/// A named collection of metrics. Cloning is shallow; all clones feed
/// the same snapshot. Registration takes a short-lived lock (do it at
/// setup time); recording into the returned handles never locks.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// `true` for names Prometheus accepts: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn register<T: Clone>(table: &Mutex<Vec<(String, T)>>, name: &str, make: impl FnOnce() -> T) -> T {
    assert!(valid_name(name), "invalid metric name {name:?}");
    let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
    if let Some((_, existing)) = table.iter().find(|(n, _)| n == name) {
        return existing.clone();
    }
    let made = make();
    table.push((name.to_owned(), made.clone()));
    made
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) the counter named `name`.
    ///
    /// Idempotent: a second registration under the same name returns a
    /// handle to the same counter, so independent components can share
    /// a series without coordination.
    ///
    /// # Panics
    ///
    /// If `name` is not a valid Prometheus metric name
    /// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub fn counter(&self, name: &str) -> Counter {
        register(&self.inner.counters, name, Counter::new)
    }

    /// Registers (or retrieves) the gauge named `name`. See
    /// [`Registry::counter`] for naming and idempotence.
    pub fn gauge(&self, name: &str) -> Gauge {
        register(&self.inner.gauges, name, Gauge::new)
    }

    /// Registers (or retrieves) the timer named `name`. See
    /// [`Registry::counter`] for naming and idempotence.
    pub fn timer(&self, name: &str) -> Timer {
        register(&self.inner.timers, name, Timer::new)
    }

    /// Registers a *polled* gauge: `f` runs at every snapshot and its
    /// return value is reported under `name`. Re-registering a name
    /// replaces the closure.
    ///
    /// # Panics
    ///
    /// If `name` is invalid (see [`Registry::counter`]).
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut polled = self.inner.polled.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = polled.iter_mut().find(|(n, _)| n == name) {
            slot.1 = Box::new(f);
        } else {
            polled.push((name.to_owned(), Box::new(f)));
        }
    }

    /// Registers the build-identity and uptime series:
    ///
    /// * `cso_build_info` — always `1` (a presence marker, scrapeable
    ///   as "the process is up and identified");
    /// * `cso_build_version_major` / `_minor` / `_patch` — the crate
    ///   version, spread over three series because the registry is
    ///   label-free by design;
    /// * `cso_feature_trace` / `cso_feature_chaos` /
    ///   `cso_feature_model` — `1` when the corresponding compile-time
    ///   capability was enabled for this build, else `0`;
    /// * `cso_process_uptime_seconds` — polled; seconds since this
    ///   method ran (call it once at startup so the gauge tracks
    ///   process lifetime).
    pub fn register_build_info(&self) {
        self.gauge("cso_build_info").set(1.0);
        let mut parts = env!("CARGO_PKG_VERSION")
            .split('.')
            .map(|p| p.parse::<u64>().unwrap_or(0));
        for name in [
            "cso_build_version_major",
            "cso_build_version_minor",
            "cso_build_version_patch",
        ] {
            self.gauge(name).set(parts.next().unwrap_or(0) as f64);
        }
        for (name, enabled) in [
            ("cso_feature_trace", cfg!(feature = "trace")),
            ("cso_feature_chaos", cfg!(feature = "chaos")),
            ("cso_feature_model", cfg!(feature = "model")),
        ] {
            self.gauge(name).set(f64::from(u8::from(enabled)));
        }
        let start = Instant::now();
        self.gauge_fn("cso_process_uptime_seconds", move || {
            start.elapsed().as_secs_f64()
        });
    }

    /// Registers the `cso_trace_ring_dropped` polled gauge: probe
    /// events lost to ring wrap-around since the last `probe::clear()`
    /// (always `0` without the `trace` feature). Surfacing the drop
    /// count means a truncated trace is visible on the dashboard, not
    /// just in the collected artifact.
    pub fn register_probe_drop_gauge(&self) {
        self.gauge_fn("cso_trace_ring_dropped", || {
            cso_trace::probe::dropped() as f64
        });
    }

    /// A point-in-time view of every registered metric, sorted by
    /// name. See the module docs for the consistency model.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters: BTreeMap<String, u64> = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.value()))
            .collect();
        let mut gauges: BTreeMap<String, f64> = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        for (name, f) in self
            .inner
            .polled
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            gauges.insert(name.clone(), f());
        }
        let timers: BTreeMap<String, HistSnapshot> = self
            .inner
            .timers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, t)| (n.clone(), t.snapshot()))
            .collect();
        Snapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            timers: timers.into_iter().collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Registry({} counters, {} gauges, {} timers)",
            s.counters.len(),
            s.gauges.len(),
            s.timers.len()
        )
    }
}

/// A point-in-time view of a [`Registry`], ready for export. All three
/// lists are sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `(name, total)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, polled gauges included.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` per timer.
    pub timers: Vec<(String, HistSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("ops_total");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
        assert_eq!(
            reg.snapshot().counters,
            vec![("ops_total".to_owned(), 80_000)]
        );
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7, "same series");
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        Registry::new().counter("no spaces allowed");
    }

    #[test]
    fn gauges_and_polled_gauges_snapshot() {
        let reg = Registry::new();
        reg.gauge("ewma").set(0.25);
        reg.gauge_fn("polled", || 42.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauges,
            vec![("ewma".to_owned(), 0.25), ("polled".to_owned(), 42.0)]
        );
    }

    #[test]
    fn timer_snapshots_quantiles() {
        let reg = Registry::new();
        let t = reg.timer("fast_ns");
        for i in 1..=100 {
            t.record_ns(i * 1000);
        }
        let snap = t.snapshot();
        assert_eq!(snap.count, 100);
        assert!(snap.p50_ns >= 50_000 && snap.p50_ns <= 56_000, "{snap:?}");
        let out = t.time(|| 7);
        assert_eq!(out, 7);
        assert_eq!(t.snapshot().count, 101);
    }

    #[test]
    fn probe_drop_gauge_is_wired() {
        let reg = Registry::new();
        reg.register_probe_drop_gauge();
        let snap = reg.snapshot();
        let (name, v) = &snap.gauges[0];
        assert_eq!(name, "cso_trace_ring_dropped");
        // 0 in un-traced builds; >= 0 in traced builds (other tests in
        // this process may have wrapped rings).
        assert!(*v >= 0.0);
    }

    #[test]
    fn build_info_reports_identity_features_and_uptime() {
        let reg = Registry::new();
        reg.register_build_info();
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
                .1
        };
        assert_eq!(get("cso_build_info"), 1.0);
        let version = format!(
            "{}.{}.{}",
            get("cso_build_version_major"),
            get("cso_build_version_minor"),
            get("cso_build_version_patch")
        );
        assert_eq!(version, "0.1.0");
        for feature in ["trace", "chaos", "model"] {
            let v = get(&format!("cso_feature_{feature}"));
            assert!(v == 0.0 || v == 1.0, "{feature}: {v}");
        }
        assert_eq!(
            get("cso_feature_trace"),
            f64::from(u8::from(cfg!(feature = "trace")))
        );
        assert!(get("cso_process_uptime_seconds") >= 0.0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("z_total");
        reg.counter("a_total");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_total", "z_total"]);
    }
}
