//! The scrape endpoint and the headless periodic dump.
//!
//! Both are std-only (`std::net::TcpListener`, `std::thread`) because
//! the workspace builds `--offline` with no external dependencies. The
//! server speaks just enough HTTP/1.1 for `curl` and a Prometheus
//! scraper: `GET /metrics` (text exposition), `GET /metrics.json`
//! (JSON snapshot), any [`Routes`] the embedder registered, 404 for
//! unknown paths, and 400 for a request line that is not a `GET`.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::prom::{render_json, render_prometheus};
use crate::registry::Registry;

/// A pluggable route: returns `(content type, body)`; the server adds
/// the status line and headers. Handlers run on the serve thread, one
/// request at a time — keep them snapshot-cheap.
pub type RouteHandler = Arc<dyn Fn() -> (String, String) + Send + Sync>;

/// Extra `GET` routes served alongside the built-in `/metrics` and
/// `/metrics.json` (which always win on a path collision). This keeps
/// `cso-metrics` ignorant of what it serves: the profiling crate
/// plugs `/profile`, `/spans.json` and `/flamegraph` in from outside.
#[derive(Clone, Default)]
pub struct Routes {
    routes: Vec<(String, RouteHandler)>,
}

impl Routes {
    /// No extra routes.
    #[must_use]
    pub fn new() -> Routes {
        Routes::default()
    }

    /// Registers `handler` for exact-match `path` (e.g. `/profile`).
    #[must_use]
    pub fn add(
        mut self,
        path: impl Into<String>,
        handler: impl Fn() -> (String, String) + Send + Sync + 'static,
    ) -> Routes {
        self.routes.push((path.into(), Arc::new(handler)));
        self
    }

    /// Appends every route of `other`, preserving registration order
    /// (so `profile_routes(...).merge(watch_routes(...))` serves both
    /// tables on one port). On a path collision the earlier
    /// registration wins, matching lookup order.
    #[must_use]
    pub fn merge(mut self, other: Routes) -> Routes {
        self.routes.extend(other.routes);
        self
    }

    /// The registered paths, in registration order.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        self.routes.iter().map(|(p, _)| p.as_str()).collect()
    }

    /// The handler registered for exact-match `path`, if any. Public
    /// so route tables can be exercised without a live socket.
    #[must_use]
    pub fn lookup(&self, path: &str) -> Option<&RouteHandler> {
        self.routes.iter().find(|(p, _)| p == path).map(|(_, h)| h)
    }
}

impl std::fmt::Debug for Routes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Routes")
            .field("paths", &self.paths())
            .finish()
    }
}

/// A background scrape endpoint serving a [`Registry`].
///
/// ```no_run
/// use cso_metrics::{MetricsServer, Registry};
/// let registry = Registry::new();
/// let server = MetricsServer::bind(registry, "127.0.0.1:9184").unwrap();
/// println!("scrape http://{}/metrics", server.addr());
/// // ... run the workload ...
/// server.shutdown();
/// ```
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves the
    /// registry from a background thread until [`shutdown`].
    ///
    /// [`shutdown`]: MetricsServer::shutdown
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind(registry: Registry, addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        MetricsServer::bind_with_routes(registry, addr, Routes::new())
    }

    /// Like [`MetricsServer::bind`], plus embedder-supplied [`Routes`]
    /// served alongside the built-ins.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, …).
    pub fn bind_with_routes(
        registry: Registry,
        addr: impl ToSocketAddrs,
        routes: Routes,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cso-metrics-serve".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection, best-effort: a
                        // slow or broken scraper must not wedge the
                        // serve thread.
                        let _ = serve_one(stream, &registry, &routes);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serve thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request head and writes the matching response.
fn serve_one(mut stream: TcpStream, registry: &Registry, routes: &Routes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head (or the buffer is full —
    // longer requests than that are not scrapes we serve).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..len].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    // A well-formed request line is `GET <path> HTTP/1.x`. Anything
    // else — wrong method, missing path, binary noise — is a 400, not
    // a 404: the request was unintelligible, not a miss.
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let path = match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) if path.starts_with('/') => Some(path),
        _ => None,
    };
    let (status, content_type, body) = match path {
        None => (
            "400 Bad Request",
            "text/plain".to_owned(),
            "bad request\n".to_owned(),
        ),
        Some("/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4".to_owned(),
            render_prometheus(&registry.snapshot()),
        ),
        Some("/metrics.json") => (
            "200 OK",
            "application/json".to_owned(),
            render_json(&registry.snapshot()).render_pretty(),
        ),
        Some(other) => match routes.lookup(other) {
            Some(handler) => {
                let (content_type, body) = handler();
                ("200 OK", content_type, body)
            }
            None => (
                "404 Not Found",
                "text/plain".to_owned(),
                "not found\n".to_owned(),
            ),
        },
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A headless alternative to scraping: a background thread writes the
/// JSON snapshot to a file every `interval`, plus a final write at
/// stop, so batch runs leave a metrics artifact without opening a
/// port.
#[derive(Debug)]
pub struct PeriodicDump {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PeriodicDump {
    /// Starts dumping `registry` to `path` every `interval`.
    #[must_use]
    pub fn spawn(registry: Registry, path: std::path::PathBuf, interval: Duration) -> PeriodicDump {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cso-metrics-dump".to_owned())
            .spawn(move || loop {
                let json = render_json(&registry.snapshot()).render_pretty();
                let _ = std::fs::write(&path, json);
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                std::thread::park_timeout(interval);
            })
            .expect("spawn metrics dump thread");
        PeriodicDump {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the dump thread after one final write.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        handle.thread().unpark();
        let _ = handle.join();
    }
}

impl Drop for PeriodicDump {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prom::validate_prometheus;
    use crate::Json;

    /// A minimal HTTP GET against the server under test.
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_prometheus_and_json() {
        let registry = Registry::new();
        registry.counter("smoke_total").add(5);
        registry.gauge("smoke_gauge").set(1.5);
        registry.timer("smoke_ns").record_ns(1000);
        let server = MetricsServer::bind(registry, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("smoke_total 5"));
        validate_prometheus(&body).expect("valid exposition format");

        let (head, body) = http_get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("smoke_total"))
                .and_then(Json::as_u64),
            Some(5)
        );

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn custom_routes_serve_alongside_builtins() {
        let registry = Registry::new();
        registry.counter("routed_total").add(1);
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits_in_route = Arc::clone(&hits);
        let routes = Routes::new()
            .add("/profile", move || {
                hits_in_route.fetch_add(1, Ordering::Relaxed);
                ("text/plain".to_owned(), "live profile\n".to_owned())
            })
            .add("/spans.json", || {
                ("application/json".to_owned(), "{\"spans\":0}".to_owned())
            });
        assert_eq!(routes.paths(), vec!["/profile", "/spans.json"]);
        let server = MetricsServer::bind_with_routes(registry, "127.0.0.1:0", routes).unwrap();
        let addr = server.addr();

        let (head, body) = http_get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"));
        assert_eq!(body, "live profile\n");
        assert_eq!(hits.load(Ordering::Relaxed), 1);

        let (head, body) = http_get(addr, "/spans.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(head.contains("application/json"));
        assert_eq!(body, "{\"spans\":0}");

        // Built-ins still win, and unknown paths still miss.
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("routed_total 1"));
        let (head, _) = http_get(addr, "/not-a-route");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn malformed_request_lines_get_400() {
        let server = MetricsServer::bind(Registry::new(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        for raw in [
            "BLARG\r\n\r\n",                  // no path at all
            "POST /metrics HTTP/1.1\r\n\r\n", // wrong method
            "GET metrics HTTP/1.1\r\n\r\n",   // path without leading /
            "\r\n\r\n",                       // empty request line
        ] {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(
                response.starts_with("HTTP/1.1 400"),
                "{raw:?} -> {response:?}"
            );
        }
        server.shutdown();
    }

    /// A client that sends half a request head and then stalls must
    /// not wedge the single serve thread: the 500 ms read timeout
    /// fires, the stalled connection gets whatever answer its partial
    /// head earned, and the next well-formed scrape is served.
    #[test]
    fn a_stalled_partial_request_cannot_wedge_the_serve_thread() {
        let registry = Registry::new();
        registry.counter("survived_total").add(1);
        let server = MetricsServer::bind(registry, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /metr").unwrap(); // no head terminator
        let start = std::time::Instant::now();

        // While the stalled connection sits in its read timeout, a
        // fresh scrape queues behind it and must still complete.
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("survived_total 1"));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stalled client held the serve thread for {:?}",
            start.elapsed()
        );

        // The stalled connection itself was answered after the read
        // timeout: its truncated head parsed as `GET /metr`, a miss.
        let mut response = String::new();
        stalled.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response:?}");

        server.shutdown();
    }

    /// A client that connects, never writes a byte, and walks away
    /// (plus one that requests but never reads) must leave the server
    /// able to answer the next scraper.
    #[test]
    fn silent_and_never_reading_clients_are_shed() {
        let registry = Registry::new();
        registry.counter("shed_total").add(2);
        let server = MetricsServer::bind(registry, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        // Mute client: opens a connection and sends nothing. Held open
        // across the follow-up scrape so the timeout, not the client,
        // frees the thread.
        let mute = TcpStream::connect(addr).unwrap();

        // Deaf client: sends a valid request, never reads the
        // response, and hangs up. (The response fits the kernel socket
        // buffer, so at worst the write timeout applies.)
        let mut deaf = TcpStream::connect(addr).unwrap();
        deaf.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        drop(deaf);

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("shed_total 2"));

        drop(mute);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let server = MetricsServer::bind(Registry::new(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown();
        // The port is released: a rebind succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn periodic_dump_writes_snapshots() {
        let registry = Registry::new();
        registry.counter("dumped_total").add(7);
        let dir = std::env::temp_dir().join(format!("cso-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let dump = PeriodicDump::spawn(registry, path.clone(), Duration::from_secs(3600));
        dump.stop(); // final write happens on stop even mid-interval
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("dumped_total"))
                .and_then(Json::as_u64),
            Some(7)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
