//! The lane router: affinity, bounded stealing, heal, telemetry.
//!
//! Generic over the lane type (a `CsStack` or `CsQueue`); the public
//! wrappers in [`crate::stack`] / [`crate::queue`] are thin facades
//! over [`Router`]. Everything the router itself touches — the
//! aggregate, the elastic controller, the strict-order journal, the
//! statistics counters — is **uncounted** (`std::sync::atomic`), so a
//! routed operation spends exactly the lane's own counted budget:
//! Theorem 1's six accesses for a solo stack op, seven for the queue.
//!
//! ## Probe protocol (relaxed mode)
//!
//! *Push:* probe the home lane `proc mod active`, then the rest of
//! the active prefix, then the inactive tail — skipping lanes the
//! aggregate believes full. If every lane *looked* full without a
//! single real probe, answer `Full` (the aggregate lags the truth by
//! at most the in-flight operations, so this adds ≤ n − 1 slack). If
//! some lanes were really probed and all answered full, force-probe
//! the skipped ones before answering — so a non-racing `Full` means
//! every lane individually answered full.
//!
//! *Pop:* symmetric, with the nonempty mask: mask-guided probes
//! starting at the home lane (over **all** lanes, so merged-away
//! lanes drain), then a force-probe round only if the mask showed a
//! candidate that lost a race.
//!
//! ## Crash consistency (the E14 kill sites)
//!
//! The aggregate is updated *after* the lane operation returns, by
//! the same thread. A kill before the lane applies the op leaves
//! nothing to record — no leak. A kill after the apply but before the
//! update (the `sfree::unlock` boundary) leaves the aggregate one
//! behind; the unwind guard marks it dirty and the next operation
//! (or an explicit `refresh_occupancy()`) re-derives every lane's
//! count from the lane itself — in strict mode under the latch, also
//! re-appending the orphaned journal entries (legal: the killed
//! operation never returned, so it linearizes late). Killed
//! operations can therefore neither leak nor double-count occupancy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use cso_metrics::{Counter, Gauge, Registry};

use crate::aggregate::LaneAggregate;
use crate::config::{ShardConfig, ShardMode};
use crate::elastic::Elastic;
use crate::order::StrictOrder;

/// What a lane must provide to be routable. Implemented for
/// `CsStack` / `CsQueue` by the public wrappers.
pub(crate) trait ShardLane: Send + Sync {
    type Value: Copy;
    /// Apply a push/enqueue; `true` = accepted, `false` = full.
    fn lane_push(&self, proc: usize, value: Self::Value) -> bool;
    /// Apply a pop/dequeue; `None` = empty.
    fn lane_pop(&self, proc: usize) -> Option<Self::Value>;
    /// Ground-truth element count (heal path only).
    fn lane_len(&self) -> usize;
    /// Attach the lane's own metrics under `prefix`.
    fn lane_attach_metrics(&self, registry: &Registry, prefix: &str);
}

/// A point-in-time snapshot of the router's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Completed push/enqueue operations routed.
    pub pushes: u64,
    /// Completed pop/dequeue operations routed.
    pub pops: u64,
    /// Pops served from a lane other than the home lane.
    pub steals: u64,
    /// Pushes that landed in a lane other than the home lane.
    pub spills: u64,
    /// Elastic fan-outs (active prefix doubled).
    pub splits: u64,
    /// Elastic contractions (active prefix halved).
    pub merges: u64,
    /// Aggregate re-derivations after a crash/unwind.
    pub heals: u64,
    /// Current active lane prefix length.
    pub active_lanes: usize,
}

/// Metric handles, attached once via `attach_metrics`.
#[derive(Debug)]
struct ShardMetrics {
    steals: Counter,
    spills: Counter,
    heals: Counter,
    active: Gauge,
    size: Gauge,
    splits: Gauge,
    merges: Gauge,
}

#[derive(Debug, Default)]
struct Counters {
    pushes: AtomicU64,
    pops: AtomicU64,
    steals: AtomicU64,
    spills: AtomicU64,
    heals: AtomicU64,
}

/// The shared router core.
pub(crate) struct Router<T: ShardLane> {
    lanes: Vec<T>,
    agg: LaneAggregate,
    order: Option<StrictOrder>,
    elastic: Elastic,
    counters: Counters,
    metrics: OnceLock<ShardMetrics>,
    mode: ShardMode,
    capacity: usize,
    n: usize,
}

/// Marks the aggregate dirty if the wrapped lane call unwinds
/// (crash/panic between the lane apply and the aggregate update).
struct DirtyOnUnwind<'a> {
    agg: &'a LaneAggregate,
    armed: bool,
}

impl Drop for DirtyOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.agg.mark_dirty();
        }
    }
}

/// Decrements the in-flight overlap counter even on unwind.
struct ExitOnDrop<'a> {
    elastic: &'a Elastic,
}

impl Drop for ExitOnDrop<'_> {
    fn drop(&mut self) {
        self.elastic.exit();
    }
}

impl<T: ShardLane> Router<T> {
    /// `lanes` are the constructed cells; `capacity` is the global
    /// bound (strict mode enforces it via the journal; relaxed mode
    /// via the per-lane caps baked into the cells and the aggregate's
    /// `lane_cap`).
    pub(crate) fn new(
        lanes: Vec<T>,
        cfg: &ShardConfig,
        n: usize,
        capacity: usize,
        lane_cap: usize,
        fifo: bool,
    ) -> Router<T> {
        assert!(
            !lanes.is_empty() && lanes.len() <= 64,
            "lanes must be 1..=64"
        );
        let order = match cfg.mode {
            ShardMode::Strict => Some(StrictOrder::new(capacity, fifo)),
            ShardMode::Relaxed { .. } => None,
        };
        Router {
            agg: LaneAggregate::new(lanes.len(), lane_cap),
            elastic: Elastic::new(
                lanes.len(),
                cfg.elastic,
                cfg.eval_period,
                cfg.cooldown_evals,
            ),
            lanes,
            order,
            counters: Counters::default(),
            metrics: OnceLock::new(),
            mode: cfg.mode,
            capacity,
            n,
        }
    }

    pub(crate) fn push(&self, proc: usize, value: T::Value) -> bool {
        self.maybe_heal();
        let contended = self.elastic.enter();
        let _exit = ExitOnDrop {
            elastic: &self.elastic,
        };
        let pushed = match self.order {
            Some(ref order) => self.push_strict(order, proc, value),
            None => self.push_relaxed(proc, value),
        };
        self.elastic.record(contended);
        if pushed {
            self.counters.pushes.fetch_add(1, Ordering::Relaxed);
        }
        self.publish_metrics();
        pushed
    }

    pub(crate) fn pop(&self, proc: usize) -> Option<T::Value> {
        self.maybe_heal();
        let contended = self.elastic.enter();
        let _exit = ExitOnDrop {
            elastic: &self.elastic,
        };
        let popped = match self.order {
            Some(ref order) => self.pop_strict(order, proc),
            None => self.pop_relaxed(proc),
        };
        self.elastic.record(contended);
        if popped.is_some() {
            self.counters.pops.fetch_add(1, Ordering::Relaxed);
        }
        self.publish_metrics();
        popped
    }

    /// The lane probe order: the active prefix starting at the home
    /// lane, then the inactive tail (so merged-away lanes still
    /// drain / absorb spill).
    fn probe_lane(&self, home: usize, active: usize, i: usize) -> usize {
        if i < active {
            (home + i) % active
        } else {
            i
        }
    }

    fn push_strict(&self, order: &StrictOrder, proc: usize, value: T::Value) -> bool {
        let guard = order.acquire();
        if guard.len() >= self.capacity {
            return false;
        }
        let active = self.elastic.active();
        let home = proc % active;
        // Under the latch no other op is inside any lane, and strict
        // lane capacity ≥ the global capacity, so the home lane has
        // room; probe the rest anyway for defence in depth.
        for i in 0..self.lanes.len() {
            let lane = self.probe_lane(home, active, i);
            let mut dirty = DirtyOnUnwind {
                agg: &self.agg,
                armed: true,
            };
            let ok = self.lanes[lane].lane_push(proc, value);
            dirty.armed = false;
            if ok {
                guard.push_lane(lane);
                self.agg.record_push(lane);
                if lane != home {
                    self.spill();
                }
                return true;
            }
        }
        false
    }

    fn pop_strict(&self, order: &StrictOrder, proc: usize) -> Option<T::Value> {
        let guard = order.acquire();
        let lane = guard.pop_lane()?;
        let mut dirty = DirtyOnUnwind {
            agg: &self.agg,
            armed: true,
        };
        let value = self.lanes[lane].lane_pop(proc);
        dirty.armed = false;
        match value {
            Some(v) => {
                self.agg.record_pop(lane);
                let active = self.elastic.active();
                if lane != proc % active {
                    self.steal();
                }
                Some(v)
            }
            None => {
                // Journal said the lane held the answer but the lane
                // disagrees: only reachable after an unhealed crash.
                // Re-derive everything rather than guessing.
                drop(guard);
                self.agg.mark_dirty();
                None
            }
        }
    }

    fn push_relaxed(&self, proc: usize, value: T::Value) -> bool {
        let total = self.lanes.len();
        let active = self.elastic.active();
        let home = proc % active;
        let mut probed = 0u64;
        let mut skipped_any = false;
        // Round 1: aggregate-guided real probes.
        for i in 0..total {
            let lane = self.probe_lane(home, active, i);
            if self.agg.looks_full(lane) {
                skipped_any = true;
                continue;
            }
            probed |= 1 << lane;
            if self.try_push_lane(lane, home, proc, value) {
                return true;
            }
        }
        if !skipped_any {
            // Every lane really answered full.
            return false;
        }
        if probed == 0 {
            // Every lane *looked* full: trust the aggregate (slack
            // bounded by in-flight ops, ≤ n − 1).
            return false;
        }
        // Round 2: the hint skipped lanes but a probe lost a race —
        // force-probe the skipped ones before answering Full.
        for i in 0..total {
            let lane = self.probe_lane(home, active, i);
            if probed & (1 << lane) != 0 {
                continue;
            }
            if self.try_push_lane(lane, home, proc, value) {
                return true;
            }
        }
        false
    }

    fn try_push_lane(&self, lane: usize, home: usize, proc: usize, value: T::Value) -> bool {
        let mut dirty = DirtyOnUnwind {
            agg: &self.agg,
            armed: true,
        };
        let ok = self.lanes[lane].lane_push(proc, value);
        dirty.armed = false;
        if ok {
            self.agg.record_push(lane);
            if lane != home {
                self.spill();
            }
        }
        ok
    }

    fn pop_relaxed(&self, proc: usize) -> Option<T::Value> {
        let total = self.lanes.len();
        let active = self.elastic.active();
        let home = proc % active;
        let mut probed = 0u64;
        let mut saw_candidate = false;
        // Round 1: mask-guided real probes, home lane first.
        for i in 0..total {
            let lane = self.probe_lane(home, active, i);
            if !self.agg.looks_nonempty(lane) {
                continue;
            }
            saw_candidate = true;
            probed |= 1 << lane;
            if let Some(v) = self.try_pop_lane(lane, home, proc) {
                return Some(v);
            }
        }
        if !saw_candidate {
            // The mask showed nothing anywhere: trust it (slack
            // bounded by in-flight ops, ≤ n − 1).
            return None;
        }
        // Round 2: a candidate lost a race — force-probe every lane
        // before answering Empty.
        for i in 0..total {
            let lane = self.probe_lane(home, active, i);
            if probed & (1 << lane) != 0 {
                continue;
            }
            if let Some(v) = self.try_pop_lane(lane, home, proc) {
                return Some(v);
            }
        }
        None
    }

    fn try_pop_lane(&self, lane: usize, home: usize, proc: usize) -> Option<T::Value> {
        let mut dirty = DirtyOnUnwind {
            agg: &self.agg,
            armed: true,
        };
        let value = self.lanes[lane].lane_pop(proc);
        dirty.armed = false;
        if value.is_some() {
            self.agg.record_pop(lane);
            if lane != home {
                self.steal();
            }
        }
        value
    }

    fn steal(&self) {
        self.counters.steals.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.steals.inc();
        }
    }

    fn spill(&self) {
        self.counters.spills.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.spills.inc();
        }
    }

    /// Heals the aggregate (and in strict mode the journal) if a
    /// crashed operation left them behind.
    fn maybe_heal(&self) {
        if self.agg.take_dirty() {
            self.heal();
        }
    }

    /// Re-derives the aggregate from lane ground truth. Strict mode
    /// runs under the latch and also reconciles the journal: lanes
    /// holding more elements than the journal records gained them from
    /// killed (never-returned) operations, which may legally linearize
    /// now — their entries are appended; the reverse direction drops
    /// stale entries.
    pub(crate) fn heal(&self) {
        if let Some(ref order) = self.order {
            let guard = order.acquire();
            for (lane, cell) in self.lanes.iter().enumerate() {
                let actual = cell.lane_len();
                let journaled = guard.count_lane(lane);
                if actual > journaled {
                    for _ in 0..(actual - journaled) {
                        guard.push_lane(lane);
                    }
                } else if journaled > actual {
                    guard.remove_lane_entries(lane, journaled - actual);
                }
                self.agg.resync(lane, actual);
            }
        } else {
            for (lane, cell) in self.lanes.iter().enumerate() {
                self.agg.resync(lane, cell.lane_len());
            }
        }
        self.counters.heals.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.heals.inc();
        }
    }

    fn publish_metrics(&self) {
        if let Some(m) = self.metrics.get() {
            m.active.set(self.elastic.active() as f64);
            m.size.set(self.agg.len() as f64);
            m.splits.set(self.elastic.splits() as f64);
            m.merges.set(self.elastic.merges() as f64);
        }
    }

    pub(crate) fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        for (i, lane) in self.lanes.iter().enumerate() {
            lane.lane_attach_metrics(registry, &format!("{prefix}_lane{i}"));
        }
        let _ = self.metrics.set(ShardMetrics {
            steals: registry.counter(&format!("{prefix}_router_steals_total")),
            spills: registry.counter(&format!("{prefix}_router_spills_total")),
            heals: registry.counter(&format!("{prefix}_router_heals_total")),
            active: registry.gauge(&format!("{prefix}_router_active_lanes")),
            size: registry.gauge(&format!("{prefix}_router_size")),
            splits: registry.gauge(&format!("{prefix}_router_splits")),
            merges: registry.gauge(&format!("{prefix}_router_merges")),
        });
        // Event counters mirror into the registry from attach time
        // on (same first-attach-wins convention as the lanes).
        self.publish_metrics();
    }

    pub(crate) fn stats(&self) -> RouterStats {
        RouterStats {
            pushes: self.counters.pushes.load(Ordering::Relaxed),
            pops: self.counters.pops.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            spills: self.counters.spills.load(Ordering::Relaxed),
            splits: self.elastic.splits(),
            merges: self.elastic.merges(),
            heals: self.counters.heals.load(Ordering::Relaxed),
            active_lanes: self.elastic.active(),
        }
    }

    pub(crate) fn lanes(&self) -> &[T] {
        &self.lanes
    }

    pub(crate) fn aggregate(&self) -> &LaneAggregate {
        &self.agg
    }

    pub(crate) fn elastic(&self) -> &Elastic {
        &self.elastic
    }

    pub(crate) fn mode(&self) -> ShardMode {
        self.mode
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// The checked relaxation bound: 0 in strict mode; in relaxed
    /// mode the lane-layout bound `(lanes − 1) × lane_cap ≤ k` plus
    /// the in-flight slack `n − 1` folded in as a max (the slack only
    /// affects Empty/Full answers, never the popped value's distance).
    pub(crate) fn relaxation_bound(&self) -> usize {
        match self.mode {
            ShardMode::Strict => 0,
            ShardMode::Relaxed { .. } => {
                ((self.lanes.len() - 1) * self.agg.lane_cap()).max(self.n.saturating_sub(1))
            }
        }
    }
}

impl<T: ShardLane> Router<T> {
    /// Racy but convergent view used by `len()`: strict mode prefers
    /// the journal's resident count (exact at quiescence), relaxed
    /// mode the aggregate total.
    pub(crate) fn len(&self) -> usize {
        match self.order {
            Some(ref order) => order.len_hint(),
            None => self.agg.len(),
        }
    }
}
