//! Strict-mode ordering: a ticket latch plus an order journal.
//!
//! A naive sharded structure that lets pushes claim global positions
//! and land in lanes asynchronously is **not** linearizable: a push
//! that claims a position and stalls can surface *under* a later push
//! in the same lane, and the crossed pops that follow admit no legal
//! linearization order. Strict mode therefore serializes the ordering
//! decision itself: a FIFO ticket latch (uncounted raw atomics —
//! none of Theorem 1's budget) is held across {lane selection → lane
//! operation → journal update}, and the journal records which lane
//! holds each logical position. Pops consult the journal for the lane
//! of the strict answer (top entry for LIFO, head entry for FIFO), so
//! the observable order is exactly the sequential spec's.
//!
//! The latch is ticket-fair, keeping the paper's starvation-freedom
//! story intact end to end: tickets are served in order, and inside
//! the critical section the lane's own §4.4 machinery bounds the
//! operation. Spin waits go through [`Spinner`], which yields to the
//! OS (and to the model scheduler under `--features model`).
//!
//! Crash behaviour: the latch guard releases on unwind, so a killed
//! operation cannot wedge the order section. A kill between the lane
//! operation and the journal update leaves the journal one entry
//! behind its lanes; the owner marks the aggregate dirty and the next
//! operation heals under the latch by appending the orphaned lane
//! entries — legal because the killed operation never returned, so it
//! may linearize at any later point (see `tests/shard_chaos.rs`).

use std::sync::atomic::{AtomicU16, AtomicU64, AtomicUsize, Ordering};

use cso_memory::backoff::Spinner;

/// The strict-order section: ticket latch + lane journal.
#[derive(Debug)]
pub(crate) struct StrictOrder {
    /// Next ticket to hand out.
    next: AtomicU64,
    /// Ticket currently being served.
    serving: AtomicU64,
    /// Ring of lane ids, one per resident element, in push order.
    entries: Box<[AtomicU16]>,
    /// Ring head (FIFO consumption index; unused for LIFO).
    head: AtomicUsize,
    /// Resident element count.
    len: AtomicUsize,
    /// True = consume oldest (queue); false = consume newest (stack).
    fifo: bool,
}

impl StrictOrder {
    pub(crate) fn new(capacity: usize, fifo: bool) -> StrictOrder {
        StrictOrder {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
            entries: (0..capacity).map(|_| AtomicU16::new(0)).collect(),
            head: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            fifo,
        }
    }

    /// Acquires the order latch (FIFO ticket discipline); the guard
    /// releases on drop, including during unwinding.
    pub(crate) fn acquire(&self) -> OrderGuard<'_> {
        let ticket = self.next.fetch_add(1, Ordering::AcqRel);
        let mut spinner = Spinner::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            spinner.spin();
        }
        OrderGuard { order: self }
    }

    /// Racy read of the resident count (exact at quiescence).
    pub(crate) fn len_hint(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// Exclusive access to the journal; releasing happens on drop.
///
/// All journal loads/stores inside the guard use `Relaxed`: the
/// latch's acquire/release pair orders them across owners.
pub(crate) struct OrderGuard<'a> {
    order: &'a StrictOrder,
}

impl OrderGuard<'_> {
    /// Resident element count.
    pub(crate) fn len(&self) -> usize {
        self.order.len.load(Ordering::Relaxed)
    }

    /// Records that the newest element lives in `lane`.
    pub(crate) fn push_lane(&self, lane: usize) {
        let len = self.len();
        debug_assert!(len < self.order.entries.len(), "journal overflow");
        let slot = if self.order.fifo {
            (self.order.head.load(Ordering::Relaxed) + len) % self.order.entries.len()
        } else {
            len
        };
        self.order.entries[slot].store(lane as u16, Ordering::Relaxed);
        self.order.len.store(len + 1, Ordering::Relaxed);
    }

    /// Removes and returns the lane of the strict answer (newest for
    /// LIFO, oldest for FIFO); `None` when the journal is empty.
    pub(crate) fn pop_lane(&self) -> Option<usize> {
        let len = self.len();
        if len == 0 {
            return None;
        }
        let lane = if self.order.fifo {
            let head = self.order.head.load(Ordering::Relaxed);
            let lane = self.order.entries[head].load(Ordering::Relaxed);
            self.order
                .head
                .store((head + 1) % self.order.entries.len(), Ordering::Relaxed);
            lane
        } else {
            self.order.entries[len - 1].load(Ordering::Relaxed)
        };
        self.order.len.store(len - 1, Ordering::Relaxed);
        Some(lane as usize)
    }

    /// How many journal entries currently name `lane`.
    pub(crate) fn count_lane(&self, lane: usize) -> usize {
        let len = self.len();
        let head = self.order.head.load(Ordering::Relaxed);
        (0..len)
            .filter(|i| {
                let slot = if self.order.fifo {
                    (head + i) % self.order.entries.len()
                } else {
                    *i
                };
                self.order.entries[slot].load(Ordering::Relaxed) == lane as u16
            })
            .count()
    }

    /// Removes `excess` entries naming `lane` (newest-first),
    /// compacting the ring. Heal path only; O(len).
    pub(crate) fn remove_lane_entries(&self, lane: usize, excess: usize) {
        if excess == 0 {
            return;
        }
        let len = self.len();
        let head = self.order.head.load(Ordering::Relaxed);
        let cap = self.order.entries.len();
        let slot_of = |i: usize| if self.order.fifo { (head + i) % cap } else { i };
        let mut kept: Vec<u16> = Vec::with_capacity(len);
        let mut to_drop = excess;
        // Walk oldest→newest; drop the *newest* matching entries.
        for i in 0..len {
            kept.push(self.order.entries[slot_of(i)].load(Ordering::Relaxed));
        }
        for slot in kept.iter_mut().rev() {
            if to_drop == 0 {
                break;
            }
            if *slot == lane as u16 {
                *slot = u16::MAX; // tombstone
                to_drop -= 1;
            }
        }
        let survivors: Vec<u16> = kept.into_iter().filter(|&l| l != u16::MAX).collect();
        self.order.head.store(0, Ordering::Relaxed);
        for (i, l) in survivors.iter().enumerate() {
            self.order.entries[i].store(*l, Ordering::Relaxed);
        }
        self.order.len.store(survivors.len(), Ordering::Relaxed);
    }
}

impl Drop for OrderGuard<'_> {
    fn drop(&mut self) {
        self.order.serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_journal_pops_newest() {
        let order = StrictOrder::new(8, false);
        let g = order.acquire();
        g.push_lane(0);
        g.push_lane(1);
        g.push_lane(0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.pop_lane(), Some(0));
        assert_eq!(g.pop_lane(), Some(1));
        assert_eq!(g.pop_lane(), Some(0));
        assert_eq!(g.pop_lane(), None);
    }

    #[test]
    fn fifo_journal_pops_oldest_and_wraps() {
        let order = StrictOrder::new(3, true);
        let g = order.acquire();
        for lane in [2, 0, 1] {
            g.push_lane(lane);
        }
        assert_eq!(g.pop_lane(), Some(2));
        g.push_lane(3); // wraps the ring
        assert_eq!(g.pop_lane(), Some(0));
        assert_eq!(g.pop_lane(), Some(1));
        assert_eq!(g.pop_lane(), Some(3));
        assert_eq!(g.pop_lane(), None);
    }

    #[test]
    fn count_and_remove_heal_primitives() {
        let order = StrictOrder::new(8, true);
        let g = order.acquire();
        for lane in [0, 1, 0, 2, 0] {
            g.push_lane(lane);
        }
        assert_eq!(g.count_lane(0), 3);
        assert_eq!(g.count_lane(1), 1);
        g.remove_lane_entries(0, 2); // drop the two newest 0-entries
        assert_eq!(g.count_lane(0), 1);
        assert_eq!(g.len(), 3);
        // FIFO order of survivors preserved: 0, 1, 2.
        assert_eq!(g.pop_lane(), Some(0));
        assert_eq!(g.pop_lane(), Some(1));
        assert_eq!(g.pop_lane(), Some(2));
    }

    #[test]
    fn latch_serializes_and_releases_on_unwind() {
        let order = std::sync::Arc::new(StrictOrder::new(64, false));
        // A panicking holder must not wedge the latch.
        let o = std::sync::Arc::clone(&order);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _g = o.acquire();
            panic!("simulated kill inside the order section");
        }));
        std::thread::scope(|s| {
            for t in 0..4 {
                let order = std::sync::Arc::clone(&order);
                s.spawn(move || {
                    for _ in 0..200 {
                        let g = order.acquire();
                        g.push_lane(t);
                        assert_eq!(g.pop_lane(), Some(t));
                    }
                });
            }
        });
        assert_eq!(order.len_hint(), 0);
    }
}
