//! Sharded, elastic multi-lane wrappers over the contention-sensitive
//! objects.
//!
//! Every structure in `cso-stack` / `cso-queue` is a single Figure-3
//! TOP/CONTENTION/FLAG/TURN cell, so its peak throughput is capped by
//! one contended cache line no matter how many cores are offered.
//! This crate scales past that cell by composition, not by changing
//! the paper's algorithms: [`ShardedCsStack`] and [`ShardedCsQueue`]
//! are **N independent Figure-3 cells** (each a full `CsStack` /
//! `CsQueue` with the escalation ladder, combining slow path, and
//! crash-recovery machinery intact) behind a thin router.
//!
//! The router adds three things:
//!
//! * **Thread-affine lanes with bounded work-stealing.** Process `p`
//!   routes to lane `p mod active`; a pop that finds its home lane
//!   empty steals from the other lanes (guided by the occupancy
//!   aggregate below), and a push that finds its home lane full spills
//!   the same way. Every router step is an *uncounted* access — the
//!   per-lane solo budget stays at Theorem 1's exact six (stack) /
//!   seven (queue) counted shared-memory accesses.
//! * **Two ordering modes** ([`ShardMode`]). `Strict` keeps exact
//!   LIFO/FIFO semantics via an order journal — a ticket latch
//!   serializes lane selection, so the structure is linearizable
//!   against the *unrelaxed* sequential spec (the "stealing tax" E17
//!   quantifies). `Relaxed { k }` drops the global order section and
//!   enforces an explicit out-of-order bound instead: per-lane
//!   capacity is derived from `k` so that a popped element can never
//!   be more than [`relaxation_bound`](ShardedCsStack::relaxation_bound)
//!   positions away from the strict answer (see DESIGN.md "Sharding &
//!   elasticity" for the bound's proof sketch).
//! * **Elastic lane count.** When enabled, an [`AdaptiveGate`]
//!   (the same EWMA gate that drives the combining slow path) watches
//!   an in-flight-overlap contention signal and doubles/halves the
//!   active lane prefix: a solo thread contracts to one cell — solo
//!   cost identical to an unsharded cell — and rising contention fans
//!   out to the configured maximum. Pops always steal from *all*
//!   lanes, so a merge can never strand values in a deactivated lane.
//!
//! Routing decisions read an f-array-style [`LaneAggregate`]: per-lane
//! occupancy counters plus a nonempty bitmask, maintained with plain
//! (uncounted) atomics next to each lane operation, giving the router
//! an O(1) view of total size and which lanes are worth probing —
//! no speculative lane probes, no counted accesses.
//!
//! [`AdaptiveGate`]: cso_core::AdaptiveGate
//!
//! # Quick start
//!
//! ```
//! use cso_shard::{ShardConfig, ShardedCsStack};
//! use cso_stack::{PopOutcome, PushOutcome};
//!
//! // 4 lanes, k-relaxed with out-of-order distance ≤ 8, elastic.
//! let stack: ShardedCsStack<u32> =
//!     ShardedCsStack::new(64, 8, ShardConfig::relaxed(4, 8).with_elastic());
//! assert_eq!(stack.push(0, 7), PushOutcome::Pushed);
//! assert_eq!(stack.pop(0), PopOutcome::Popped(7));
//! assert!(stack.relaxation_bound() <= 8.max(stack.n() - 1));
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod config;
mod elastic;
mod order;
mod queue;
mod router;
mod stack;

pub use aggregate::LaneAggregate;
pub use config::{ShardConfig, ShardMode};
pub use queue::ShardedCsQueue;
pub use router::RouterStats;
pub use stack::ShardedCsStack;
