//! The sharded contention-sensitive queue.

use cso_locks::TasLock;
use cso_metrics::Registry;
use cso_queue::{CsQueue, DequeueOutcome, EnqueueOutcome, QueueValue};

use crate::aggregate::LaneAggregate;
use crate::config::{ShardConfig, ShardMode};
use crate::router::{Router, RouterStats, ShardLane};

impl<V: QueueValue> ShardLane for CsQueue<V, TasLock> {
    type Value = V;

    fn lane_push(&self, proc: usize, value: V) -> bool {
        matches!(self.enqueue(proc, value), EnqueueOutcome::Enqueued)
    }

    fn lane_pop(&self, proc: usize) -> Option<V> {
        self.dequeue(proc).into_option()
    }

    fn lane_len(&self) -> usize {
        self.len()
    }

    fn lane_attach_metrics(&self, registry: &Registry, prefix: &str) {
        self.attach_metrics(registry, prefix);
    }
}

/// N independent Figure-3 queue cells behind the sharding router.
///
/// Each lane is a full [`CsQueue`] — non-interfering enqueue/dequeue
/// pairs, the escalation ladder, combining, and recovery all work
/// unchanged per lane, and each lane keeps the exact seven-access solo
/// budget (the router adds only uncounted bookkeeping). See the crate
/// docs for the ordering modes and the elasticity protocol.
///
/// ```
/// use cso_shard::{ShardConfig, ShardedCsQueue};
/// use cso_queue::{DequeueOutcome, EnqueueOutcome};
///
/// let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(16, 4, ShardConfig::strict(2));
/// assert_eq!(queue.enqueue(0, 1), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue(1, 2), EnqueueOutcome::Enqueued);
/// // Strict mode: exact FIFO across lanes.
/// assert_eq!(queue.dequeue(2), DequeueOutcome::Dequeued(1));
/// assert_eq!(queue.dequeue(3), DequeueOutcome::Dequeued(2));
/// assert_eq!(queue.dequeue(0), DequeueOutcome::Empty);
/// ```
pub struct ShardedCsQueue<V: QueueValue = u32> {
    router: Router<CsQueue<V, TasLock>>,
}

impl<V: QueueValue> ShardedCsQueue<V> {
    /// A sharded queue holding up to `capacity` values for processes
    /// `0..n`, laid out per `config`.
    ///
    /// `CsQueue` lanes need power-of-two capacities (≤ 2¹⁵), so the
    /// per-lane capacity is rounded: strict mode rounds the requested
    /// capacity *up* to a power of two per lane (the order journal
    /// still enforces the exact requested global bound, so
    /// `capacity()` reports what was asked for); relaxed mode rounds
    /// the derived `min(ceil(capacity / lanes), k / (lanes − 1))`
    /// *down* (never below 1) so the relaxation bound stays valid, and
    /// `capacity()` reports the effective `lanes × lane_cap`.
    ///
    /// # Panics
    ///
    /// Panics if `config.lanes` is outside `1..=64`, if a relaxed
    /// config has `k < lanes − 1`, or if a rounded lane capacity
    /// violates `CsQueue`'s own limits.
    #[must_use]
    pub fn new(capacity: usize, n: usize, config: ShardConfig) -> ShardedCsQueue<V> {
        assert!((1..=64).contains(&config.lanes), "lanes must be in 1..=64");
        let (lane_cap, effective) = match config.mode {
            ShardMode::Strict => (capacity.next_power_of_two(), capacity),
            ShardMode::Relaxed { k } => {
                assert!(
                    config.lanes == 1 || k >= config.lanes - 1,
                    "relaxed mode needs k >= lanes - 1 (got k={k}, lanes={})",
                    config.lanes
                );
                let per_lane = capacity.div_ceil(config.lanes).max(1);
                let from_k = if config.lanes > 1 {
                    k / (config.lanes - 1)
                } else {
                    usize::MAX
                };
                let raw = per_lane.min(from_k);
                // Round down to a power of two (floor at 1) so the
                // k-derived bound is never exceeded.
                let lane_cap = if raw.is_power_of_two() {
                    raw
                } else {
                    (raw.next_power_of_two()) / 2
                }
                .max(1);
                (lane_cap, lane_cap * config.lanes)
            }
        };
        let lanes: Vec<CsQueue<V, TasLock>> = (0..config.lanes)
            .map(|_| CsQueue::with_config(lane_cap, TasLock::new(), n, config.cs))
            .collect();
        ShardedCsQueue {
            router: Router::new(lanes, &config, n, effective, lane_cap, true),
        }
    }

    /// Enqueues `value` on behalf of process `proc`.
    pub fn enqueue(&self, proc: usize, value: V) -> EnqueueOutcome {
        if self.router.push(proc, value) {
            EnqueueOutcome::Enqueued
        } else {
            EnqueueOutcome::Full
        }
    }

    /// Dequeues on behalf of process `proc`.
    pub fn dequeue(&self, proc: usize) -> DequeueOutcome<V> {
        match self.router.pop(proc) {
            Some(v) => DequeueOutcome::Dequeued(v),
            None => DequeueOutcome::Empty,
        }
    }

    /// Total capacity (strict: as requested; relaxed: `lanes ×
    /// lane_cap`, see [`ShardedCsQueue::new`]).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.router.capacity()
    }

    /// Believed element count — one O(1) uncounted read (exact at
    /// quiescence; lags by at most the in-flight operations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.router.len()
    }

    /// Whether the queue is believed empty (same freshness as `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of processes the structure was built for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.router.n()
    }

    /// Number of lanes (total, including inactive ones).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.router.lanes().len()
    }

    /// Length of the currently active lane prefix.
    #[must_use]
    pub fn active_lanes(&self) -> usize {
        self.router.elastic().active()
    }

    /// The ordering mode.
    #[must_use]
    pub fn mode(&self) -> ShardMode {
        self.router.mode()
    }

    /// The checked out-of-order bound: 0 in strict mode; in relaxed
    /// mode `max((lanes − 1) × lane_cap, n − 1)`.
    #[must_use]
    pub fn relaxation_bound(&self) -> usize {
        self.router.relaxation_bound()
    }

    /// A snapshot of the router's counters.
    #[must_use]
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// The occupancy aggregate (per-lane counts, total, mask).
    #[must_use]
    pub fn aggregate(&self) -> &LaneAggregate {
        self.router.aggregate()
    }

    /// Direct access to lane `i` (telemetry: `path_stats()`,
    /// `combining_stats()`, … of the underlying cell).
    #[must_use]
    pub fn lane(&self, i: usize) -> &CsQueue<V, TasLock> {
        &self.router.lanes()[i]
    }

    /// The EWMA gate driving elastic split/merge decisions.
    #[must_use]
    pub fn gate(&self) -> &cso_core::AdaptiveGate {
        self.router.elastic().gate()
    }

    /// Whether elastic lane scaling is enabled.
    #[must_use]
    pub fn elastic_enabled(&self) -> bool {
        self.router.elastic().enabled()
    }

    /// Re-derives the occupancy aggregate (and, in strict mode, the
    /// order journal) from lane ground truth. Called automatically
    /// after a detected crash; exposed for audits and tests.
    pub fn refresh_occupancy(&self) {
        self.router.heal();
    }

    /// Registers per-lane metrics under `{prefix}_lane{i}` plus the
    /// router's own counters/gauges under `{prefix}_router_*`.
    pub fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        self.router.attach_metrics(registry, prefix);
    }
}

impl<V: QueueValue> std::fmt::Debug for ShardedCsQueue<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCsQueue")
            .field("lanes", &self.lanes())
            .field("active", &self.active_lanes())
            .field("mode", &self.mode())
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::CountScope;

    #[test]
    fn strict_mode_is_exact_fifo_across_lanes() {
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(32, 4, ShardConfig::strict(4));
        for (proc, v) in [(0, 10), (1, 11), (2, 12), (3, 13), (0, 14)] {
            assert_eq!(queue.enqueue(proc, v), EnqueueOutcome::Enqueued);
        }
        for expect in [10, 11, 12, 13, 14] {
            assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(expect));
        }
        assert_eq!(queue.dequeue(0), DequeueOutcome::Empty);
        assert_eq!(queue.relaxation_bound(), 0);
    }

    #[test]
    fn strict_full_is_the_requested_capacity() {
        // Lanes round up to capacity 4, but the journal enforces 3.
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(3, 2, ShardConfig::strict(2));
        assert_eq!(queue.capacity(), 3);
        for v in 0..3 {
            assert_eq!(queue.enqueue(0, v), EnqueueOutcome::Enqueued);
        }
        assert_eq!(queue.enqueue(1, 99), EnqueueOutcome::Full);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn solo_enqueue_and_dequeue_cost_exactly_seven_counted_accesses() {
        for config in [
            ShardConfig::strict(4),
            ShardConfig::relaxed(4, 12),
            ShardConfig::relaxed(4, 12).with_elastic(),
        ] {
            let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(64, 4, config);
            let scope = CountScope::start();
            assert_eq!(queue.enqueue(0, 7), EnqueueOutcome::Enqueued);
            assert_eq!(scope.take().total(), 7, "solo enqueue under {config:?}");
            let scope = CountScope::start();
            assert_eq!(queue.dequeue(0), DequeueOutcome::Dequeued(7));
            assert_eq!(scope.take().total(), 7, "solo dequeue under {config:?}");
        }
    }

    #[test]
    fn relaxed_lane_caps_round_down_to_powers_of_two() {
        // ceil(48/4)=12, k/(lanes-1)=24/3=8 → min 8 (already pow2).
        let q: ShardedCsQueue<u32> = ShardedCsQueue::new(48, 4, ShardConfig::relaxed(4, 24));
        assert_eq!(q.capacity(), 32);
        assert_eq!(q.relaxation_bound(), 24); // (4-1)*8 = 24 ≥ n-1
                                              // ceil(60/4)=15, 21/3=7 → min 7 → rounds down to 4.
        let q: ShardedCsQueue<u32> = ShardedCsQueue::new(60, 4, ShardConfig::relaxed(4, 21));
        assert_eq!(q.capacity(), 16);
        assert!(q.relaxation_bound() <= 21);
    }

    #[test]
    fn relaxed_dequeue_stays_within_the_relaxation_bound() {
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(8, 4, ShardConfig::relaxed(2, 4));
        let mut enqueued = Vec::new();
        for (proc, v) in [(0, 1), (1, 2), (0, 3), (1, 4), (0, 5), (1, 6)] {
            assert_eq!(queue.enqueue(proc, v), EnqueueOutcome::Enqueued);
            enqueued.push(v);
        }
        let bound = queue.relaxation_bound();
        let mut resident = enqueued.clone();
        for proc in 0..6 {
            if let DequeueOutcome::Dequeued(v) = queue.dequeue(proc % 4) {
                let pos_from_front = resident.iter().position(|&x| x == v).unwrap();
                assert!(
                    pos_from_front <= bound,
                    "{v} was {pos_from_front} from the front"
                );
                resident.retain(|&x| x != v);
            }
        }
        assert!(resident.is_empty());
    }

    #[test]
    fn full_only_after_every_lane_is_full() {
        // 4 lanes × lane_cap 1 (k = 3).
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(4, 2, ShardConfig::relaxed(4, 3));
        assert_eq!(queue.capacity(), 4);
        for v in 0..4 {
            assert_eq!(queue.enqueue(0, v), EnqueueOutcome::Enqueued, "enqueue {v}");
        }
        assert_eq!(queue.enqueue(0, 99), EnqueueOutcome::Full);
        assert!(queue.router_stats().spills >= 3);
        assert_eq!(queue.len(), 4);
    }

    #[test]
    fn elastic_contracts_to_one_lane_when_solo() {
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(
            64,
            4,
            ShardConfig::relaxed(4, 16)
                .with_elastic()
                .with_elastic_cadence(8, 0),
        );
        assert_eq!(queue.active_lanes(), 1, "starts contracted");
        for i in 0..200 {
            assert_eq!(queue.enqueue(0, i), EnqueueOutcome::Enqueued);
            assert!(queue.dequeue(0).is_dequeued());
        }
        assert_eq!(
            queue.active_lanes(),
            1,
            "solo traffic must stay at one lane"
        );
        let scope = CountScope::start();
        assert_eq!(queue.enqueue(0, 7), EnqueueOutcome::Enqueued);
        assert_eq!(scope.take().total(), 7);
        let _ = queue.dequeue(0);
    }

    #[test]
    fn concurrent_mixed_ops_conserve_values_in_both_modes() {
        for config in [
            ShardConfig::strict(4),
            ShardConfig::relaxed(4, 768).with_elastic(),
        ] {
            let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(1024, 8, config);
            let drained = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for proc in 0..8 {
                    let queue = &queue;
                    let drained = &drained;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..100u32 {
                            let v = proc as u32 * 1000 + i;
                            assert_eq!(queue.enqueue(proc, v), EnqueueOutcome::Enqueued);
                            if i % 2 == 0 {
                                if let DequeueOutcome::Dequeued(v) = queue.dequeue(proc) {
                                    mine.push(v);
                                }
                            }
                        }
                        drained.lock().unwrap().extend(mine);
                    });
                }
            });
            let mut seen: Vec<u32> = drained.into_inner().unwrap();
            for proc in 0..8 {
                while let DequeueOutcome::Dequeued(v) = queue.dequeue(proc) {
                    seen.push(v);
                }
            }
            seen.sort_unstable();
            let mut expect: Vec<u32> = (0..8)
                .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(seen, expect, "conservation under {config:?}");
            assert_eq!(queue.len(), 0);
        }
    }

    #[test]
    fn solo_affine_traffic_is_exact_fifo_even_relaxed() {
        // A solo producer routes every value to its home lane (never
        // full below lane_cap) and drains it back first: no steals, no
        // spills, exact FIFO — relaxation costs nothing when unused.
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(64, 2, ShardConfig::relaxed(2, 8));
        let lane_cap = queue.aggregate().lane_cap();
        for v in 0..lane_cap as u32 {
            assert_eq!(queue.enqueue(0, v), EnqueueOutcome::Enqueued);
        }
        let mut got = Vec::new();
        while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
            got.push(v);
        }
        assert_eq!(got, (0..lane_cap as u32).collect::<Vec<_>>());
        let stats = queue.router_stats();
        assert_eq!(stats.spills, 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn refresh_occupancy_rederives_the_aggregate() {
        let queue: ShardedCsQueue<u32> = ShardedCsQueue::new(16, 2, ShardConfig::strict(2));
        for v in 0..6 {
            assert_eq!(queue.enqueue(v as usize % 2, v), EnqueueOutcome::Enqueued);
        }
        let before = queue.len();
        queue.refresh_occupancy();
        assert_eq!(queue.len(), before, "heal must agree with live counts");
        // Strict heal preserves the exact FIFO order too.
        for expect in 0..6 {
            assert_eq!(queue.dequeue(0), DequeueOutcome::Dequeued(expect));
        }
        assert!(queue.router_stats().heals >= 1);
    }
}
