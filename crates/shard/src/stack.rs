//! The sharded contention-sensitive stack.

use cso_locks::TasLock;
use cso_metrics::Registry;
use cso_stack::{CsStack, PopOutcome, PushOutcome, StackValue};

use crate::aggregate::LaneAggregate;
use crate::config::{ShardConfig, ShardMode};
use crate::router::{Router, RouterStats, ShardLane};

impl<V: StackValue> ShardLane for CsStack<V, TasLock> {
    type Value = V;

    fn lane_push(&self, proc: usize, value: V) -> bool {
        matches!(self.push(proc, value), PushOutcome::Pushed)
    }

    fn lane_pop(&self, proc: usize) -> Option<V> {
        self.pop(proc).into_option()
    }

    fn lane_len(&self) -> usize {
        self.len()
    }

    fn lane_attach_metrics(&self, registry: &Registry, prefix: &str) {
        self.attach_metrics(registry, prefix);
    }
}

/// N independent Figure-3 stack cells behind the sharding router.
///
/// Each lane is a full [`CsStack`] — the escalation ladder, combining
/// slow path, and recovery machinery all work unchanged per lane, and
/// each lane keeps Theorem 1's exact six-access solo budget (the
/// router adds only uncounted bookkeeping). See the crate docs for
/// the ordering modes and the elasticity protocol.
///
/// ```
/// use cso_shard::{ShardConfig, ShardedCsStack};
/// use cso_stack::{PopOutcome, PushOutcome};
///
/// let stack: ShardedCsStack<u32> = ShardedCsStack::new(16, 4, ShardConfig::strict(2));
/// assert_eq!(stack.push(0, 1), PushOutcome::Pushed);
/// assert_eq!(stack.push(1, 2), PushOutcome::Pushed);
/// // Strict mode: exact LIFO across lanes.
/// assert_eq!(stack.pop(2), PopOutcome::Popped(2));
/// assert_eq!(stack.pop(3), PopOutcome::Popped(1));
/// assert_eq!(stack.pop(0), PopOutcome::Empty);
/// ```
pub struct ShardedCsStack<V: StackValue = u32> {
    router: Router<CsStack<V, TasLock>>,
}

impl<V: StackValue> ShardedCsStack<V> {
    /// A sharded stack holding up to `capacity` values for processes
    /// `0..n`, laid out per `config`.
    ///
    /// In strict mode every lane is sized to the full `capacity` (the
    /// order journal enforces the global bound), so `capacity()`
    /// reports exactly the requested capacity. In relaxed mode the
    /// per-lane capacity is `min(ceil(capacity / lanes), k / (lanes −
    /// 1))` — the second term is what makes the relaxation bound hold
    /// — and `capacity()` reports the effective `lanes × lane_cap`.
    ///
    /// # Panics
    ///
    /// Panics if `config.lanes` is outside `1..=64`, if a relaxed
    /// config has `k < lanes − 1` (some lane could hold nothing), or
    /// if the per-lane capacity violates `CsStack`'s own limits.
    #[must_use]
    pub fn new(capacity: usize, n: usize, config: ShardConfig) -> ShardedCsStack<V> {
        assert!((1..=64).contains(&config.lanes), "lanes must be in 1..=64");
        let (lane_cap, effective) = match config.mode {
            ShardMode::Strict => (capacity, capacity),
            ShardMode::Relaxed { k } => {
                assert!(
                    config.lanes == 1 || k >= config.lanes - 1,
                    "relaxed mode needs k >= lanes - 1 (got k={k}, lanes={})",
                    config.lanes
                );
                let per_lane = capacity.div_ceil(config.lanes).max(1);
                let from_k = if config.lanes > 1 {
                    k / (config.lanes - 1)
                } else {
                    usize::MAX
                };
                let lane_cap = per_lane.min(from_k);
                (lane_cap, lane_cap * config.lanes)
            }
        };
        let lanes: Vec<CsStack<V, TasLock>> = (0..config.lanes)
            .map(|_| CsStack::with_config(lane_cap, TasLock::new(), n, config.cs))
            .collect();
        ShardedCsStack {
            router: Router::new(lanes, &config, n, effective, lane_cap, false),
        }
    }

    /// Pushes `value` on behalf of process `proc`.
    pub fn push(&self, proc: usize, value: V) -> PushOutcome {
        if self.router.push(proc, value) {
            PushOutcome::Pushed
        } else {
            PushOutcome::Full
        }
    }

    /// Pops on behalf of process `proc`.
    pub fn pop(&self, proc: usize) -> PopOutcome<V> {
        match self.router.pop(proc) {
            Some(v) => PopOutcome::Popped(v),
            None => PopOutcome::Empty,
        }
    }

    /// Total capacity (strict: as requested; relaxed: `lanes ×
    /// lane_cap`, see [`ShardedCsStack::new`]).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.router.capacity()
    }

    /// Believed element count — one O(1) uncounted read (exact at
    /// quiescence; lags by at most the in-flight operations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.router.len()
    }

    /// Whether the stack is believed empty (same freshness as `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of processes the structure was built for.
    #[must_use]
    pub fn n(&self) -> usize {
        self.router.n()
    }

    /// Number of lanes (total, including inactive ones).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.router.lanes().len()
    }

    /// Length of the currently active lane prefix.
    #[must_use]
    pub fn active_lanes(&self) -> usize {
        self.router.elastic().active()
    }

    /// The ordering mode.
    #[must_use]
    pub fn mode(&self) -> ShardMode {
        self.router.mode()
    }

    /// The checked out-of-order bound: 0 in strict mode; in relaxed
    /// mode `max((lanes − 1) × lane_cap, n − 1)` (the first term
    /// bounds how far a popped value can be from the strict answer,
    /// the second the slack on Empty/Full answers from in-flight
    /// operations).
    #[must_use]
    pub fn relaxation_bound(&self) -> usize {
        self.router.relaxation_bound()
    }

    /// A snapshot of the router's counters.
    #[must_use]
    pub fn router_stats(&self) -> RouterStats {
        self.router.stats()
    }

    /// The occupancy aggregate (per-lane counts, total, mask).
    #[must_use]
    pub fn aggregate(&self) -> &LaneAggregate {
        self.router.aggregate()
    }

    /// Direct access to lane `i` (telemetry: `path_stats()`,
    /// `combining_stats()`, … of the underlying cell).
    #[must_use]
    pub fn lane(&self, i: usize) -> &CsStack<V, TasLock> {
        &self.router.lanes()[i]
    }

    /// The EWMA gate driving elastic split/merge decisions.
    #[must_use]
    pub fn gate(&self) -> &cso_core::AdaptiveGate {
        self.router.elastic().gate()
    }

    /// Whether elastic lane scaling is enabled.
    #[must_use]
    pub fn elastic_enabled(&self) -> bool {
        self.router.elastic().enabled()
    }

    /// Re-derives the occupancy aggregate (and, in strict mode, the
    /// order journal) from lane ground truth. Called automatically
    /// after a detected crash; exposed for audits and tests.
    pub fn refresh_occupancy(&self) {
        self.router.heal();
    }

    /// Registers per-lane metrics under `{prefix}_lane{i}` plus the
    /// router's own counters/gauges under `{prefix}_router_*`.
    pub fn attach_metrics(&self, registry: &Registry, prefix: &str) {
        self.router.attach_metrics(registry, prefix);
    }
}

impl<V: StackValue> std::fmt::Debug for ShardedCsStack<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCsStack")
            .field("lanes", &self.lanes())
            .field("active", &self.active_lanes())
            .field("mode", &self.mode())
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::CountScope;

    #[test]
    fn strict_mode_is_exact_lifo_across_lanes() {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(32, 4, ShardConfig::strict(4));
        // Different procs land in different lanes; order must still be
        // globally LIFO.
        for (proc, v) in [(0, 10), (1, 11), (2, 12), (3, 13), (0, 14)] {
            assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
        }
        for expect in [14, 13, 12, 11, 10] {
            assert_eq!(stack.pop(1), PopOutcome::Popped(expect));
        }
        assert_eq!(stack.pop(0), PopOutcome::Empty);
        assert_eq!(stack.relaxation_bound(), 0);
    }

    #[test]
    fn strict_full_is_the_requested_capacity() {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(3, 2, ShardConfig::strict(2));
        assert_eq!(stack.capacity(), 3);
        for v in 0..3 {
            assert_eq!(stack.push(0, v), PushOutcome::Pushed);
        }
        assert_eq!(stack.push(1, 99), PushOutcome::Full);
        assert_eq!(stack.len(), 3);
    }

    #[test]
    fn solo_push_and_pop_cost_exactly_six_counted_accesses() {
        for config in [
            ShardConfig::strict(4),
            ShardConfig::relaxed(4, 8),
            ShardConfig::relaxed(4, 8).with_elastic(),
        ] {
            let stack: ShardedCsStack<u32> = ShardedCsStack::new(64, 4, config);
            let scope = CountScope::start();
            assert_eq!(stack.push(0, 7), PushOutcome::Pushed);
            assert_eq!(scope.take().total(), 6, "solo push under {config:?}");
            let scope = CountScope::start();
            assert_eq!(stack.pop(0), PopOutcome::Popped(7));
            assert_eq!(scope.take().total(), 6, "solo pop under {config:?}");
        }
    }

    #[test]
    fn relaxed_pop_stays_within_the_relaxation_bound() {
        // 2 lanes × lane_cap 2 (k = 2): a popped value may be at most
        // 2 positions from the strict LIFO answer.
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(4, 4, ShardConfig::relaxed(2, 2));
        assert_eq!(stack.relaxation_bound(), 3); // max(2, n-1=3)
                                                 // Fill from alternating procs so both lanes hold values.
        let mut pushed = Vec::new();
        for (proc, v) in [(0, 1), (1, 2), (0, 3), (1, 4)] {
            assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
            pushed.push(v);
        }
        // Pop everything; every answer must be within `bound` of the
        // newest still-resident element's position.
        let bound = stack.relaxation_bound();
        let mut resident: Vec<u32> = pushed.clone();
        for proc in 0..4 {
            if let PopOutcome::Popped(v) = stack.pop(proc) {
                let pos_from_top = resident.iter().rev().position(|&x| x == v).unwrap();
                assert!(pos_from_top <= bound, "{v} was {pos_from_top} from the top");
                resident.retain(|&x| x != v);
            }
        }
        assert!(resident.is_empty());
    }

    #[test]
    fn spill_routes_a_push_past_a_full_home_lane() {
        // lane_cap = 1 (k=3, 4 lanes): proc 0's home lane fills after
        // one push; the second push must spill, not report Full.
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(4, 4, ShardConfig::relaxed(4, 3));
        assert_eq!(stack.push(0, 1), PushOutcome::Pushed);
        assert_eq!(stack.push(0, 2), PushOutcome::Pushed);
        assert!(stack.router_stats().spills >= 1);
        // And a pop from a proc whose home lane is empty steals.
        assert!(stack.pop(3).is_popped());
        assert!(stack.pop(3).is_popped());
        assert!(stack.router_stats().steals >= 1);
        assert_eq!(stack.pop(0), PopOutcome::Empty);
    }

    #[test]
    fn full_only_after_every_lane_is_full() {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(4, 2, ShardConfig::relaxed(4, 3));
        assert_eq!(stack.capacity(), 4);
        for v in 0..4 {
            assert_eq!(stack.push(0, v), PushOutcome::Pushed, "push {v}");
        }
        assert_eq!(stack.push(0, 99), PushOutcome::Full);
        assert_eq!(stack.len(), 4);
    }

    #[test]
    fn elastic_contracts_to_one_lane_when_solo() {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(
            64,
            4,
            ShardConfig::relaxed(4, 16)
                .with_elastic()
                .with_elastic_cadence(8, 0),
        );
        assert_eq!(stack.active_lanes(), 1, "starts contracted");
        for i in 0..200 {
            assert_eq!(stack.push(0, i), PushOutcome::Pushed);
            assert!(stack.pop(0).is_popped());
        }
        assert_eq!(
            stack.active_lanes(),
            1,
            "solo traffic must stay at one lane"
        );
        // Solo budget at one active lane is still exactly six.
        let scope = CountScope::start();
        assert_eq!(stack.push(0, 7), PushOutcome::Pushed);
        assert_eq!(scope.take().total(), 6);
        let _ = stack.pop(0);
    }

    #[test]
    fn concurrent_mixed_ops_conserve_values_in_both_modes() {
        for config in [
            ShardConfig::strict(4),
            ShardConfig::relaxed(4, 768).with_elastic(),
        ] {
            let stack: ShardedCsStack<u32> = ShardedCsStack::new(1024, 8, config);
            let popped = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for proc in 0..8 {
                    let stack = &stack;
                    let popped = &popped;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..100u32 {
                            let v = proc as u32 * 1000 + i;
                            assert_eq!(stack.push(proc, v), PushOutcome::Pushed);
                            if i % 2 == 0 {
                                if let PopOutcome::Popped(v) = stack.pop(proc) {
                                    mine.push(v);
                                }
                            }
                        }
                        popped.lock().unwrap().extend(mine);
                    });
                }
            });
            // Drain and account for every value exactly once.
            let mut seen: Vec<u32> = popped.into_inner().unwrap();
            for proc in 0..8 {
                while let PopOutcome::Popped(v) = stack.pop(proc) {
                    seen.push(v);
                }
            }
            seen.sort_unstable();
            let mut expect: Vec<u32> = (0..8)
                .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(seen, expect, "conservation under {config:?}");
            assert_eq!(stack.len(), 0);
        }
    }

    #[test]
    fn refresh_occupancy_rederives_the_aggregate() {
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(16, 2, ShardConfig::relaxed(2, 4));
        for v in 0..6 {
            assert_eq!(stack.push(v as usize % 2, v), PushOutcome::Pushed);
        }
        let before = stack.len();
        stack.refresh_occupancy();
        assert_eq!(stack.len(), before, "heal must agree with live counts");
        assert_eq!(
            (0..stack.lanes())
                .map(|i| stack.lane(i).len())
                .sum::<usize>(),
            before
        );
        assert!(stack.router_stats().heals >= 1);
    }

    #[test]
    fn attach_metrics_exposes_lanes_and_router() {
        let registry = Registry::new();
        let stack: ShardedCsStack<u32> = ShardedCsStack::new(16, 2, ShardConfig::relaxed(2, 4));
        stack.attach_metrics(&registry, "shard_stack");
        let _ = stack.push(0, 1);
        let _ = stack.pop(1);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.0.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("shard_stack_lane0_")));
        assert!(names.iter().any(|n| n.starts_with("shard_stack_lane1_")));
        assert!(names.contains(&"shard_stack_router_steals_total"));
    }
}
