//! The elastic lane controller: gate-driven split/merge.
//!
//! Reuses [`AdaptiveGate`] — the EWMA gate that arbitrates the
//! combining slow path — as the contention sensor for the *lane
//! count*. The signal fed to the gate is in-flight overlap: an
//! operation that enters while another operation is already inside
//! the structure records a "contended" sample. Solo traffic therefore
//! drives the EWMA to zero (merge down to one lane — the solo budget
//! is then exactly one unsharded cell's), and sustained overlap
//! engages the gate (split up to the configured maximum).
//!
//! Decisions are **operation-count driven, never wall-clock driven**:
//! every `eval_period`-th operation evaluates the gate, and a
//! `cooldown_evals` hysteresis separates consecutive transitions.
//! That keeps the controller inside the model runtime's determinism
//! contract — the same schedule always produces the same split/merge
//! history (`tests/model_shard.rs` explores exactly this).
//!
//! Active lanes are always the prefix `0..active`. Pushes route only
//! into the active prefix (spilling past it only when every active
//! lane is full); pops steal from *all* lanes, so shrinking the
//! prefix can never strand elements — deactivated lanes simply drain.
//!
//! All state here is uncounted (`std::sync::atomic`): the controller
//! costs none of Theorem 1's budget.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use cso_core::AdaptiveGate;
use cso_memory::CachePadded;

#[derive(Debug)]
pub(crate) struct Elastic {
    /// EWMA contention gate (engaged ⇒ fan out).
    gate: AdaptiveGate,
    /// Length of the active lane prefix, `1..=max_lanes`.
    active: AtomicUsize,
    /// Operations currently inside the structure (overlap sensor).
    inflight: CachePadded<AtomicUsize>,
    /// Operation counter driving the evaluation cadence.
    ops: CachePadded<AtomicUsize>,
    /// Evaluations to skip before the next transition is allowed.
    cooldown: AtomicUsize,
    splits: AtomicU64,
    merges: AtomicU64,
    max_lanes: usize,
    eval_period: usize,
    cooldown_evals: usize,
    enabled: bool,
}

impl Elastic {
    pub(crate) fn new(
        max_lanes: usize,
        enabled: bool,
        eval_period: usize,
        cooldown_evals: usize,
    ) -> Elastic {
        assert!(eval_period > 0, "eval_period must be nonzero");
        Elastic {
            gate: AdaptiveGate::new(),
            active: AtomicUsize::new(if enabled { 1 } else { max_lanes }),
            inflight: CachePadded::new(AtomicUsize::new(0)),
            ops: CachePadded::new(AtomicUsize::new(0)),
            cooldown: AtomicUsize::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            max_lanes,
            eval_period,
            cooldown_evals,
            enabled,
        }
    }

    /// The active lane prefix length.
    pub(crate) fn active(&self) -> usize {
        if self.enabled {
            self.active.load(Ordering::Acquire).clamp(1, self.max_lanes)
        } else {
            self.max_lanes
        }
    }

    /// Marks an operation as entering; returns `true` when another
    /// operation is already in flight (a "contended" sample). No-op
    /// (always solo) when elasticity is disabled.
    pub(crate) fn enter(&self) -> bool {
        if !self.enabled {
            return false;
        }
        self.inflight.fetch_add(1, Ordering::AcqRel) > 0
    }

    /// Marks the operation as leaving (paired with [`Elastic::enter`]).
    pub(crate) fn exit(&self) {
        if self.enabled {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Feeds the overlap sample to the gate and, every `eval_period`
    /// operations, re-evaluates the lane count: engaged gate ⇒ double
    /// the active prefix; disengaged gate ⇒ halve it.
    pub(crate) fn record(&self, contended: bool) {
        if !self.enabled {
            return;
        }
        self.gate.record(contended);
        let tick = self.ops.fetch_add(1, Ordering::AcqRel) + 1;
        if tick % self.eval_period != 0 {
            return;
        }
        // Only the thread that crossed the period boundary evaluates.
        if self
            .cooldown
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| c.checked_sub(1))
            .is_ok()
        {
            return; // still cooling down after the last transition
        }
        let active = self.active();
        let target = if self.gate.engaged() {
            (active * 2).min(self.max_lanes)
        } else {
            (active / 2).max(1)
        };
        if target > active {
            self.active.store(target, Ordering::Release);
            self.splits.fetch_add(1, Ordering::AcqRel);
            self.cooldown.store(self.cooldown_evals, Ordering::Release);
        } else if target < active {
            self.active.store(target, Ordering::Release);
            self.merges.fetch_add(1, Ordering::AcqRel);
            self.cooldown.store(self.cooldown_evals, Ordering::Release);
        }
    }

    pub(crate) fn gate(&self) -> &AdaptiveGate {
        &self.gate
    }

    pub(crate) fn splits(&self) -> u64 {
        self.splits.load(Ordering::Acquire)
    }

    pub(crate) fn merges(&self) -> u64 {
        self.merges.load(Ordering::Acquire)
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_controller_pins_all_lanes_active() {
        let e = Elastic::new(8, false, 4, 0);
        assert_eq!(e.active(), 8);
        assert!(!e.enter());
        e.exit();
        for _ in 0..256 {
            e.record(true);
        }
        assert_eq!(e.active(), 8);
        assert_eq!(e.splits(), 0);
    }

    #[test]
    fn sustained_contention_splits_and_quiet_merges() {
        let e = Elastic::new(4, true, 4, 0);
        assert_eq!(e.active(), 1);
        // Engage the gate, then let evaluations double the prefix.
        for _ in 0..256 {
            e.record(true);
        }
        assert_eq!(e.active(), 4, "sustained overlap must fan out");
        assert!(e.splits() >= 2);
        // Quiet traffic disengages the gate and merges back to 1.
        for _ in 0..1024 {
            e.record(false);
        }
        assert_eq!(e.active(), 1, "solo traffic must contract");
        assert!(e.merges() >= 2);
    }

    #[test]
    fn cooldown_spaces_transitions() {
        let e = Elastic::new(8, true, 4, 2);
        for _ in 0..4 {
            e.record(true);
        }
        let after_one_eval = e.active();
        for _ in 0..8 {
            e.record(true);
        }
        // Two more evaluation points passed, both absorbed by the
        // cooldown: the lane count must not have doubled twice more.
        assert!(e.active() <= after_one_eval * 2);
    }

    #[test]
    fn inflight_overlap_is_the_contention_signal() {
        let e = Elastic::new(2, true, 1, 0);
        assert!(!e.enter(), "first entrant sees no overlap");
        assert!(e.enter(), "second entrant overlaps the first");
        e.exit();
        e.exit();
    }
}
