//! The f-array-style per-lane occupancy aggregate.
//!
//! "Write-and-f-array" (PAPERS.md) shows how to keep an O(1)-readable
//! aggregate view over a set of base cells by pairing each update with
//! a small bounded propagation. This is the sharded router's version
//! of that idea, specialized to what routing needs: per-lane occupancy
//! counters, a maintained total, and a nonempty bitmask — all plain
//! (`std::sync::atomic`, *uncounted*) operations, so consulting the
//! aggregate never spends any of the paper's counted access budget.
//!
//! The aggregate is a **routing hint, not a correctness mechanism**:
//! every decision it guides is re-validated by the lane operation
//! itself (which is linearizable). Under concurrency a reader can see
//! a value that lags the truth by at most the number of in-flight
//! operations — each operation updates the aggregate immediately
//! after its lane operation returns — and the router's probe protocol
//! turns that into the documented ≤ n − 1 slack on Empty/Full
//! answers. A crashed operation never updates the aggregate at all;
//! the [`dirty`](LaneAggregate::mark_dirty) flag plus
//! [`resync`](LaneAggregate::resync) re-derive the counters from the
//! lanes (see the router's heal path and the E14 kill-site audit in
//! DESIGN.md).

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, Ordering};

use cso_memory::CachePadded;

/// Per-lane occupancy counters + nonempty mask + maintained total.
///
/// All reads and writes are uncounted; lanes are capped at 64 so the
/// mask fits one `AtomicU64`.
#[derive(Debug)]
pub struct LaneAggregate {
    /// Per-lane element counts (cache-padded: each lane's operations
    /// update their own line). `isize` because transient interleavings
    /// of the unfenced updates may briefly undershoot zero.
    occ: Vec<CachePadded<AtomicIsize>>,
    /// Maintained sum of all lanes — the f-array "write-and-snapshot"
    /// read: total size in O(1).
    total: CachePadded<AtomicIsize>,
    /// Bit `i` set ⇒ lane `i` is believed nonempty.
    nonempty: AtomicU64,
    /// Per-lane capacity the router enforces (`looks_full`).
    lane_cap: usize,
    /// Set when an operation unwound mid-lane (crash/panic): counters
    /// may have drifted and must be re-derived from the lanes.
    dirty: AtomicBool,
}

impl LaneAggregate {
    /// An aggregate over `lanes` lanes of capacity `lane_cap` each.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64.
    #[must_use]
    pub fn new(lanes: usize, lane_cap: usize) -> LaneAggregate {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        LaneAggregate {
            occ: (0..lanes)
                .map(|_| CachePadded::new(AtomicIsize::new(0)))
                .collect(),
            total: CachePadded::new(AtomicIsize::new(0)),
            nonempty: AtomicU64::new(0),
            lane_cap,
            dirty: AtomicBool::new(false),
        }
    }

    /// Number of lanes covered.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.occ.len()
    }

    /// The per-lane capacity `looks_full` compares against.
    #[must_use]
    pub fn lane_cap(&self) -> usize {
        self.lane_cap
    }

    /// Records a successful push/enqueue into `lane`.
    pub fn record_push(&self, lane: usize) {
        let prev = self.occ[lane].fetch_add(1, Ordering::AcqRel);
        self.total.fetch_add(1, Ordering::AcqRel);
        if prev <= 0 {
            self.nonempty.fetch_or(1 << lane, Ordering::AcqRel);
        }
    }

    /// Records a successful pop/dequeue out of `lane`.
    pub fn record_pop(&self, lane: usize) {
        let prev = self.occ[lane].fetch_sub(1, Ordering::AcqRel);
        self.total.fetch_sub(1, Ordering::AcqRel);
        if prev <= 1 {
            self.nonempty.fetch_and(!(1 << lane), Ordering::AcqRel);
            // A push may have raced between our decrement and the
            // clear; re-validate so the bit converges to the truth.
            if self.occ[lane].load(Ordering::Acquire) > 0 {
                self.nonempty.fetch_or(1 << lane, Ordering::AcqRel);
            }
        }
    }

    /// Whether lane `lane` is believed nonempty (O(1) mask read).
    #[must_use]
    pub fn looks_nonempty(&self, lane: usize) -> bool {
        self.nonempty.load(Ordering::Acquire) & (1 << lane) != 0
    }

    /// Whether lane `lane` is believed at capacity.
    #[must_use]
    pub fn looks_full(&self, lane: usize) -> bool {
        self.occ[lane].load(Ordering::Acquire) >= self.lane_cap as isize
    }

    /// The believed occupancy of `lane` (clamped at 0).
    #[must_use]
    pub fn occupancy(&self, lane: usize) -> usize {
        self.occ[lane].load(Ordering::Acquire).max(0) as usize
    }

    /// The believed total size across lanes — one O(1) load.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total.load(Ordering::Acquire).max(0) as usize
    }

    /// Whether the structure is believed empty (O(1)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nonempty_mask() == 0
    }

    /// The nonempty bitmask (bit `i` ⇒ lane `i` has elements).
    #[must_use]
    pub fn nonempty_mask(&self) -> u64 {
        self.nonempty.load(Ordering::Acquire)
    }

    /// Overwrites lane `lane`'s count with ground truth `actual`
    /// (read from the lane itself), adjusting the total by the same
    /// delta and fixing the mask bit. Used by the heal path after a
    /// crash and by `refresh_occupancy()` audits.
    pub fn resync(&self, lane: usize, actual: usize) {
        let actual = actual as isize;
        let old = self.occ[lane].swap(actual, Ordering::AcqRel);
        self.total.fetch_add(actual - old, Ordering::AcqRel);
        if actual > 0 {
            self.nonempty.fetch_or(1 << lane, Ordering::AcqRel);
        } else {
            self.nonempty.fetch_and(!(1 << lane), Ordering::AcqRel);
        }
    }

    /// Flags the aggregate as possibly drifted (an operation unwound
    /// between its lane op and its aggregate update).
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Release);
    }

    /// Consumes the dirty flag; `true` means a heal is owed.
    pub fn take_dirty(&self) -> bool {
        self.dirty.swap(false, Ordering::AcqRel)
    }

    /// Whether a heal is currently owed.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_mask_track_ops() {
        let agg = LaneAggregate::new(4, 2);
        assert_eq!(agg.len(), 0);
        assert!(agg.is_empty());
        agg.record_push(1);
        agg.record_push(1);
        agg.record_push(3);
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.occupancy(1), 2);
        assert!(agg.looks_full(1));
        assert!(!agg.looks_full(3));
        assert_eq!(agg.nonempty_mask(), 0b1010);
        agg.record_pop(1);
        agg.record_pop(1);
        assert!(!agg.looks_nonempty(1));
        assert!(agg.looks_nonempty(3));
        assert_eq!(agg.len(), 1);
    }

    #[test]
    fn resync_restores_ground_truth() {
        let agg = LaneAggregate::new(2, 8);
        agg.record_push(0);
        agg.record_push(0);
        // Simulate a crashed push that applied but never recorded:
        // ground truth says 3.
        agg.mark_dirty();
        assert!(agg.take_dirty());
        assert!(!agg.take_dirty());
        agg.resync(0, 3);
        assert_eq!(agg.occupancy(0), 3);
        assert_eq!(agg.len(), 3);
        agg.resync(0, 0);
        assert!(agg.is_empty());
        assert_eq!(agg.len(), 0);
    }

    #[test]
    fn concurrent_updates_conserve_counts() {
        let agg = std::sync::Arc::new(LaneAggregate::new(4, usize::MAX / 2));
        std::thread::scope(|s| {
            for t in 0..4 {
                let agg = std::sync::Arc::clone(&agg);
                s.spawn(move || {
                    for i in 0..1000 {
                        agg.record_push((t + i) % 4);
                    }
                    for i in 0..1000 {
                        agg.record_pop((t + i) % 4);
                    }
                });
            }
        });
        assert_eq!(agg.len(), 0);
        for lane in 0..4 {
            assert_eq!(agg.occupancy(lane), 0);
        }
    }
}
