//! Configuration for the sharded structures: lane count, ordering
//! mode, and the elastic controller's knobs.

use cso_core::CsConfig;

/// The ordering discipline a sharded structure provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Exact LIFO/FIFO. A ticket latch serializes lane selection and
    /// an order journal records which lane holds each position, so the
    /// structure linearizes against the unrelaxed sequential spec.
    /// Scaling is limited by the order section (E17's "stealing tax").
    Strict,
    /// Out-of-order by at most a checked bound. Lane capacity is
    /// derived from `k` so that at most `(lanes − 1) × lane_cap ≤ k`
    /// elements can ever sit in *other* lanes when a pop takes its
    /// lane-local answer; the effective bound (including the ≤ n − 1
    /// slack that concurrent in-flight operations add to Empty/Full
    /// answers) is reported by `relaxation_bound()`.
    Relaxed {
        /// Maximum out-of-order distance contributed by lane layout.
        k: usize,
    },
}

/// Configuration for [`ShardedCsStack`](crate::ShardedCsStack) /
/// [`ShardedCsQueue`](crate::ShardedCsQueue).
///
/// Build with [`ShardConfig::strict`] or [`ShardConfig::relaxed`],
/// then chain `with_*` adapters:
///
/// ```
/// use cso_core::CsConfig;
/// use cso_shard::ShardConfig;
///
/// let cfg = ShardConfig::relaxed(8, 16)
///     .with_elastic()
///     .with_cs(CsConfig::LADDER);
/// assert_eq!(cfg.lanes, 8);
/// assert!(cfg.elastic);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Number of lanes (independent Figure-3 cells), `1..=64`.
    pub lanes: usize,
    /// Ordering discipline.
    pub mode: ShardMode,
    /// When true, the active lane prefix grows and shrinks with the
    /// EWMA contention gate; when false all `lanes` are always active.
    pub elastic: bool,
    /// Router operations between elastic evaluations.
    pub eval_period: usize,
    /// Evaluations skipped after a split/merge (hysteresis beyond the
    /// gate's own bands, so the lane count cannot thrash).
    pub cooldown_evals: usize,
    /// The per-lane cell configuration (ladder, combining, recovery —
    /// every `CsConfig` preset works unchanged inside a lane).
    pub cs: CsConfig,
}

impl ShardConfig {
    /// Strict (exact-order) sharding across `lanes` lanes.
    #[must_use]
    pub const fn strict(lanes: usize) -> ShardConfig {
        ShardConfig {
            lanes,
            mode: ShardMode::Strict,
            elastic: false,
            eval_period: 64,
            cooldown_evals: 2,
            cs: CsConfig::PAPER,
        }
    }

    /// k-relaxed sharding across `lanes` lanes: pops may return an
    /// element up to `k` positions away from the strict answer
    /// (requires `k ≥ lanes − 1` so every lane can hold at least one
    /// element).
    #[must_use]
    pub const fn relaxed(lanes: usize, k: usize) -> ShardConfig {
        ShardConfig {
            lanes,
            mode: ShardMode::Relaxed { k },
            elastic: false,
            eval_period: 64,
            cooldown_evals: 2,
            cs: CsConfig::PAPER,
        }
    }

    /// Enables elastic lane split/merge (starts contracted at one
    /// lane; the gate fans out as contention rises).
    #[must_use]
    pub const fn with_elastic(mut self) -> ShardConfig {
        self.elastic = true;
        self
    }

    /// Overrides the per-lane cell configuration.
    #[must_use]
    pub const fn with_cs(mut self, cs: CsConfig) -> ShardConfig {
        self.cs = cs;
        self
    }

    /// Overrides the elastic controller cadence. Small periods react
    /// (and can be exercised deterministically in model tests); large
    /// periods smooth. `eval_period` must be nonzero.
    #[must_use]
    pub const fn with_elastic_cadence(
        mut self,
        eval_period: usize,
        cooldown_evals: usize,
    ) -> ShardConfig {
        self.eval_period = eval_period;
        self.cooldown_evals = cooldown_evals;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = ShardConfig::strict(4);
        assert_eq!(cfg.mode, ShardMode::Strict);
        assert!(!cfg.elastic);

        let cfg = ShardConfig::relaxed(8, 16)
            .with_elastic()
            .with_elastic_cadence(8, 1);
        assert_eq!(cfg.mode, ShardMode::Relaxed { k: 16 });
        assert!(cfg.elastic);
        assert_eq!(cfg.eval_period, 8);
        assert_eq!(cfg.cooldown_evals, 1);
    }
}
