//! The contention-sensitive starvation-free queue (Figure-3
//! methodology).

use std::time::Duration;

use cso_core::{
    AdaptiveGate, BatchStats, CombiningStats, ContentionSensitive, CsConfig, CsError, FaultStats,
    PathStats, ProgressCondition, RecoveryStats,
};
use cso_locks::{RawLock, TasLock};
use cso_memory::bits::Bits32;

use crate::abortable::{AbortableQueue, QueueAbortStats};
use crate::outcome::{DequeueOutcome, EnqueueOutcome, QueueOp};

/// A **contention-sensitive, starvation-free bounded FIFO queue**:
/// the Figure 3 transformation instantiated for the queue.
///
/// A contention-free `enqueue`/`dequeue` takes the lock-free fast path
/// in **seven** shared-memory accesses (one `CONTENTION` read + the
/// six of a solo weak queue operation — one more than the stack
/// because a bounded queue checks the opposite end). Under contention
/// operations fall back to the §4.4-boosted lock, so every invocation
/// terminates with a non-⊥ value.
///
/// Because the weak enqueue and dequeue never abort each other, the
/// pairs the paper calls *non-interfering* (§1.1) almost always stay
/// on the fast path even when both ends are busy — experiment E6
/// measures exactly that.
///
/// ```
/// use cso_queue::{CsQueue, EnqueueOutcome, DequeueOutcome};
///
/// let queue: CsQueue<u32> = CsQueue::new(16, 2);
/// assert_eq!(queue.enqueue(0, 10), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(10));
/// assert_eq!(queue.dequeue(1), DequeueOutcome::Empty);
/// ```
#[derive(Debug)]
pub struct CsQueue<V: Bits32, L: RawLock = TasLock> {
    inner: ContentionSensitive<AbortableQueue<V>, L>,
}

impl<V: Bits32> CsQueue<V, TasLock> {
    /// Creates an empty queue of capacity `capacity` (a power of two
    /// at most 2¹⁵) for `n` processes with the default TAS lock.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities (see [`AbortableQueue::new`]) or
    /// if `n == 0`.
    #[must_use]
    pub fn new(capacity: usize, n: usize) -> CsQueue<V, TasLock> {
        CsQueue::with_lock(capacity, TasLock::new(), n)
    }
}

impl<V: Bits32, L: RawLock> CsQueue<V, L> {
    /// Creates an empty queue using `lock` (deadlock-free suffices)
    /// for the slow path.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities or if `n == 0`.
    #[must_use]
    pub fn with_lock(capacity: usize, lock: L, n: usize) -> CsQueue<V, L> {
        CsQueue::with_config(capacity, lock, n, CsConfig::PAPER)
    }

    /// Creates a queue with an explicit mechanism selection (the E8
    /// ablations).
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities or if `n == 0`.
    #[must_use]
    pub fn with_config(capacity: usize, lock: L, n: usize, config: CsConfig) -> CsQueue<V, L> {
        CsQueue {
            inner: ContentionSensitive::with_config(AbortableQueue::new(capacity), lock, n, config),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::StarvationFree;

    /// Enqueues `value` on behalf of process `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn enqueue(&self, proc: usize, value: V) -> EnqueueOutcome {
        self.inner
            .apply(proc, &QueueOp::Enqueue(value))
            .expect_enqueue()
    }

    /// Dequeues on behalf of process `proc`; never returns ⊥.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn dequeue(&self, proc: usize) -> DequeueOutcome<V> {
        self.inner.apply(proc, &QueueOp::Dequeue).expect_dequeue()
    }

    /// Deadline-bounded [`CsQueue::enqueue`]: gives up with no effect
    /// if the slow-path lock stays unavailable for `timeout` (e.g.
    /// wedged by a crashed holder — the §5 failure mode).
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first, or
    /// [`CsError::Unrecoverable`] if the crash-recovery succession
    /// budget is exhausted (see [`cso_core::RecoveryPolicy`]).
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn try_enqueue_for(
        &self,
        proc: usize,
        value: V,
        timeout: Duration,
    ) -> Result<EnqueueOutcome, CsError> {
        self.inner
            .try_apply_for(proc, &QueueOp::Enqueue(value), timeout)
            .map(|resp| resp.expect_enqueue())
    }

    /// Deadline-bounded [`CsQueue::dequeue`]; see
    /// [`CsQueue::try_enqueue_for`].
    ///
    /// # Errors
    ///
    /// Returns [`CsError::TimedOut`] if the deadline expired first, or
    /// [`CsError::Unrecoverable`] if the crash-recovery succession
    /// budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `proc >= n`.
    pub fn try_dequeue_for(
        &self,
        proc: usize,
        timeout: Duration,
    ) -> Result<DequeueOutcome<V>, CsError> {
        self.inner
            .try_apply_for(proc, &QueueOp::Dequeue, timeout)
            .map(|resp| resp.expect_dequeue())
    }

    /// The capacity fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.inner().capacity()
    }

    /// Racy size snapshot (two shared accesses).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.inner().len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.inner().is_empty()
    }

    /// The number of processes this queue serves.
    #[must_use]
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Fast-path vs lock-path completion counts (experiment E6).
    pub fn path_stats(&self) -> PathStats {
        self.inner.stats()
    }

    /// Resets the path statistics.
    pub fn reset_path_stats(&self) {
        self.inner.reset_stats()
    }

    /// Attempt/abort counters of the underlying weak operations.
    pub fn abort_stats(&self) -> QueueAbortStats {
        self.inner.inner().abort_stats()
    }

    /// Survived slow-path panics and deadline expiries (see
    /// [`ContentionSensitive::fault_stats`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    /// Combiner-tenure totals of the flat-combining slow path
    /// (all zero unless built with [`CsConfig::with_combining`]).
    pub fn combining_stats(&self) -> CombiningStats {
        self.inner.combining_stats()
    }

    /// Batches seen by the underlying abortable queue through its
    /// batch-apply hooks.
    pub fn batch_stats(&self) -> BatchStats {
        self.inner.inner().batch_stats()
    }

    /// The adaptive contention gate (consulted only when built with
    /// [`CsConfig::with_adaptive_gate`]).
    pub fn gate(&self) -> &AdaptiveGate {
        self.inner.gate()
    }

    /// Whether the slow path is permanently closed because the
    /// crash-recovery succession budget ran out (see
    /// [`ContentionSensitive::is_poisoned`]).
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Crash-recovery counters, or `None` unless built with
    /// [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::recovery_stats`]).
    #[must_use]
    pub fn recovery_stats(&self) -> Option<RecoveryStats> {
        self.inner.recovery_stats()
    }

    /// The liveness registry driving crash recovery, or `None` unless
    /// built with [`CsConfig::with_recovery`] (see
    /// [`ContentionSensitive::liveness`]).
    #[must_use]
    pub fn liveness(&self) -> Option<&std::sync::Arc<cso_core::Liveness>> {
        self.inner.liveness()
    }

    /// Registers this queue's live metrics under `prefix` (see
    /// [`ContentionSensitive::attach_metrics`]; first call wins, and
    /// unattached queues keep Theorem 1's access budget untouched).
    pub fn attach_metrics(&self, registry: &cso_metrics::Registry, prefix: &str) {
        self.inner.attach_metrics(registry, prefix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::counting::CountScope;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_solo() {
        let queue: CsQueue<u32> = CsQueue::new(8, 2);
        for v in 1..=5 {
            assert_eq!(queue.enqueue(0, v), EnqueueOutcome::Enqueued);
        }
        for v in 1..=5 {
            assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(v));
        }
        assert_eq!(queue.dequeue(0), DequeueOutcome::Empty);
    }

    #[test]
    fn solo_ops_are_exactly_seven_accesses() {
        let queue: CsQueue<u32> = CsQueue::new(64, 4);
        queue.enqueue(0, 1);
        let scope = CountScope::start();
        queue.enqueue(0, 2);
        assert_eq!(
            scope.take().total(),
            7,
            "CONTENTION read + 6-access weak enqueue"
        );
        let scope = CountScope::start();
        queue.dequeue(0);
        assert_eq!(
            scope.take().total(),
            7,
            "CONTENTION read + 6-access weak dequeue"
        );
        assert_eq!(queue.path_stats().locked, 0);
    }

    #[test]
    fn full_and_empty_solo() {
        let queue: CsQueue<u32> = CsQueue::new(1, 2);
        assert_eq!(queue.dequeue(0), DequeueOutcome::Empty);
        assert_eq!(queue.enqueue(0, 1), EnqueueOutcome::Enqueued);
        assert_eq!(queue.enqueue(0, 2), EnqueueOutcome::Full);
        assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(1));
    }

    #[test]
    fn concurrent_strong_ops_conserve_values() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 1_500;
        let queue: Arc<CsQueue<u32>> = Arc::new(CsQueue::new(8192, THREADS as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            queue.enqueue(t as usize, t * PER_THREAD + i),
                            EnqueueOutcome::Enqueued
                        );
                        if let DequeueOutcome::Dequeued(v) = queue.dequeue(t as usize) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }

    #[test]
    fn ablation_configs_remain_correct() {
        for config in [CsConfig::PAPER, CsConfig::NO_FLAG, CsConfig::UNFAIR] {
            let queue: CsQueue<u32> = CsQueue::with_config(8, TasLock::new(), 2, config);
            assert_eq!(queue.enqueue(0, 1), EnqueueOutcome::Enqueued);
            assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(1));
        }
    }

    /// Forced-slow combining on the queue: tenure accounting holds and
    /// the batch hooks reach the underlying abortable queue.
    #[test]
    fn combining_slow_path_conserves_and_reports_batches() {
        const THREADS: u32 = 3;
        const PER_THREAD: u32 = 1_000;
        let config = CsConfig::PAPER.without_fast_path().with_combining();
        let queue: Arc<CsQueue<u32>> = Arc::new(CsQueue::with_config(
            4096,
            TasLock::new(),
            THREADS as usize,
            config,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert_eq!(
                            queue.enqueue(t as usize, t * PER_THREAD + i),
                            EnqueueOutcome::Enqueued
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = HashSet::new();
        while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
            assert!(seen.insert(v), "duplicate value {v}");
        }
        assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);

        let paths = queue.path_stats();
        let combining = queue.combining_stats();
        assert_eq!(paths.fast, 0, "fast path disabled");
        assert_eq!(combining.batches + combining.combined, paths.locked);
        assert_eq!(queue.batch_stats().applied, combining.combined);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_proc() {
        let queue: CsQueue<u32> = CsQueue::new(8, 2);
        let _ = queue.enqueue(2, 1);
    }
}
