//! The sequential reference queue (differential-testing oracle).

use std::collections::VecDeque;

use crate::outcome::{DequeueOutcome, EnqueueOutcome, QueueOp, QueueResponse};

/// A plain single-threaded bounded FIFO queue with the same
/// vocabulary as the concurrent ones — the sequential specification
/// linearizability is defined against.
///
/// ```
/// use cso_queue::{SeqQueue, EnqueueOutcome, DequeueOutcome};
///
/// let mut queue = SeqQueue::new(2);
/// assert_eq!(queue.enqueue(1), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue(2), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue(3), EnqueueOutcome::Full);
/// assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeqQueue<V> {
    capacity: usize,
    items: VecDeque<V>,
}

impl<V: Clone> SeqQueue<V> {
    /// Creates an empty queue of capacity `capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> SeqQueue<V> {
        SeqQueue {
            capacity,
            items: VecDeque::new(),
        }
    }

    /// Enqueues `value`, or reports `Full` at capacity.
    pub fn enqueue(&mut self, value: V) -> EnqueueOutcome {
        if self.items.len() == self.capacity {
            EnqueueOutcome::Full
        } else {
            self.items.push_back(value);
            EnqueueOutcome::Enqueued
        }
    }

    /// Dequeues the front value, or reports `Empty`.
    pub fn dequeue(&mut self) -> DequeueOutcome<V> {
        match self.items.pop_front() {
            Some(v) => DequeueOutcome::Dequeued(v),
            None => DequeueOutcome::Empty,
        }
    }

    /// Applies an operation descriptor (checker-facing interface).
    pub fn apply(&mut self, op: &QueueOp<V>) -> QueueResponse<V> {
        match op {
            QueueOp::Enqueue(v) => QueueResponse::Enqueue(self.enqueue(v.clone())),
            QueueOp::Dequeue => QueueResponse::Dequeue(self.dequeue()),
        }
    }

    /// Current size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A front-first view of the current content.
    #[must_use]
    pub fn items(&self) -> &VecDeque<V> {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_semantics() {
        let mut q = SeqQueue::new(2);
        assert_eq!(q.dequeue(), DequeueOutcome::<u32>::Empty);
        assert_eq!(q.enqueue(1), EnqueueOutcome::Enqueued);
        assert_eq!(q.enqueue(2), EnqueueOutcome::Enqueued);
        assert_eq!(q.enqueue(3), EnqueueOutcome::Full);
        assert_eq!(q.dequeue(), DequeueOutcome::Dequeued(1));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.items().front(), Some(&2));
    }

    #[test]
    fn apply_mirrors_direct_calls() {
        let mut q = SeqQueue::new(4);
        assert_eq!(
            q.apply(&QueueOp::Enqueue(7u32)),
            QueueResponse::Enqueue(EnqueueOutcome::Enqueued)
        );
        assert_eq!(
            q.apply(&QueueOp::Dequeue),
            QueueResponse::Dequeue(DequeueOutcome::Dequeued(7))
        );
    }
}
