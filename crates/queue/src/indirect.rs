//! Arbitrary payloads over the 32-bit register queues.

use cso_core::ContentionManager;
use cso_locks::RawLock;
use cso_memory::slab::Slab;

use crate::contention_sensitive::CsQueue;
use crate::nonblocking::NonBlockingQueue;
use crate::outcome::{DequeueOutcome, EnqueueOutcome};

/// A queue of 32-bit *handles* — the common face of [`CsQueue<u32>`]
/// and [`NonBlockingQueue<u32>`] that [`IndirectQueue`] builds on.
pub trait HandleQueue: Send + Sync {
    /// Enqueues a handle.
    fn enqueue_handle(&self, proc: usize, handle: u32) -> EnqueueOutcome;

    /// Dequeues a handle.
    fn dequeue_handle(&self, proc: usize) -> DequeueOutcome<u32>;

    /// The capacity of the handle queue.
    fn handle_capacity(&self) -> usize;
}

impl<L: RawLock> HandleQueue for CsQueue<u32, L> {
    fn enqueue_handle(&self, proc: usize, handle: u32) -> EnqueueOutcome {
        self.enqueue(proc, handle)
    }

    fn dequeue_handle(&self, proc: usize) -> DequeueOutcome<u32> {
        self.dequeue(proc)
    }

    fn handle_capacity(&self) -> usize {
        self.capacity()
    }
}

impl<M: ContentionManager> HandleQueue for NonBlockingQueue<u32, M> {
    fn enqueue_handle(&self, _proc: usize, handle: u32) -> EnqueueOutcome {
        self.enqueue(handle)
    }

    fn dequeue_handle(&self, _proc: usize) -> DequeueOutcome<u32> {
        self.dequeue()
    }

    fn handle_capacity(&self) -> usize {
        self.capacity()
    }
}

/// A bounded concurrent FIFO queue of arbitrary `Send` payloads:
/// values live in a fixed slab and the chosen register queue carries
/// their 32-bit handles.
///
/// ```
/// use cso_queue::{CsQueue, IndirectQueue};
///
/// let inner: CsQueue<u32> = CsQueue::new(64, 4);
/// let queue: IndirectQueue<String, _> = IndirectQueue::new(inner, 4);
/// assert!(queue.enqueue(0, "job".to_owned()).is_ok());
/// assert_eq!(queue.dequeue(1), Some("job".to_owned()));
/// ```
#[derive(Debug)]
pub struct IndirectQueue<T, Q> {
    handles: Q,
    slab: Slab<T>,
}

impl<T: Send, Q: HandleQueue> IndirectQueue<T, Q> {
    /// Wraps the handle queue `handles`; at most `max_enqueuers`
    /// enqueues may be in flight concurrently.
    #[must_use]
    pub fn new(handles: Q, max_enqueuers: usize) -> IndirectQueue<T, Q> {
        let slab = Slab::new(handles.handle_capacity() + max_enqueuers.max(1));
        IndirectQueue { handles, slab }
    }

    /// Enqueues `value` on behalf of process `proc`.
    ///
    /// # Errors
    ///
    /// Hands `value` back when the queue is at capacity.
    pub fn enqueue(&self, proc: usize, value: T) -> Result<(), T> {
        let handle = self.slab.insert(value)?;
        match self.handles.enqueue_handle(proc, handle) {
            EnqueueOutcome::Enqueued => Ok(()),
            EnqueueOutcome::Full => {
                let value = self.slab.remove(handle).expect("staged value present");
                Err(value)
            }
        }
    }

    /// Dequeues the oldest payload on behalf of process `proc`.
    pub fn dequeue(&self, proc: usize) -> Option<T> {
        match self.handles.dequeue_handle(proc) {
            DequeueOutcome::Dequeued(handle) => Some(
                self.slab
                    .remove(handle)
                    .expect("dequeued handle maps to a staged value"),
            ),
            DequeueOutcome::Empty => None,
        }
    }

    /// Racy size snapshot of staged + queued payloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// The capacity of the underlying handle queue.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.handles.handle_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_owned_payloads_fifo() {
        let queue: IndirectQueue<String, CsQueue<u32>> = IndirectQueue::new(CsQueue::new(4, 2), 2);
        queue.enqueue(0, "a".to_owned()).unwrap();
        queue.enqueue(0, "b".to_owned()).unwrap();
        assert_eq!(queue.dequeue(1).as_deref(), Some("a"));
        assert_eq!(queue.dequeue(1).as_deref(), Some("b"));
        assert_eq!(queue.dequeue(1), None);
    }

    #[test]
    fn full_hands_the_value_back() {
        let queue: IndirectQueue<String, CsQueue<u32>> = IndirectQueue::new(CsQueue::new(1, 1), 1);
        queue.enqueue(0, "kept".to_owned()).unwrap();
        assert_eq!(
            queue.enqueue(0, "bounced".to_owned()).unwrap_err(),
            "bounced"
        );
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.capacity(), 1);
    }

    #[test]
    fn nonblocking_flavour_works() {
        let inner: NonBlockingQueue<u32> = NonBlockingQueue::new(8);
        let queue: IndirectQueue<Vec<u8>, _> = IndirectQueue::new(inner, 2);
        queue.enqueue(0, vec![9]).unwrap();
        assert_eq!(queue.dequeue(0), Some(vec![9]));
        assert!(queue.is_empty());
    }

    #[test]
    fn concurrent_producer_consumer_with_boxes() {
        const JOBS: usize = 3_000;
        let queue: Arc<IndirectQueue<Box<usize>, CsQueue<u32>>> =
            Arc::new(IndirectQueue::new(CsQueue::new(1024, 2), 2));
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..JOBS {
                    let mut item = Box::new(i);
                    loop {
                        match queue.enqueue(0, item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut next = 0usize;
                while next < JOBS {
                    if let Some(v) = queue.dequeue(1) {
                        assert_eq!(*v, next, "FIFO order preserved");
                        next += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(queue.is_empty());
    }
}
