//! The Mostefaoui–Raynal methodology applied to a FIFO queue.
//!
//! The paper's motivating example of *non-interfering* concurrent
//! operations is "enqueuing and dequeuing on a non-empty queue"
//! (§1.1): the two operations touch opposite ends and should not pay
//! for each other. The paper then develops only the stack; this crate
//! is the **extension** (flagged in `DESIGN.md`) that carries the same
//! three-layer construction to a bounded FIFO queue:
//!
//! | Type | Analogue of | Progress |
//! |---|---|---|
//! | [`AbortableQueue`] | Figure 1 | abortable |
//! | [`NonBlockingQueue`] | Figure 2 | non-blocking |
//! | [`CsQueue`] | Figure 3 | starvation-free, contention-sensitive |
//!
//! plus the baselines [`MsQueue`] (Michael–Scott two-lock-free linked
//! queue) and [`LockQueue`] (a single lock around a ring buffer).
//!
//! The design mirrors the stack's register discipline: a `TAIL`
//! register `⟨count, value, sn⟩` is the authority for the enqueue end
//! (with the same lazy slot write + helping + per-slot sequence
//! numbers), and a `HEAD` register carries the monotone dequeue
//! counter. Because enqueue CASes only `TAIL` and dequeue CASes only
//! `HEAD`, **an enqueue never aborts a dequeue and vice versa** — the
//! paper's non-interference, made measurable (experiment E6).
//!
//! # Quickstart
//!
//! ```
//! use cso_queue::{CsQueue, EnqueueOutcome, DequeueOutcome};
//!
//! let queue: CsQueue<u32> = CsQueue::new(64, 2);
//! assert_eq!(queue.enqueue(0, 1), EnqueueOutcome::Enqueued);
//! assert_eq!(queue.enqueue(0, 2), EnqueueOutcome::Enqueued);
//! assert_eq!(queue.dequeue(1), DequeueOutcome::Dequeued(1)); // FIFO
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod abortable;
mod contention_sensitive;
mod indirect;
mod lock_queue;
mod ms_queue;
mod nonblocking;
mod outcome;
mod seqspec;

pub use abortable::{AbortableQueue, QueueAbortStats};
pub use contention_sensitive::CsQueue;
pub use indirect::{HandleQueue, IndirectQueue};
pub use lock_queue::LockQueue;
pub use ms_queue::MsQueue;
pub use nonblocking::NonBlockingQueue;
pub use outcome::{DequeueOutcome, EnqueueOutcome, QueueOp, QueueResponse};
pub use seqspec::SeqQueue;

/// A value storable directly in the queue's packed registers — an
/// alias for [`cso_memory::bits::Bits32`].
pub use cso_memory::bits::Bits32 as QueueValue;
