//! The traditional fully lock-based queue.

use std::cell::UnsafeCell;
use std::collections::VecDeque;

use cso_core::ProgressCondition;
use cso_locks::{RawLock, TasLock};

use crate::outcome::{DequeueOutcome, EnqueueOutcome};

/// A bounded FIFO queue protected by a single lock — the
/// "traditional lock-based shared memory synchronization" of §1.1,
/// where even the non-interfering enqueue/dequeue pairs serialize.
///
/// ```
/// use cso_queue::{LockQueue, EnqueueOutcome, DequeueOutcome};
///
/// let queue: LockQueue<&str> = LockQueue::new(2);
/// assert_eq!(queue.enqueue("a"), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue("b"), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue("c"), EnqueueOutcome::Full);
/// assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued("a"));
/// ```
pub struct LockQueue<T, L: RawLock = TasLock> {
    lock: L,
    capacity: usize,
    items: UnsafeCell<VecDeque<T>>,
}

// SAFETY: all access to `items` happens inside the critical section of
// `lock` (mutual exclusion per the `RawLock` contract).
unsafe impl<T: Send, L: RawLock> Send for LockQueue<T, L> {}
unsafe impl<T: Send, L: RawLock> Sync for LockQueue<T, L> {}

impl<T> LockQueue<T, TasLock> {
    /// Creates an empty queue of capacity `capacity` behind a TAS
    /// lock.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> LockQueue<T, TasLock> {
        LockQueue::with_lock(capacity, TasLock::new())
    }
}

impl<T, L: RawLock> LockQueue<T, L> {
    /// Creates an empty queue of capacity `capacity` behind `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_lock(capacity: usize, lock: L) -> LockQueue<T, L> {
        assert!(capacity > 0, "queue capacity must be positive");
        LockQueue {
            lock,
            capacity,
            items: UnsafeCell::new(VecDeque::new()),
        }
    }

    /// The progress condition (that of the weakest supported lock).
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Enqueues `value`, or reports `Full` at capacity.
    pub fn enqueue(&self, value: T) -> EnqueueOutcome {
        self.lock.with(|| {
            // SAFETY: inside the critical section.
            let items = unsafe { &mut *self.items.get() };
            if items.len() == self.capacity {
                EnqueueOutcome::Full
            } else {
                items.push_back(value);
                EnqueueOutcome::Enqueued
            }
        })
    }

    /// Dequeues the front value, or reports `Empty`.
    pub fn dequeue(&self) -> DequeueOutcome<T> {
        self.lock.with(|| {
            // SAFETY: inside the critical section.
            let items = unsafe { &mut *self.items.get() };
            match items.pop_front() {
                Some(v) => DequeueOutcome::Dequeued(v),
                None => DequeueOutcome::Empty,
            }
        })
    }

    /// Current size (takes the lock).
    #[must_use]
    pub fn len(&self) -> usize {
        // SAFETY: inside the critical section.
        self.lock.with(|| unsafe { (*self.items.get()).len() })
    }

    /// True when empty (takes the lock).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T, L: RawLock> std::fmt::Debug for LockQueue<T, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_locks::TicketLock;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_and_bounds() {
        let queue: LockQueue<u32> = LockQueue::new(2);
        assert_eq!(queue.dequeue(), DequeueOutcome::Empty);
        assert_eq!(queue.enqueue(1), EnqueueOutcome::Enqueued);
        assert_eq!(queue.enqueue(2), EnqueueOutcome::Enqueued);
        assert_eq!(queue.enqueue(3), EnqueueOutcome::Full);
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(1));
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.capacity(), 2);
        assert!(!queue.is_empty());
    }

    #[test]
    fn works_with_other_locks() {
        let queue: LockQueue<u32, TicketLock> = LockQueue::with_lock(4, TicketLock::new());
        assert_eq!(queue.enqueue(1), EnqueueOutcome::Enqueued);
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(1));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 1_500;
        let queue: Arc<LockQueue<u32>> = Arc::new(LockQueue::new((THREADS * PER_THREAD) as usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        assert_eq!(queue.enqueue(t * PER_THREAD + i), EnqueueOutcome::Enqueued);
                        if let DequeueOutcome::Dequeued(v) = queue.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u32> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        while let DequeueOutcome::Dequeued(v) = queue.dequeue() {
            all.push(v);
        }
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(all.iter().collect::<HashSet<_>>().len(), all.len());
    }
}
