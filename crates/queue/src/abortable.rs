//! The abortable bounded FIFO queue (Figure-1 methodology).
//!
//! Register layout (mirroring the stack's, see the crate docs):
//!
//! * `HEAD = ⟨dcount⟩` — the monotone count of completed dequeues;
//!   the counter doubles as the ABA tag.
//! * `TAIL = ⟨ecount, value, sn⟩` — the monotone count of completed
//!   enqueues, the most recently enqueued value, and the sequence
//!   number of its *pending* lazy slot write.
//! * `RING[0..k]` — `⟨val, sn⟩` slots; element number `j` (1-based)
//!   lives in slot `j mod k`, so `k` must be a power of two for the
//!   mapping to stay consistent across the 16-bit counter wrap.
//!
//! Invariant (the queue analogue of the stack's): **the only possibly
//! stale slot is `RING[TAIL.ecount mod k]`**; every operation helps
//! finish that write before relying on slot contents.
//!
//! Linearization points of non-aborted operations:
//!
//! * `enqueue` → its successful `TAIL.C&S`;
//! * `dequeue` → its successful `HEAD.C&S`;
//! * `Full` → the read of `HEAD` (validated by re-reading `TAIL`
//!   unchanged);
//! * `Empty` → the read of `TAIL` (validated by re-reading `HEAD`
//!   unchanged).
//!
//! Because enqueue CASes only `TAIL` and dequeue only `HEAD`, the two
//! operation kinds never abort each other — the paper's §1.1
//! "non-interfering operations" example, realized.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use cso_core::{Abortable, Aborted, BatchCounters, BatchStats};
use cso_memory::bits::Bits32;
use cso_memory::fail_point;
use cso_memory::packed::{HeadWord, SlotWord, TailWord};
use cso_memory::reg::Reg64;
use cso_trace::{probe, probe_if, Event};

use crate::outcome::{DequeueOutcome, EnqueueOutcome, QueueOp, QueueResponse};

/// Abort/attempt counters (diagnostics for experiment E6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueAbortStats {
    /// `weak_enqueue` invocations.
    pub enq_attempts: u64,
    /// `weak_enqueue` invocations that returned ⊥.
    pub enq_aborts: u64,
    /// `weak_dequeue` invocations.
    pub deq_attempts: u64,
    /// `weak_dequeue` invocations that returned ⊥.
    pub deq_aborts: u64,
}

impl QueueAbortStats {
    /// Fraction of all attempts that aborted (0.0 when idle).
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.enq_attempts + self.deq_attempts;
        if attempts == 0 {
            0.0
        } else {
            (self.enq_aborts + self.deq_aborts) as f64 / attempts as f64
        }
    }
}

/// An **abortable bounded FIFO queue** built with the paper's
/// register discipline (lazy authority register + helping + sequence
/// numbers). See the module docs for the construction.
///
/// Executed solo, `weak_enqueue`/`weak_dequeue` always return a
/// definitive outcome in exactly **six** shared-memory accesses; under
/// contention with a *same-end* operation they may return ⊥
/// ([`Aborted`]) with no effect.
///
/// ```
/// use cso_queue::{AbortableQueue, EnqueueOutcome, DequeueOutcome};
///
/// let queue: AbortableQueue<u32> = AbortableQueue::new(8);
/// assert_eq!(queue.weak_enqueue(1), Ok(EnqueueOutcome::Enqueued));
/// assert_eq!(queue.weak_enqueue(2), Ok(EnqueueOutcome::Enqueued));
/// assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Dequeued(1)));
/// ```
#[derive(Debug)]
pub struct AbortableQueue<V> {
    head: Reg64,
    tail: Reg64,
    ring: Box<[Reg64]>,
    enq_attempts: AtomicU64,
    enq_aborts: AtomicU64,
    deq_attempts: AtomicU64,
    deq_aborts: AtomicU64,
    batch: BatchCounters,
    _values: PhantomData<V>,
}

const BOTTOM: u32 = 0;

impl<V: Bits32> AbortableQueue<V> {
    /// Creates an empty queue of capacity `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0, not a power of two, or larger than
    /// 2¹⁵ (so `size = ecount − dcount` stays unambiguous within the
    /// 16-bit counters).
    #[must_use]
    pub fn new(capacity: usize) -> AbortableQueue<V> {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(
            capacity.is_power_of_two(),
            "queue capacity must be a power of two"
        );
        assert!(capacity <= 1 << 15, "queue capacity must be at most 2^15");
        let ring = (0..capacity)
            .map(|x| {
                // Slot 0 starts one sequence step behind (the stack's
                // `⟨⊥, −1⟩` trick) so the very first help is a no-op
                // rewrite of the dummy word.
                let seq = if x == 0 { u16::MAX } else { 0 };
                Reg64::new(SlotWord { value: BOTTOM, seq }.pack())
            })
            .collect();
        AbortableQueue {
            head: Reg64::new(HeadWord { count: 0 }.pack()),
            tail: Reg64::new(
                TailWord {
                    count: 0,
                    seq: 0,
                    value: BOTTOM,
                }
                .pack(),
            ),
            ring,
            enq_attempts: AtomicU64::new(0),
            enq_aborts: AtomicU64::new(0),
            deq_attempts: AtomicU64::new(0),
            deq_aborts: AtomicU64::new(0),
            batch: BatchCounters::new(),
            _values: PhantomData,
        }
    }

    /// The capacity fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Racy size snapshot (two shared accesses).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = TailWord::unpack(self.tail.read());
        let head = HeadWord::unpack(self.head.read());
        usize::from(tail.count.wrapping_sub(head.count))
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_of(&self, element: u16) -> &Reg64 {
        &self.ring[usize::from(element) & (self.ring.len() - 1)]
    }

    /// Finish the pending lazy write of the last enqueue (the queue's
    /// `help`, cf. Figure 1 lines 15–16): write `⟨tail.value,
    /// tail.seq⟩` into the slot of element `tail.count` unless some
    /// helper already did.
    fn help(&self, tail: TailWord) {
        let slot = self.slot_of(tail.count);
        let current = SlotWord::unpack(slot.read());
        let old = SlotWord {
            value: current.value,
            seq: tail.seq.wrapping_sub(1),
        };
        let new = SlotWord {
            value: tail.value,
            seq: tail.seq,
        };
        probe_if!(
            slot.cas(old.pack(), new.pack()),
            Event::HelpingWrite("queue::ring")
        );
    }

    /// Attempts to enqueue `value` once.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥) if a concurrent *enqueue* interfered
    /// (dequeues never abort an enqueue); the queue is unchanged in
    /// that case. Never aborts solo.
    pub fn weak_enqueue(&self, value: V) -> Result<EnqueueOutcome, Aborted> {
        self.enq_attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("queue::enqueue", {
            self.enq_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        // 1. Read the enqueue authority.
        let tail = TailWord::unpack(self.tail.read());
        // 2-3. Help the previous enqueue's pending slot write.
        self.help(tail);
        // 4. Read the dequeue count for the full check.
        let head = HeadWord::unpack(self.head.read());
        if tail.count.wrapping_sub(head.count) == self.ring.len() as u16 {
            // Apparently full. Validate that TAIL did not move while
            // we were looking at HEAD: if it did, the check is
            // meaningless — abort (contention); if not, at the instant
            // HEAD was read the size really was k — linearize Full
            // there.
            let revalidated = TailWord::unpack(self.tail.read());
            if revalidated == tail {
                return Ok(EnqueueOutcome::Full);
            }
            self.enq_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        }
        // 5. Sequence number for the slot our element will occupy.
        let next_element = tail.count.wrapping_add(1);
        let next_slot = SlotWord::unpack(self.slot_of(next_element).read());
        // 6. Publish in TAIL (the slot write is left to the next
        //    operation's help).
        let new_tail = TailWord {
            count: next_element,
            value: value.to_bits(),
            seq: next_slot.seq.wrapping_add(1),
        };
        if self.tail.cas(tail.pack(), new_tail.pack()) {
            Ok(EnqueueOutcome::Enqueued)
        } else {
            self.enq_aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail("queue::tail"));
            Err(Aborted)
        }
    }

    /// Attempts to dequeue once.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] (⊥) if a concurrent *dequeue* interfered
    /// (enqueues never abort a dequeue); the queue is unchanged in
    /// that case. Never aborts solo.
    pub fn weak_dequeue(&self) -> Result<DequeueOutcome<V>, Aborted> {
        self.deq_attempts.fetch_add(1, Ordering::Relaxed);
        fail_point!("queue::dequeue", {
            self.deq_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        });
        // 1. Read the dequeue authority.
        let head = HeadWord::unpack(self.head.read());
        // 2. Read the enqueue authority (for emptiness and helping).
        let tail = TailWord::unpack(self.tail.read());
        // 3-4. Help: after this, every slot in (head, tail] is final.
        self.help(tail);
        if head.count == tail.count {
            // Apparently empty. Validate HEAD unchanged: then at the
            // instant TAIL was read the size really was 0 — linearize
            // Empty there.
            let revalidated = HeadWord::unpack(self.head.read());
            if revalidated == head {
                return Ok(DequeueOutcome::Empty);
            }
            self.deq_aborts.fetch_add(1, Ordering::Relaxed);
            return Err(Aborted);
        }
        // 5. Read our element's slot. It is final: if it is the newest
        //    element we just helped it; otherwise the enqueue of the
        //    element after it helped it before completing.
        let element = head.count.wrapping_add(1);
        let slot = SlotWord::unpack(self.slot_of(element).read());
        // 6. Claim the element by advancing HEAD. Success implies HEAD
        //    was unchanged since step 1, so `slot` really was the word
        //    of element `head.count + 1`.
        let new_head = HeadWord { count: element };
        if self.head.cas(head.pack(), new_head.pack()) {
            Ok(DequeueOutcome::Dequeued(V::from_bits(slot.value)))
        } else {
            self.deq_aborts.fetch_add(1, Ordering::Relaxed);
            probe!(Event::CasFail("queue::head"));
            Err(Aborted)
        }
    }

    /// Snapshot of the attempt/abort counters (experiment E6).
    pub fn abort_stats(&self) -> QueueAbortStats {
        QueueAbortStats {
            enq_attempts: self.enq_attempts.load(Ordering::Relaxed),
            enq_aborts: self.enq_aborts.load(Ordering::Relaxed),
            deq_attempts: self.deq_attempts.load(Ordering::Relaxed),
            deq_aborts: self.deq_aborts.load(Ordering::Relaxed),
        }
    }

    /// Resets the attempt/abort counters.
    pub fn reset_abort_stats(&self) {
        self.enq_attempts.store(0, Ordering::Relaxed);
        self.enq_aborts.store(0, Ordering::Relaxed);
        self.deq_attempts.store(0, Ordering::Relaxed);
        self.deq_aborts.store(0, Ordering::Relaxed);
    }

    /// Combining-batch totals observed through the
    /// [`Abortable::batch_begin`] / [`Abortable::batch_end`] hooks
    /// (all zero unless a combining transformation drives this queue).
    #[must_use]
    pub fn batch_stats(&self) -> BatchStats {
        self.batch.snapshot()
    }
}

impl<V: Bits32> Abortable for AbortableQueue<V> {
    type Op = QueueOp<V>;
    type Response = QueueResponse<V>;

    fn try_apply(&self, op: &QueueOp<V>) -> Result<QueueResponse<V>, Aborted> {
        match op {
            QueueOp::Enqueue(v) => self.weak_enqueue(*v).map(QueueResponse::Enqueue),
            QueueOp::Dequeue => self.weak_dequeue().map(QueueResponse::Dequeue),
        }
    }

    fn batch_begin(&self, pending: usize) {
        self.batch.begin(pending);
    }

    fn batch_end(&self, applied: usize) {
        self.batch.end(applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cso_memory::backoff::XorShift64;
    use cso_memory::counting::CountScope;

    #[test]
    fn fifo_order_solo() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(8);
        for v in 1..=5 {
            assert_eq!(queue.weak_enqueue(v), Ok(EnqueueOutcome::Enqueued));
        }
        for v in 1..=5 {
            assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Dequeued(v)));
        }
        assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Empty));
    }

    #[test]
    fn full_and_empty_are_definitive() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(2);
        assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Empty));
        assert_eq!(queue.weak_enqueue(1), Ok(EnqueueOutcome::Enqueued));
        assert_eq!(queue.weak_enqueue(2), Ok(EnqueueOutcome::Enqueued));
        assert_eq!(queue.weak_enqueue(3), Ok(EnqueueOutcome::Full));
        assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Dequeued(1)));
        // Space again after a dequeue.
        assert_eq!(queue.weak_enqueue(3), Ok(EnqueueOutcome::Enqueued));
    }

    #[test]
    fn solo_enqueue_is_exactly_six_accesses() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(64);
        let scope = CountScope::start();
        queue.weak_enqueue(1).unwrap();
        let c = scope.take();
        assert_eq!(c.total(), 6, "solo enqueue: got {c}");
    }

    #[test]
    fn solo_dequeue_is_exactly_six_accesses() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(64);
        queue.weak_enqueue(1).unwrap();
        let scope = CountScope::start();
        queue.weak_dequeue().unwrap();
        let c = scope.take();
        assert_eq!(c.total(), 6, "solo dequeue: got {c}");
    }

    #[test]
    fn ring_wraps_many_times() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(4);
        // Cycle far past the 16-bit counter wrap to exercise both the
        // ring mapping and the wrapping arithmetic.
        for round in 0..100_000u32 {
            assert_eq!(queue.weak_enqueue(round), Ok(EnqueueOutcome::Enqueued));
            assert_eq!(queue.weak_dequeue(), Ok(DequeueOutcome::Dequeued(round)));
        }
        assert_eq!(queue.abort_stats().abort_rate(), 0.0, "solo never aborts");
    }

    #[test]
    fn len_tracks_quiescent_size() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(8);
        assert!(queue.is_empty());
        queue.weak_enqueue(1).unwrap();
        queue.weak_enqueue(2).unwrap();
        assert_eq!(queue.len(), 2);
        queue.weak_dequeue().unwrap();
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.capacity(), 8);
    }

    #[test]
    fn abortable_trait_round_trips() {
        let queue: AbortableQueue<u32> = AbortableQueue::new(4);
        assert_eq!(
            queue
                .try_apply(&QueueOp::Enqueue(9))
                .unwrap()
                .expect_enqueue(),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            queue.try_apply(&QueueOp::Dequeue).unwrap().expect_dequeue(),
            DequeueOutcome::Dequeued(9)
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = AbortableQueue::<u32>::new(6);
    }

    #[test]
    #[should_panic(expected = "at most 2^15")]
    fn oversized_capacity_panics() {
        let _ = AbortableQueue::<u32>::new(1 << 16);
    }

    /// The non-interference property: one enqueuer and one dequeuer
    /// hammering a *pre-filled* queue never abort each other.
    #[test]
    fn enqueue_and_dequeue_do_not_interfere() {
        use std::sync::Arc;
        const OPS: u32 = 30_000;
        let queue: Arc<AbortableQueue<u32>> = Arc::new(AbortableQueue::new(1024));
        // Pre-fill to half.
        for v in 0..512 {
            queue.weak_enqueue(v).unwrap();
        }
        // One enqueuer + one dequeuer: opposite-end operations must
        // never abort each other (they may legitimately observe
        // Full/Empty when one side runs ahead — those are definitive
        // answers, not aborts).
        let enqueuer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut done = 0;
                while done < OPS {
                    match queue.weak_enqueue(done) {
                        Ok(EnqueueOutcome::Enqueued) => done += 1,
                        Ok(EnqueueOutcome::Full) => std::thread::yield_now(),
                        Err(Aborted) => panic!("an enqueue can only be aborted by an enqueue"),
                    }
                }
            })
        };
        let dequeuer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut done = 0;
                while done < OPS {
                    match queue.weak_dequeue() {
                        Ok(DequeueOutcome::Dequeued(_)) => done += 1,
                        Ok(DequeueOutcome::Empty) => std::thread::yield_now(),
                        Err(Aborted) => panic!("a dequeue can only be aborted by a dequeue"),
                    }
                }
            })
        };
        enqueuer.join().unwrap();
        dequeuer.join().unwrap();
        assert_eq!(queue.len(), 512);
        assert_eq!(queue.abort_stats().abort_rate(), 0.0);
    }

    /// Concurrent same-end operations abort but conserve values.
    #[test]
    fn concurrent_weak_ops_conserve_values() {
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        const THREADS: usize = 4;
        const PER_THREAD: u32 = 1_500;

        let queue: Arc<AbortableQueue<u32>> = Arc::new(AbortableQueue::new(16_384));
        let taken = Arc::new(Mutex::new(Vec::<u32>::new()));

        let handles: Vec<_> = (0..THREADS as u32)
            .map(|t| {
                let queue = Arc::clone(&queue);
                let taken = Arc::clone(&taken);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        let v = t * PER_THREAD + i;
                        loop {
                            match queue.weak_enqueue(v) {
                                Ok(EnqueueOutcome::Enqueued) => break,
                                Ok(EnqueueOutcome::Full) => panic!("cannot be full"),
                                Err(Aborted) => std::thread::yield_now(),
                            }
                        }
                        loop {
                            match queue.weak_dequeue() {
                                Ok(DequeueOutcome::Dequeued(v)) => {
                                    mine.push(v);
                                    break;
                                }
                                Ok(DequeueOutcome::Empty) => break,
                                Err(Aborted) => std::thread::yield_now(),
                            }
                        }
                    }
                    taken.lock().unwrap().extend(mine);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = taken.lock().unwrap().clone();
        loop {
            match queue.weak_dequeue() {
                Ok(DequeueOutcome::Dequeued(v)) => all.push(v),
                Ok(DequeueOutcome::Empty) => break,
                Err(Aborted) => unreachable!("solo drain"),
            }
        }
        assert_eq!(all.len(), THREADS * PER_THREAD as usize);
        let distinct: HashSet<u32> = all.iter().copied().collect();
        assert_eq!(distinct.len(), all.len());
    }

    /// Solo differential test against a VecDeque reference, over
    /// randomized operation sequences.
    #[test]
    fn random_ops_match_sequential_spec() {
        use std::collections::VecDeque;
        let mut rng = XorShift64::new(0xF1F0_0FFE);
        for _ in 0..256u64 {
            let queue: AbortableQueue<u16> = AbortableQueue::new(16);
            let mut reference: VecDeque<u16> = VecDeque::new();
            let len = (rng.next_u64() % 200) as usize;
            for _ in 0..len {
                let word = rng.next_u64();
                if word & 1 == 0 {
                    let v = (word >> 1) as u16;
                    let got = queue.weak_enqueue(v).expect("solo never aborts");
                    let want = if reference.len() == 16 {
                        EnqueueOutcome::Full
                    } else {
                        reference.push_back(v);
                        EnqueueOutcome::Enqueued
                    };
                    assert_eq!(got, want);
                } else {
                    let got = queue.weak_dequeue().expect("solo never aborts");
                    let want = match reference.pop_front() {
                        Some(v) => DequeueOutcome::Dequeued(v),
                        None => DequeueOutcome::Empty,
                    };
                    assert_eq!(got, want);
                }
            }
            assert_eq!(queue.len(), reference.len());
        }
    }
}
