//! Operation descriptors and outcomes shared by all queue flavours.

/// The definitive (non-⊥) result of an enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnqueueOutcome {
    /// The value is now at the rear of the queue.
    Enqueued,
    /// The queue was at capacity; nothing was enqueued.
    Full,
}

impl EnqueueOutcome {
    /// True when the value landed in the queue.
    #[must_use]
    pub fn is_enqueued(self) -> bool {
        matches!(self, EnqueueOutcome::Enqueued)
    }
}

/// The definitive (non-⊥) result of a dequeue.
///
/// The paper's definition of a *total* operation (§1.1) uses exactly
/// this example: "instead of blocking the invoking process, a
/// dequeue() operation on an empty queue returns it the value empty".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DequeueOutcome<V> {
    /// The value that was at the front of the queue.
    Dequeued(V),
    /// The queue was empty.
    Empty,
}

impl<V> DequeueOutcome<V> {
    /// Converts to an `Option`.
    pub fn into_option(self) -> Option<V> {
        match self {
            DequeueOutcome::Dequeued(v) => Some(v),
            DequeueOutcome::Empty => None,
        }
    }

    /// True when a value was returned.
    #[must_use]
    pub fn is_dequeued(&self) -> bool {
        matches!(self, DequeueOutcome::Dequeued(_))
    }
}

impl<V> From<DequeueOutcome<V>> for Option<V> {
    fn from(outcome: DequeueOutcome<V>) -> Option<V> {
        outcome.into_option()
    }
}

/// A queue operation descriptor, for the generic transformations of
/// `cso-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOp<V> {
    /// Enqueue `v` at the rear.
    Enqueue(V),
    /// Dequeue from the front.
    Dequeue,
}

/// The response to a [`QueueOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueResponse<V> {
    /// Response to [`QueueOp::Enqueue`].
    Enqueue(EnqueueOutcome),
    /// Response to [`QueueOp::Dequeue`].
    Dequeue(DequeueOutcome<V>),
}

impl<V> QueueResponse<V> {
    /// Extracts an enqueue outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is a dequeue response.
    #[must_use]
    pub fn expect_enqueue(self) -> EnqueueOutcome {
        match self {
            QueueResponse::Enqueue(outcome) => outcome,
            QueueResponse::Dequeue(_) => panic!("expected an enqueue response, got a dequeue"),
        }
    }

    /// Extracts a dequeue outcome.
    ///
    /// # Panics
    ///
    /// Panics if this is an enqueue response.
    #[must_use]
    pub fn expect_dequeue(self) -> DequeueOutcome<V> {
        match self {
            QueueResponse::Dequeue(outcome) => outcome,
            QueueResponse::Enqueue(_) => panic!("expected a dequeue response, got an enqueue"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_predicates() {
        assert!(EnqueueOutcome::Enqueued.is_enqueued());
        assert!(!EnqueueOutcome::Full.is_enqueued());
        assert_eq!(DequeueOutcome::Dequeued(3).into_option(), Some(3));
        assert_eq!(DequeueOutcome::<u32>::Empty.into_option(), None);
        assert!(DequeueOutcome::Dequeued(1).is_dequeued());
        let opt: Option<u32> = DequeueOutcome::Dequeued(4).into();
        assert_eq!(opt, Some(4));
    }

    #[test]
    fn response_extractors() {
        assert_eq!(
            QueueResponse::<u32>::Enqueue(EnqueueOutcome::Full).expect_enqueue(),
            EnqueueOutcome::Full
        );
        assert_eq!(
            QueueResponse::<u32>::Dequeue(DequeueOutcome::Empty).expect_dequeue(),
            DequeueOutcome::Empty
        );
    }

    #[test]
    #[should_panic(expected = "expected a dequeue response")]
    fn mismatched_extractor_panics() {
        let _ = QueueResponse::<u32>::Enqueue(EnqueueOutcome::Enqueued).expect_dequeue();
    }
}
