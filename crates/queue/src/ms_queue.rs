//! The Michael–Scott lock-free linked queue — the classical baseline.

use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

use cso_core::ProgressCondition;
use cso_memory::epoch::{self, Atomic, Owned, Shared};

/// Michael & Scott's unbounded lock-free FIFO queue, the standard
/// point of comparison for concurrent queues.
///
/// Linked nodes with a permanent dummy head; both ends helped forward
/// by any thread that observes a lagging `tail` (the classical MS
/// helping, a cousin of the paper's Figure-1 lazy-write helping).
/// Non-blocking, not starvation-free.
///
/// ```
/// use cso_queue::MsQueue;
///
/// let queue = MsQueue::new();
/// queue.enqueue("a");
/// queue.enqueue("b");
/// assert_eq!(queue.dequeue(), Some("a"));
/// assert_eq!(queue.dequeue(), Some("b"));
/// assert_eq!(queue.dequeue(), None);
/// ```
#[derive(Debug)]
pub struct MsQueue<T> {
    head: Atomic<Node<T>>,
    tail: Atomic<Node<T>>,
}

#[derive(Debug)]
struct Node<T> {
    /// Uninitialized in the dummy node, initialized in value nodes.
    /// A value is *taken* (moved out) by the dequeuer that unlinks the
    /// node's predecessor.
    value: MaybeUninit<T>,
    next: Atomic<Node<T>>,
}

unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> MsQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> MsQueue<T> {
        let dummy = Owned::new(Node {
            value: MaybeUninit::uninit(),
            next: Atomic::null(),
        });
        let queue = MsQueue {
            head: Atomic::null(),
            tail: Atomic::null(),
        };
        let guard = unsafe { epoch::unprotected() };
        let dummy = dummy.into_shared(guard);
        queue.head.store(dummy, Ordering::Relaxed);
        queue.tail.store(dummy, Ordering::Relaxed);
        queue
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Enqueues `value` at the rear (unbounded; always succeeds).
    pub fn enqueue(&self, value: T) {
        let guard = epoch::pin();
        let node = Owned::new(Node {
            value: MaybeUninit::new(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: tail is never null (dummy node) and protected by
            // the guard.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail lags; help it forward (MS helping).
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(
                    Shared::null(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok()
            {
                // Linearization point; swing tail (failure is fine —
                // someone helped).
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                return;
            }
        }
    }

    /// Dequeues from the front, or returns `None` when empty.
    pub fn dequeue(&self) -> Option<T> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: head is never null (dummy node).
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            let next_ref = unsafe { next.as_ref() }?;
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if head == tail {
                // Tail lags behind a non-empty queue; help.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                // `next` becomes the new dummy; its value is ours.
                // SAFETY: exactly one dequeuer wins this CAS, so the
                // value is read exactly once; the old dummy `head` is
                // retired via the epoch.
                let value = unsafe { next_ref.value.assume_init_read() };
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        }
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::Acquire, &guard);
        // SAFETY: head is never null.
        unsafe { head.deref() }
            .next
            .load(Ordering::Acquire, &guard)
            .is_null()
    }
}

impl<T> Default for MsQueue<T> {
    fn default() -> MsQueue<T> {
        MsQueue::new()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        // The head node is the dummy: its value is NOT initialized.
        let mut cursor = self.head.load(Ordering::Relaxed, guard);
        let mut is_dummy = true;
        while !cursor.is_null() {
            // SAFETY: `&mut self` excludes concurrent access; values
            // are initialized in every node but the current dummy.
            unsafe {
                let mut node = cursor.into_owned();
                if !is_dummy {
                    node.value.assume_init_drop();
                }
                is_dummy = false;
                cursor = node.next.load(Ordering::Relaxed, guard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_solo() {
        let queue = MsQueue::new();
        for v in 0..10 {
            queue.enqueue(v);
        }
        for v in 0..10 {
            assert_eq!(queue.dequeue(), Some(v));
        }
        assert_eq!(queue.dequeue(), None);
        assert!(queue.is_empty());
    }

    #[test]
    fn drop_frees_remaining_values() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let queue = MsQueue::new();
            for _ in 0..10 {
                queue.enqueue(Counted);
            }
            drop(queue.dequeue());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_conservation_and_producer_order() {
        const PRODUCERS: u64 = 2;
        const PER_PRODUCER: u64 = 3_000;
        let queue: Arc<MsQueue<u64>> = Arc::new(MsQueue::new());
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        queue.enqueue(t * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
                    if let Some(v) = queue.dequeue() {
                        got.push(v);
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let got = consumer.join().unwrap();
        assert_eq!(got.iter().collect::<HashSet<_>>().len(), got.len());
        for t in 0..PRODUCERS {
            let sub: Vec<u64> = got
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == t)
                .collect();
            assert!(
                sub.windows(2).all(|w| w[0] < w[1]),
                "producer {t} order violated"
            );
        }
    }
}
