//! The non-blocking queue (Figure-2 methodology).

use cso_core::{ContentionManager, NoBackoff, NonBlocking, ProgressCondition};
use cso_memory::bits::Bits32;

use crate::abortable::{AbortableQueue, QueueAbortStats};
use crate::outcome::{DequeueOutcome, EnqueueOutcome, QueueOp};

/// A **non-blocking bounded FIFO queue**: an [`AbortableQueue`] whose
/// operations are retried until they return a non-⊥ value — the exact
/// Figure 2 transformation, instantiated for the queue.
///
/// No operation ever returns ⊥; at least one concurrent operation
/// always terminates. `M` selects the inter-retry backoff
/// ([`NoBackoff`] = the literal figure).
///
/// ```
/// use cso_queue::{NonBlockingQueue, EnqueueOutcome, DequeueOutcome};
///
/// let queue: NonBlockingQueue<u32> = NonBlockingQueue::new(16);
/// assert_eq!(queue.enqueue(1), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.enqueue(2), EnqueueOutcome::Enqueued);
/// assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(1));
/// ```
#[derive(Debug)]
pub struct NonBlockingQueue<V: Bits32, M: ContentionManager = NoBackoff> {
    inner: NonBlocking<AbortableQueue<V>, M>,
}

impl<V: Bits32> NonBlockingQueue<V, NoBackoff> {
    /// Creates an empty queue of capacity `capacity` (a power of two
    /// at most 2¹⁵) with immediate retries.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities (see [`AbortableQueue::new`]).
    #[must_use]
    pub fn new(capacity: usize) -> NonBlockingQueue<V, NoBackoff> {
        NonBlockingQueue {
            inner: NonBlocking::new(AbortableQueue::new(capacity)),
        }
    }
}

impl<V: Bits32, M: ContentionManager> NonBlockingQueue<V, M> {
    /// Creates an empty queue whose retries are paced by `manager`.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities (see [`AbortableQueue::new`]).
    #[must_use]
    pub fn with_manager(capacity: usize, manager: M) -> NonBlockingQueue<V, M> {
        NonBlockingQueue {
            inner: NonBlocking::with_manager(AbortableQueue::new(capacity), manager),
        }
    }

    /// The progress condition of this implementation.
    pub const PROGRESS: ProgressCondition = ProgressCondition::NonBlocking;

    /// Enqueues `value`; never returns ⊥.
    pub fn enqueue(&self, value: V) -> EnqueueOutcome {
        self.inner.apply(&QueueOp::Enqueue(value)).expect_enqueue()
    }

    /// Dequeues the front value; never returns ⊥.
    pub fn dequeue(&self) -> DequeueOutcome<V> {
        self.inner.apply(&QueueOp::Dequeue).expect_dequeue()
    }

    /// The capacity fixed at construction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.inner().capacity()
    }

    /// Racy size snapshot (two shared accesses).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.inner().len()
    }

    /// Racy emptiness snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.inner().is_empty()
    }

    /// Attempt/abort counters of the underlying weak operations.
    pub fn abort_stats(&self) -> QueueAbortStats {
        self.inner.inner().abort_stats()
    }

    /// The underlying abortable queue.
    pub fn as_abortable(&self) -> &AbortableQueue<V> {
        self.inner.inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_order_solo() {
        let queue: NonBlockingQueue<i32> = NonBlockingQueue::new(8);
        for v in [-1, -2, -3] {
            assert_eq!(queue.enqueue(v), EnqueueOutcome::Enqueued);
        }
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(-1));
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(-2));
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(-3));
        assert_eq!(queue.dequeue(), DequeueOutcome::Empty);
    }

    #[test]
    fn full_outcome_is_definitive() {
        let queue: NonBlockingQueue<u32> = NonBlockingQueue::new(1);
        assert_eq!(queue.enqueue(1), EnqueueOutcome::Enqueued);
        assert_eq!(queue.enqueue(2), EnqueueOutcome::Full);
    }

    #[test]
    fn concurrent_fifo_per_producer() {
        // FIFO linearizability implies per-producer order is
        // preserved among dequeued values.
        const PRODUCERS: u32 = 2;
        const PER_PRODUCER: u32 = 3_000;
        let queue: Arc<NonBlockingQueue<u32>> = Arc::new(NonBlockingQueue::new(8192));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        while queue.enqueue(t * PER_PRODUCER + i) == EnqueueOutcome::Full {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < (PRODUCERS * PER_PRODUCER) as usize {
                    if let DequeueOutcome::Dequeued(v) = queue.dequeue() {
                        got.push(v);
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), (PRODUCERS * PER_PRODUCER) as usize);
        assert_eq!(got.iter().collect::<HashSet<_>>().len(), got.len());
        // Per-producer subsequences must be increasing.
        for t in 0..PRODUCERS {
            let sub: Vec<u32> = got
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == t)
                .collect();
            assert!(
                sub.windows(2).all(|w| w[0] < w[1]),
                "producer {t} order violated"
            );
        }
    }

    #[test]
    fn with_manager_variant_works() {
        use cso_core::YieldBackoff;
        let queue: NonBlockingQueue<u32, YieldBackoff> =
            NonBlockingQueue::with_manager(8, YieldBackoff);
        assert_eq!(queue.enqueue(3), EnqueueOutcome::Enqueued);
        assert_eq!(queue.dequeue(), DequeueOutcome::Dequeued(3));
        assert!(queue.is_empty());
        assert_eq!(queue.capacity(), 8);
        assert_eq!(queue.abort_stats().enq_attempts, 1);
        assert!(queue.as_abortable().is_empty());
    }
}
