//! Causal attribution through the queue's combining slow path: every
//! operation a combiner executed on behalf of another process must
//! carry a `helped-by-combiner` edge naming the combiner's thread —
//! the live-coverage contract `/causal.json` builds on.
#![cfg(feature = "trace")]

use std::collections::HashSet;
use std::sync::Arc;

use cso_core::CsConfig;
use cso_locks::TasLock;
use cso_queue::{CsQueue, DequeueOutcome, EnqueueOutcome};
use cso_trace::{probe, Event};

#[test]
fn every_combined_op_carries_a_helper_edge() {
    // Small enough that no per-thread ring (4096 slots) evicts events.
    const THREADS: u32 = 3;
    const PER_THREAD: u32 = 60;
    probe::clear();
    let config = CsConfig::PAPER.without_fast_path().with_combining();
    let queue: Arc<CsQueue<u32>> = Arc::new(CsQueue::with_config(
        1024,
        TasLock::new(),
        THREADS as usize,
        config,
    ));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    assert_eq!(
                        queue.enqueue(t as usize, t * PER_THREAD + i),
                        EnqueueOutcome::Enqueued
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut seen = HashSet::new();
    while let DequeueOutcome::Dequeued(v) = queue.dequeue(0) {
        assert!(seen.insert(v), "duplicate value {v}");
    }
    assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);

    let trace = probe::collect();
    assert_eq!(trace.dropped, 0, "rings must not have truncated");
    let edges: Vec<_> = trace
        .events
        .iter()
        .filter_map(|e| match e.event {
            Event::HelpedByCombiner(tid) => Some((e.thread, tid)),
            _ => None,
        })
        .collect();
    // Exactly the combined operations are attributed — no more (a
    // self-combiner records no edge), no fewer (every stamp is read).
    assert_eq!(
        edges.len() as u64,
        queue.combining_stats().combined,
        "one helped-by edge per combined operation"
    );
    for (owner, helper) in edges {
        assert_ne!(owner, helper, "nobody combines for themselves");
    }
}
