//! A reusable symmetric-rendezvous (elimination) substrate.
//!
//! Hendler, Shavit & Yerushalmi's elimination back-off rests on one
//! observation: a concurrent push and pop *cancel out* — they can meet
//! in a side array and exchange the value without touching the shared
//! object at all. The slot state machine below was born inside
//! `cso-stack`'s `EliminationStack`; it is promoted here so the same
//! machinery can serve both that baseline and the contention-sensitive
//! escalation ladder in `cso-core` (which tries a rendezvous *between*
//! the failed fast path and the lock).
//!
//! An [`Exchanger`] is directional: *offerors* park an item and wait
//! for a partner; *takers* consume a parked item. Each slot cycles
//! through
//!
//! ```text
//! EMPTY ──claim──▶ CLAIMED ──park──▶ WAITING ──take──▶ BUSY ──▶ EMPTY (tag+1)
//!    ▲                                  │
//!    └───────── reclaim ◀── RETRACT ◀───┘ (offer timed out)
//! ```
//!
//! with a 32-bit tag in the high half of the state word bumped on
//! every recycle, so a parked offeror can detect "my exchange
//! completed and the slot already moved on" without ABA confusion.
//!
//! # Exclusive cell windows
//!
//! The item cell is touched only inside windows the state machine
//! makes exclusive: an offeror owns it from the `EMPTY→CLAIMED` CAS to
//! the `WAITING` store, and again from a successful `WAITING→RETRACT`
//! CAS to its `EMPTY` store; a taker owns it from a successful
//! `WAITING→BUSY` CAS to its `EMPTY` store. A new claim is only
//! possible after an `EMPTY` store with a bumped tag.
//!
//! # Crash behavior
//!
//! [`Exchanger::offer`] is panic-safe: if the offeror unwinds while
//! its item is parked (the `exchange::retract` fail point injects
//! exactly that crash), a drop guard retracts the item — or, when a
//! taker already committed, concedes the exchange — so a crashed
//! eliminator never leaks an item and never wedges a slot. The chaos
//! fail points `exchange::claim` (fired before a claim CAS on either
//! side) and `exchange::retract` (fired while the item is parked, just
//! before the retract CAS) let tests inject aborts, delays, and
//! crashes into both windows.
//!
//! These atomics are *uncounted* (plain `std::sync::atomic`): the
//! exchanger is an engineering substrate like the combining layer, not
//! part of the paper's counted-register algorithms.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::XorShift64;
use crate::combining::{CachePadded, NO_HELPER};
use crate::fail_point;

// Slot states (low 32 bits of the packed word; high 32 bits = tag).
const EMPTY: u32 = 0;
/// An offeror owns the cell and is writing its item.
const CLAIMED: u32 = 1;
/// An item is parked and available to a taker.
const WAITING: u32 = 2;
/// A taker owns the cell and is taking the item.
const BUSY: u32 = 3;
/// The offeror timed out and is reclaiming its item.
const RETRACT: u32 = 4;

fn pack(tag: u32, state: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(state)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// How long a stamped offeror polls for its partner's identity stamp
/// after detecting the exchange. The taker writes the stamp between
/// its `WAITING→BUSY` commit and the recycling `EMPTY` store, so an
/// offeror that observed `BUSY` may be a few instructions early; one
/// that observed the recycled tag is never early (the `EMPTY` release
/// store orders the stamp before it). Missing the bound degrades the
/// edge to [`NO_HELPER`] — attribution is best-effort, the exchange
/// itself is already decided.
const STAMP_POLLS: u32 = 256;

struct ExchangeSlot<T> {
    state: AtomicU64,
    /// Tag-validated offeror identity, packed `tag << 32 | tid`,
    /// written inside the exclusive `CLAIMED` window (published by the
    /// `WAITING` release store) and read by the taker inside its
    /// exclusive `BUSY` window. The tag check rejects stamps from a
    /// previous occupancy of the slot — the same anti-ABA discipline
    /// as the state word itself.
    offeror_stamp: AtomicU64,
    /// Tag-validated taker identity, written between the
    /// `WAITING→BUSY` commit and the recycling `EMPTY` store, read by
    /// the parked offeror once it detects the exchange.
    taker_stamp: AtomicU64,
    item: UnsafeCell<Option<T>>,
}

// SAFETY: the slot's state machine grants exclusive access to `item`
// to exactly one thread at a time (see the module docs' window
// analysis), and items move across threads, hence `T: Send`.
unsafe impl<T: Send> Send for ExchangeSlot<T> {}
unsafe impl<T: Send> Sync for ExchangeSlot<T> {}

impl<T> ExchangeSlot<T> {
    fn new() -> ExchangeSlot<T> {
        ExchangeSlot {
            state: AtomicU64::new(pack(0, EMPTY)),
            // Tag u32::MAX can never match a live occupancy's tag
            // until the 2^32nd recycle, so fresh stamps read invalid.
            offeror_stamp: AtomicU64::new(pack(u32::MAX, NO_HELPER)),
            taker_stamp: AtomicU64::new(pack(u32::MAX, NO_HELPER)),
            item: UnsafeCell::new(None),
        }
    }
}

thread_local! {
    static RNG: RefCell<XorShift64> = RefCell::new(XorShift64::from_entropy());
}

/// A pseudo-random value in `[0, bound)` for slot selection. Inside a
/// model-runtime session it is drawn from the session's deterministic
/// entropy instead of the persistent thread-local generator — the
/// thread-local survives across explored schedules (the exploration
/// body runs many times on one OS thread), which would make replays
/// of the same schedule prefix diverge.
fn random_below(bound: u64) -> u64 {
    use crate::runtime::{Active, Runtime};
    if let Some(seed) = Active::entropy_seed() {
        return XorShift64::new(seed).next_below(bound);
    }
    RNG.with(|rng| rng.borrow_mut().next_below(bound))
}

/// Retracts a parked item if the offeror unwinds mid-exchange.
///
/// Armed between the `WAITING` store and the normal resolution of an
/// offer. On drop (i.e. on unwind out of the parked window) it runs
/// the same retract protocol the timeout path uses: win the
/// `WAITING→RETRACT` CAS and reclaim (drop) the item, or concede the
/// exchange to a committed taker. Either way the slot keeps cycling.
struct ParkGuard<'a, T> {
    slot: &'a ExchangeSlot<T>,
    tag: u32,
    armed: bool,
}

impl<T> Drop for ParkGuard<'_, T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if self
            .slot
            .state
            .compare_exchange(
                pack(self.tag, WAITING),
                pack(self.tag, RETRACT),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            // SAFETY: exclusive window (RETRACT); the reclaimed item
            // drops with the unwinding offeror, exactly once.
            drop(unsafe { (*self.slot.item.get()).take() });
            self.slot
                .state
                .store(pack(self.tag.wrapping_add(1), EMPTY), Ordering::Release);
        }
        // Else a taker committed (BUSY or already recycled): the item
        // is theirs; the crashed offer counts as exchanged.
    }
}

/// A fixed array of rendezvous slots. See the module docs.
pub struct Exchanger<T> {
    slots: Box<[CachePadded<ExchangeSlot<T>>]>,
    /// Completed exchanges (pairs), bumped by the taker at the
    /// `WAITING→BUSY` commit point.
    exchanged: AtomicU64,
}

impl<T: Send> Exchanger<T> {
    /// Creates an exchanger with `slots` independent rendezvous slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn new(slots: usize) -> Exchanger<T> {
        assert!(slots > 0, "an exchanger needs at least one slot");
        Exchanger {
            slots: (0..slots)
                .map(|_| CachePadded::new(ExchangeSlot::new()))
                .collect(),
            exchanged: AtomicU64::new(0),
        }
    }

    /// Number of rendezvous slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of completed exchanges (operation *pairs*).
    #[must_use]
    pub fn exchanges(&self) -> u64 {
        self.exchanged.load(Ordering::Relaxed)
    }

    /// Parks `value` in a random `EMPTY` slot and waits up to `polls`
    /// spin iterations for a taker. `Ok(())` means a taker consumed
    /// the item (the exchange happened); `Err(value)` returns the item
    /// to the caller (no slot free, claim lost, or no taker arrived in
    /// time). Panic-safe: an unwind while the item is parked retracts
    /// it or concedes to a committed taker (see the module docs).
    pub fn offer(&self, value: T, polls: u32) -> Result<(), T> {
        self.offer_stamped(value, polls, NO_HELPER).map(|_| ())
    }

    /// [`Exchanger::offer`] with causal attribution: stamps `me` (a
    /// trace thread id) into the slot for the taker to read, and on
    /// success returns the taker's stamp — [`NO_HELPER`] when the
    /// partner did not identify itself or its stamp was not yet
    /// visible. The stamps are plain uncounted stores; the exchange
    /// protocol and its step costs are unchanged.
    pub fn offer_stamped(&self, value: T, polls: u32, me: u32) -> Result<u32, T> {
        fail_point!("exchange::claim", return Err(value));
        let slot = self.random_slot();
        let word = slot.state.load(Ordering::Acquire);
        let (tag, state) = unpack(word);
        if state != EMPTY
            || slot
                .state
                .compare_exchange(
                    word,
                    pack(tag, CLAIMED),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
        {
            return Err(value);
        }
        // We own the cell: park the item and our identity stamp (the
        // WAITING release store below publishes both).
        // SAFETY: exclusive window (CLAIMED).
        unsafe { *slot.item.get() = Some(value) };
        slot.offeror_stamp.store(pack(tag, me), Ordering::Relaxed);
        let mut guard = ParkGuard {
            slot,
            tag,
            armed: true,
        };
        slot.state.store(pack(tag, WAITING), Ordering::Release);

        for i in 0..polls {
            let (now_tag, now_state) = unpack(slot.state.load(Ordering::Acquire));
            if now_tag != tag || now_state == BUSY {
                // A taker moved us to BUSY (and possibly already
                // recycled the slot): the item is theirs.
                guard.armed = false;
                return Ok(taker_stamp_of(slot, tag));
            }
            let absorbed = {
                use crate::runtime::{Active, Runtime};
                Active::spin_hint()
            };
            if absorbed {
                // A model session absorbed the wait and will run the
                // prospective taker before us.
            } else if i % 64 == 63 {
                // On an oversubscribed host the partner cannot run
                // while we spin; hand over the quantum periodically so
                // a parked offer is actually visible to it. The item
                // stays safely parked across the yield (the taker's
                // BUSY CAS completes the exchange without us).
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // Timed out: retract if no taker has committed. The fail point
        // fires while the item is still parked — an injected panic
        // here is the "crashed eliminator" case the guard covers.
        fail_point!("exchange::retract");
        guard.armed = false;
        if slot
            .state
            .compare_exchange(
                pack(tag, WAITING),
                pack(tag, RETRACT),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            // SAFETY: exclusive window (RETRACT).
            let value = unsafe { (*slot.item.get()).take() }.expect("parked item present");
            slot.state
                .store(pack(tag.wrapping_add(1), EMPTY), Ordering::Release);
            Err(value)
        } else {
            // The CAS lost: a taker got there first — exchanged.
            Ok(taker_stamp_of(slot, tag))
        }
    }

    /// Takes a parked item, if any slot holds one.
    pub fn take(&self) -> Option<T> {
        self.take_if(|| true)
    }

    /// Takes a parked item, consulting `admit` once per candidate:
    /// after a slot is observed `WAITING` and before the committing
    /// `WAITING→BUSY` CAS. Returning `false` declines that candidate
    /// (the slot is left untouched for another taker).
    ///
    /// The callback is the caller's *validation window*: because it
    /// runs while the partner is verifiably parked — inside both
    /// operations' intervals — a predicate checked there (e.g. the
    /// bounded stack's "not full" guard) holds at an instant at which
    /// the eliminated pair may linearize.
    ///
    /// Scans every slot starting from a random index.
    pub fn take_if(&self, admit: impl FnMut() -> bool) -> Option<T> {
        self.take_if_stamped(admit, NO_HELPER)
            .map(|(value, _)| value)
    }

    /// [`Exchanger::take_if`] with causal attribution: stamps `me` (a
    /// trace thread id) for the parked offeror to read, and returns
    /// the offeror's stamp alongside the item — [`NO_HELPER`] when the
    /// offeror did not identify itself.
    pub fn take_if_stamped(&self, mut admit: impl FnMut() -> bool, me: u32) -> Option<(T, u32)> {
        let start = random_below(self.slots.len() as u64) as usize;
        for i in 0..self.slots.len() {
            let slot = &*self.slots[(start + i) % self.slots.len()];
            let word = slot.state.load(Ordering::Acquire);
            let (tag, state) = unpack(word);
            if state != WAITING || !admit() {
                continue;
            }
            fail_point!("exchange::claim", continue);
            if slot
                .state
                .compare_exchange(word, pack(tag, BUSY), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // SAFETY: exclusive window (BUSY).
            let value = unsafe { (*slot.item.get()).take() }.expect("parked item present");
            // Read the offeror's stamp (published by its WAITING
            // store) and leave ours before the recycling store makes
            // the slot claimable again — both inside the BUSY window.
            let (stamp_tag, partner) = unpack(slot.offeror_stamp.load(Ordering::Relaxed));
            let partner = if stamp_tag == tag { partner } else { NO_HELPER };
            slot.taker_stamp.store(pack(tag, me), Ordering::Release);
            slot.state
                .store(pack(tag.wrapping_add(1), EMPTY), Ordering::Release);
            self.exchanged.fetch_add(1, Ordering::Relaxed);
            return Some((value, partner));
        }
        None
    }

    /// True when every slot is `EMPTY` with no parked item — the
    /// quiescent-state check the conservation tests rely on.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.slots
            .iter()
            .all(|slot| unpack(slot.state.load(Ordering::Acquire)).1 == EMPTY)
    }

    fn random_slot(&self) -> &ExchangeSlot<T> {
        let idx = random_below(self.slots.len() as u64) as usize;
        &self.slots[idx]
    }
}

/// The taker's identity stamp for the rendezvous tagged `tag`, polled
/// briefly (see [`STAMP_POLLS`]); [`NO_HELPER`] if it never became
/// visible. Called by an offeror that has already detected its
/// exchange, so the slot may be in any later state — the tag check is
/// what ties the stamp to *this* rendezvous.
fn taker_stamp_of<T>(slot: &ExchangeSlot<T>, tag: u32) -> u32 {
    for _ in 0..STAMP_POLLS {
        let (stamp_tag, tid) = unpack(slot.taker_stamp.load(Ordering::Acquire));
        if stamp_tag == tag {
            return tid;
        }
        std::hint::spin_loop();
    }
    NO_HELPER
}

impl<T> std::fmt::Debug for Exchanger<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exchanger")
            .field("slots", &self.slots.len())
            .field("exchanged", &self.exchanged.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn solo_offer_times_out_and_returns_the_item() {
        let ex: Exchanger<u32> = Exchanger::new(2);
        assert_eq!(ex.offer(7, 4), Err(7));
        assert!(ex.is_idle(), "retract must recycle the slot");
        assert_eq!(ex.exchanges(), 0);
    }

    #[test]
    fn solo_take_finds_nothing() {
        let ex: Exchanger<u32> = Exchanger::new(2);
        assert_eq!(ex.take(), None);
    }

    #[test]
    fn offer_and_take_rendezvous() {
        let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(1));
        let offeror = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || loop {
                match ex.offer(42, 10_000) {
                    Ok(()) => return,
                    Err(_) => std::thread::yield_now(),
                }
            })
        };
        let got = loop {
            if let Some(v) = ex.take() {
                break v;
            }
            std::hint::spin_loop();
        };
        offeror.join().unwrap();
        assert_eq!(got, 42);
        assert_eq!(ex.exchanges(), 1);
        assert!(ex.is_idle());
    }

    #[test]
    fn declined_take_leaves_the_slot_parked() {
        let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(1));
        let offeror = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || loop {
                match ex.offer(9, 100_000) {
                    Ok(()) => return,
                    Err(_) => std::thread::yield_now(),
                }
            })
        };
        // Wait until the item is verifiably parked, then decline it.
        while ex.is_idle() {
            std::hint::spin_loop();
        }
        assert_eq!(ex.take_if(|| false), None, "declined candidates stay");
        assert_eq!(ex.take(), Some(9), "a later taker still gets it");
        offeror.join().unwrap();
        assert_eq!(ex.exchanges(), 1);
    }

    #[test]
    fn stamped_rendezvous_reports_both_identities() {
        let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(1));
        let offeror = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || loop {
                match ex.offer_stamped(42, 10_000, 11) {
                    Ok(partner) => return partner,
                    Err(_) => std::thread::yield_now(),
                }
            })
        };
        let (got, offeror_id) = loop {
            if let Some(pair) = ex.take_if_stamped(|| true, 22) {
                break pair;
            }
            std::hint::spin_loop();
        };
        let taker_id = offeror.join().unwrap();
        assert_eq!(got, 42);
        assert_eq!(offeror_id, 11, "taker learns the offeror's identity");
        assert_eq!(taker_id, 22, "offeror learns the taker's identity");
        assert_eq!(ex.exchanges(), 1);
        assert!(ex.is_idle());
    }

    #[test]
    fn unstamped_calls_report_no_helper() {
        let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(1));
        let offeror = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || loop {
                match ex.offer_stamped(5, 10_000, 33) {
                    Ok(partner) => return partner,
                    Err(_) => std::thread::yield_now(),
                }
            })
        };
        // A plain take leaves no taker stamp for this occupancy.
        let got = loop {
            if let Some(v) = ex.take() {
                break v;
            }
            std::hint::spin_loop();
        };
        assert_eq!(got, 5);
        assert_eq!(
            offeror.join().unwrap(),
            NO_HELPER,
            "anonymous taker yields an unattributable edge"
        );
        // A stale stamp from the previous cycle must not leak into a
        // fresh rendezvous either way (tag validation).
        assert_eq!(ex.offer(6, 0), Err(6));
        assert!(ex.is_idle());
    }

    #[test]
    fn slots_recycle_across_many_cycles() {
        let ex: Exchanger<u32> = Exchanger::new(1);
        for i in 0..200 {
            assert_eq!(ex.offer(i, 0), Err(i), "cycle {i}");
        }
        assert!(ex.is_idle());
    }

    #[test]
    fn conserves_items_under_concurrency() {
        const THREADS: u32 = 4;
        const PER_THREAD: u32 = 2_000;
        let ex: Arc<Exchanger<u32>> = Arc::new(Exchanger::new(2));
        let taken = Arc::new(AtomicUsize::new(0));
        let kept = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let ex = Arc::clone(&ex);
                let taken = Arc::clone(&taken);
                let kept = Arc::clone(&kept);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        if t % 2 == 0 {
                            match ex.offer(t * PER_THREAD + i, 64) {
                                Ok(()) => {}
                                Err(_) => {
                                    kept.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        } else if ex.take().is_some() {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let offered = (u64::from(THREADS) / 2) * u64::from(PER_THREAD);
        let exchanged = offered - kept.load(Ordering::Relaxed) as u64;
        assert_eq!(
            taken.load(Ordering::Relaxed) as u64,
            exchanged,
            "every exchanged item must surface exactly once"
        );
        assert_eq!(ex.exchanges(), exchanged);
        assert!(ex.is_idle(), "no items may remain parked");
    }

    #[test]
    fn exchanger_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Exchanger<u32>>();
    }
}
