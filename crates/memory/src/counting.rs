//! Per-thread shared-memory access counters.
//!
//! Every operation on a register from [`crate::reg`] records one access
//! in a thread-local counter. The counters are the measurement substrate
//! for experiment E1 (the paper's Theorem 1: a contention-free
//! `strong_push`/`strong_pop` performs exactly **six** shared-memory
//! accesses) and for the Lamport fast-mutex "seven accesses" claim
//! (reference \[16\] of the paper).
//!
//! Counting is always on; a thread-local increment costs about a
//! nanosecond and does not perturb the relative benchmark results.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, Sub};

/// The kind of shared-memory access performed on an atomic register.
///
/// The paper's model (§2.1–2.2) has exactly three base operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An atomic read of a register.
    Read,
    /// An atomic write of a register.
    Write,
    /// A `Compare&Swap` on a register (counted once whether it
    /// succeeds or fails; either way it is one access to shared memory).
    Cas,
}

thread_local! {
    static READS: Cell<u64> = const { Cell::new(0) };
    static WRITES: Cell<u64> = const { Cell::new(0) };
    static CASES: Cell<u64> = const { Cell::new(0) };
}

/// Records one shared-memory access of the given kind for the calling
/// thread.
///
/// Register types in [`crate::reg`] call this automatically; call it
/// yourself only when modelling a shared access that does not go
/// through those types.
#[inline]
pub fn record(kind: AccessKind) {
    match kind {
        AccessKind::Read => READS.with(|c| c.set(c.get().wrapping_add(1))),
        AccessKind::Write => WRITES.with(|c| c.set(c.get().wrapping_add(1))),
        AccessKind::Cas => CASES.with(|c| c.set(c.get().wrapping_add(1))),
    }
}

/// A snapshot of the calling thread's access counters.
///
/// Obtained from [`snapshot`] or, more conveniently, as the difference
/// computed by a [`CountScope`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AccessCounts {
    /// Number of atomic reads.
    pub reads: u64,
    /// Number of atomic writes.
    pub writes: u64,
    /// Number of `Compare&Swap` invocations (successful or not).
    pub cas: u64,
}

impl AccessCounts {
    /// Total number of shared-memory accesses.
    ///
    /// Saturating: a nonsensical snapshot (e.g. the wrapped deltas
    /// produced by subtracting counters from *different* threads — see
    /// the [`CountScope`] visibility contract) yields a huge total,
    /// never a panic, so budget checks built on `total()` fail loudly
    /// instead of aborting in debug builds.
    ///
    /// ```
    /// use cso_memory::counting::AccessCounts;
    /// let c = AccessCounts { reads: 3, writes: 1, cas: 2 };
    /// assert_eq!(c.total(), 6);
    /// ```
    #[must_use]
    pub fn total(&self) -> u64 {
        self.reads
            .saturating_add(self.writes)
            .saturating_add(self.cas)
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            cas: self.cas + rhs.cas,
        }
    }
}

impl Sub for AccessCounts {
    type Output = AccessCounts;

    fn sub(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            reads: self.reads.wrapping_sub(rhs.reads),
            writes: self.writes.wrapping_sub(rhs.writes),
            cas: self.cas.wrapping_sub(rhs.cas),
        }
    }
}

impl fmt::Display for AccessCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} reads, {} writes, {} CAS)",
            self.total(),
            self.reads,
            self.writes,
            self.cas
        )
    }
}

/// Returns the calling thread's cumulative access counters.
#[must_use]
pub fn snapshot() -> AccessCounts {
    AccessCounts {
        reads: READS.with(Cell::get),
        writes: WRITES.with(Cell::get),
        cas: CASES.with(Cell::get),
    }
}

/// A measurement scope: captures the counters at construction and
/// reports the delta on [`CountScope::take`].
///
/// # Visibility contract (cross-thread behaviour)
///
/// The underlying counters are **thread-local** (`Cell`s, no atomics),
/// so a scope is *thread-affine*: [`CountScope::take`] and
/// [`CountScope::lap`] subtract the **calling** thread's live counters
/// from the baseline the scope captured on whatever thread called
/// [`CountScope::start`]. Used on one thread — the only supported
/// pattern — the delta is exact: no other thread's accesses can leak
/// in, and nothing this thread recorded can be missed, because there
/// is no shared state to race on. A `CountScope` that is copied or
/// moved to a *different* thread is not UB and never panics, but its
/// deltas are meaningless (two unrelated counter streams subtracted
/// with wrapping arithmetic); to audit several threads, start one
/// scope *on each thread* and combine the per-thread results with
/// [`AccessCounts`]'s `Add` — see `StepAuditor` in `cso-trace` for the
/// aggregated form.
///
/// Nested scopes on one thread compose exactly: the counters are
/// cumulative and monotonic, so an inner scope's delta is a sub-range
/// of every enclosing scope's delta (tested by
/// `nested_scopes_compose`).
///
/// ```
/// use cso_memory::counting::CountScope;
/// use cso_memory::reg::RegBool;
///
/// let flag = RegBool::new(false);
/// let scope = CountScope::start();
/// flag.write(true);
/// assert_eq!(scope.take().writes, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CountScope {
    base: AccessCounts,
}

impl CountScope {
    /// Starts a new measurement scope on the calling thread.
    #[must_use]
    pub fn start() -> CountScope {
        CountScope { base: snapshot() }
    }

    /// Returns the accesses performed on this thread since
    /// [`CountScope::start`] (or since the last [`CountScope::take`],
    /// which resets the scope's baseline).
    pub fn take(&self) -> AccessCounts {
        snapshot() - self.base
    }

    /// Returns the accesses since the scope started and moves the
    /// baseline forward, so consecutive calls report disjoint windows.
    ///
    /// Windows are exact and gap-free *on the owning thread*: the new
    /// baseline is the same snapshot the delta was computed from, so
    /// an access is reported in exactly one lap. Calling `lap` from a
    /// different thread re-baselines the scope onto *that* thread's
    /// counters (see the type-level visibility contract).
    pub fn lap(&mut self) -> AccessCounts {
        let now = snapshot();
        let delta = now - self.base;
        self.base = now;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_increments_each_kind() {
        let scope = CountScope::start();
        record(AccessKind::Read);
        record(AccessKind::Read);
        record(AccessKind::Write);
        record(AccessKind::Cas);
        let c = scope.take();
        assert_eq!(
            c,
            AccessCounts {
                reads: 2,
                writes: 1,
                cas: 1
            }
        );
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn lap_reports_disjoint_windows() {
        let mut scope = CountScope::start();
        record(AccessKind::Read);
        assert_eq!(scope.lap().reads, 1);
        record(AccessKind::Write);
        let second = scope.lap();
        assert_eq!(second.reads, 0);
        assert_eq!(second.writes, 1);
    }

    #[test]
    fn nested_scopes_compose() {
        let outer = CountScope::start();
        record(AccessKind::Read);
        let inner = CountScope::start();
        record(AccessKind::Write);
        record(AccessKind::Cas);
        let inner_delta = inner.take();
        record(AccessKind::Read);
        let outer_delta = outer.take();
        // The inner window sees only what happened inside it…
        assert_eq!(
            inner_delta,
            AccessCounts {
                reads: 0,
                writes: 1,
                cas: 1
            }
        );
        // …and is a sub-range of the outer window: outer = before +
        // inner + after, component-wise.
        assert_eq!(
            outer_delta,
            AccessCounts {
                reads: 2,
                writes: 0,
                cas: 0
            } + inner_delta
        );
        // A still-open outer scope keeps extending while inner scopes
        // come and go.
        let mid = CountScope::start();
        record(AccessKind::Cas);
        assert_eq!(mid.take().total(), 1);
        assert_eq!(outer.take().total(), outer_delta.total() + 1);
    }

    #[test]
    fn total_saturates_on_garbage_deltas() {
        // The wrapped delta a cross-thread misuse would produce must
        // not overflow-panic in total().
        let garbage = AccessCounts {
            reads: u64::MAX - 1,
            writes: 7,
            cas: 7,
        };
        assert_eq!(garbage.total(), u64::MAX);
    }

    #[test]
    fn counters_are_thread_local() {
        let scope = CountScope::start();
        std::thread::spawn(|| {
            record(AccessKind::Read);
            record(AccessKind::Read);
        })
        .join()
        .unwrap();
        assert_eq!(scope.take().total(), 0);
    }

    #[test]
    fn counts_add_and_display() {
        let a = AccessCounts {
            reads: 1,
            writes: 2,
            cas: 3,
        };
        let b = AccessCounts {
            reads: 4,
            writes: 5,
            cas: 6,
        };
        let s = a + b;
        assert_eq!(
            s,
            AccessCounts {
                reads: 5,
                writes: 7,
                cas: 9
            }
        );
        assert_eq!(s.to_string(), "21 accesses (5 reads, 7 writes, 9 CAS)");
    }
}
