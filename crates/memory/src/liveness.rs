//! Process liveness: lease-based failure suspicion.
//!
//! The paper's §4.4 starvation-freedom argument assumes every process
//! keeps taking steps. A process that stops forever while holding the
//! slow-path lock (or with a POSTED publication record) wedges the
//! object — §5 calls this out as the price of the locked slow path.
//! Crash *tolerance* needs a failure detector: this module provides
//! the weakest practical one, a lease. Each process announces itself,
//! heartbeats at its slow-path steps, and exits; a peer is *suspected*
//! once its lease is stale past a caller-chosen grace period (or it
//! was explicitly marked dead, e.g. by a supervisor that reaped the
//! thread).
//!
//! Suspicion can be wrong — a live-but-slow process looks dead. Every
//! consumer of [`Liveness::suspect`] must therefore make false
//! suspicion *harmless*, never *unsafe*: publication records are
//! retired without applying them (the live owner reposts), and lock
//! succession transfers custody with a CAS the displaced holder can
//! observe on unlock.
//!
//! All state here lives in **plain `std` atomics, not the counted
//! [`crate::reg`] registers**. Theorem 1's step budgets (six shared
//! accesses on the solo fast path, one added by the transformation)
//! count accesses to the *simulation's* base registers; the liveness
//! lease is harness machinery, like the poisoning counters, and must
//! stay invisible to those budgets.
//!
//! ```
//! use cso_memory::liveness::Liveness;
//! use std::time::Duration;
//!
//! let live = Liveness::new(2);
//! live.announce(0);
//! assert!(live.is_active(0));
//! assert!(!live.suspect(0, Duration::from_secs(60)));
//! live.mark_dead(0); // supervisor reaped the thread
//! assert!(live.suspect(0, Duration::ZERO));
//! assert!(!live.suspect(1, Duration::ZERO)); // never announced => not suspect
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::combining::CachePadded;

/// One process's lease.
#[derive(Debug, Default)]
struct Slot {
    /// Announcement epoch: odd while the process is between
    /// [`Liveness::announce`] and [`Liveness::exit`], even otherwise.
    /// Incremented on both transitions, so a reader can detect a
    /// crash/re-announce cycle it slept through.
    epoch: AtomicU64,
    /// Nanoseconds (since the registry's creation) of the last
    /// heartbeat. Only meaningful while the epoch is odd.
    last_beat_ns: AtomicU64,
    /// Explicitly declared dead (supervisor reaped the thread, or a
    /// chaos harness killed it). Overrides the lease: the process is
    /// suspect regardless of grace.
    dead: AtomicBool,
}

/// A lease-based failure detector over `n` process identities.
///
/// See the module docs for the model. All operations are wait-free
/// single-word atomics; `suspect` is two relaxed loads plus an acquire
/// load on the epoch, cheap enough to consult on slow-path waits.
pub struct Liveness {
    start: Instant,
    slots: Box<[CachePadded<Slot>]>,
}

impl fmt::Debug for Liveness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let active: Vec<usize> = (0..self.n()).filter(|&p| self.is_active(p)).collect();
        f.debug_struct("Liveness")
            .field("n", &self.n())
            .field("active", &active)
            .finish()
    }
}

impl Liveness {
    /// Creates a detector for identities `0..n`, all initially
    /// unannounced (and therefore never suspect).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Arc<Liveness> {
        assert!(n > 0, "a liveness registry needs at least one identity");
        let slots = (0..n).map(|_| CachePadded::new(Slot::default())).collect();
        Arc::new(Liveness {
            start: Instant::now(),
            slots,
        })
    }

    /// The number of identities tracked.
    #[must_use]
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    fn now_ns(&self) -> u64 {
        // Saturating: a >584-year process can keep its lease.
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Process `proc` starts participating: refresh the lease and move
    /// the epoch to odd. Re-announcing after a crash clears the dead
    /// flag (the identity was recycled to a live thread).
    pub fn announce(&self, proc: usize) {
        let slot = &self.slots[proc];
        slot.last_beat_ns.store(self.now_ns(), Ordering::Relaxed);
        slot.dead.store(false, Ordering::Relaxed);
        let e = slot.epoch.load(Ordering::Relaxed);
        if e % 2 == 0 {
            slot.epoch.store(e + 1, Ordering::Release);
        }
    }

    /// Process `proc` stops participating cleanly: move the epoch to
    /// even so it is never suspected while away.
    pub fn exit(&self, proc: usize) {
        let slot = &self.slots[proc];
        let e = slot.epoch.load(Ordering::Relaxed);
        if e % 2 == 1 {
            slot.epoch.store(e + 1, Ordering::Release);
        }
    }

    /// Refreshes `proc`'s lease. Call at slow-path steps (lock waits,
    /// combining rounds); the fast path never needs to.
    pub fn beat(&self, proc: usize) {
        self.slots[proc]
            .last_beat_ns
            .store(self.now_ns(), Ordering::Relaxed);
    }

    /// Declares `proc` dead out-of-band (its thread was reaped, or a
    /// chaos harness froze it forever). It becomes suspect immediately
    /// regardless of grace, until it re-announces.
    pub fn mark_dead(&self, proc: usize) {
        self.slots[proc].dead.store(true, Ordering::Release);
    }

    /// True while `proc` is between `announce` and `exit`.
    #[must_use]
    pub fn is_active(&self, proc: usize) -> bool {
        self.slots[proc].epoch.load(Ordering::Acquire) % 2 == 1
    }

    /// The announcement epoch (odd = active). Two reads bracketing an
    /// observation detect a crash/recycle the observer slept through.
    #[must_use]
    pub fn epoch(&self, proc: usize) -> u64 {
        self.slots[proc].epoch.load(Ordering::Acquire)
    }

    /// Is `proc` suspected of having crashed?
    ///
    /// True when it was explicitly [`Liveness::mark_dead`]ed, or it is
    /// active but its last heartbeat is older than `grace`. A process
    /// that never announced (or exited cleanly) is never suspect.
    /// Suspicion is a *hint*: consumers must stay safe under false
    /// positives (see the module docs).
    #[must_use]
    pub fn suspect(&self, proc: usize, grace: Duration) -> bool {
        let slot = &self.slots[proc];
        if slot.dead.load(Ordering::Acquire) {
            return true;
        }
        if slot.epoch.load(Ordering::Acquire) % 2 == 0 {
            return false;
        }
        let beat = slot.last_beat_ns.load(Ordering::Relaxed);
        let grace = u64::try_from(grace.as_nanos()).unwrap_or(u64::MAX);
        self.now_ns().saturating_sub(beat) > grace
    }
}

/// How a [`ContentionSensitive`] object recovers from crashed peers.
///
/// Embedded in `CsConfig` (hence `Copy + Eq`): `grace` is how stale a
/// lease must be before a holder/record owner is suspected, `backoff`
/// is how long a waiter watches a suspected holder before seizing the
/// lock, and `max_successions` bounds how many seizures the object
/// tolerates before declaring itself unrecoverable (fail-fast beats
/// masking a correlated failure forever).
///
/// [`ContentionSensitive`]: ../../cso_core/contention_sensitive/struct.ContentionSensitive.html
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Lease staleness after which a process is suspected.
    pub grace: Duration,
    /// Successions tolerated before the object degrades to
    /// unrecoverable. The degradation ladder demotes combining at
    /// `max_successions / 2`.
    pub max_successions: u32,
    /// How long a waiter observes a suspected-dead holder before
    /// running the succession protocol (absorbs suspicion jitter).
    pub backoff: Duration,
}

impl RecoveryPolicy {
    /// Defaults tuned for tests and benches: tight enough that a
    /// frozen process is reaped in milliseconds, loose enough that a
    /// descheduled thread on a loaded CI box is not.
    pub const DEFAULT: RecoveryPolicy = RecoveryPolicy {
        grace: Duration::from_millis(50),
        max_successions: 8,
        backoff: Duration::from_millis(5),
    };
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unannounced_process_is_never_suspect() {
        let live = Liveness::new(3);
        assert!(!live.is_active(2));
        assert!(!live.suspect(2, Duration::ZERO));
    }

    #[test]
    fn stale_lease_raises_suspicion_and_a_beat_clears_it() {
        let live = Liveness::new(1);
        live.announce(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(live.suspect(0, Duration::from_nanos(1)));
        live.beat(0);
        assert!(!live.suspect(0, Duration::from_secs(60)));
    }

    #[test]
    fn clean_exit_is_not_a_crash() {
        let live = Liveness::new(1);
        live.announce(0);
        live.exit(0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!live.suspect(0, Duration::ZERO));
        assert!(!live.is_active(0));
    }

    #[test]
    fn mark_dead_overrides_a_fresh_lease() {
        let live = Liveness::new(2);
        live.announce(1);
        live.beat(1);
        live.mark_dead(1);
        assert!(live.suspect(1, Duration::from_secs(60)));
        // Identity recycled to a live thread: announce revives it.
        live.announce(1);
        assert!(!live.suspect(1, Duration::from_secs(60)));
    }

    #[test]
    fn epoch_parity_tracks_announce_exit_cycles() {
        let live = Liveness::new(1);
        assert_eq!(live.epoch(0), 0);
        live.announce(0);
        assert_eq!(live.epoch(0), 1);
        live.announce(0); // idempotent while active
        assert_eq!(live.epoch(0), 1);
        live.exit(0);
        assert_eq!(live.epoch(0), 2);
        live.exit(0); // idempotent while inactive
        assert_eq!(live.epoch(0), 2);
        live.announce(0);
        assert_eq!(live.epoch(0), 3);
    }

    #[test]
    fn default_policy_is_sane() {
        let p = RecoveryPolicy::default();
        assert_eq!(p, RecoveryPolicy::DEFAULT);
        assert!(p.grace > Duration::ZERO);
        assert!(p.max_successions >= 2);
    }
}
