//! Shared-memory substrate for the `cso` workspace.
//!
//! The computation model of Mostefaoui & Raynal (2011), §2, is a set of
//! `n` asynchronous processes communicating through *atomic registers*
//! supporting `read`, `write` and `Compare&Swap`. This crate provides
//! that model on top of `std::sync::atomic`:
//!
//! * [`reg`] — atomic registers whose every access is recorded in a
//!   per-thread counter (so experiments can *measure* the paper's
//!   "six shared memory accesses" claim rather than assert it);
//! * [`packed`] — the multi-field register words the paper uses
//!   (`TOP = ⟨index, value, seqnb⟩`, `STACK[x] = ⟨val, sn⟩`), packed
//!   into a single `u64` so they can be CAS-ed atomically;
//! * [`counting`] — the per-thread shared-access counters;
//! * [`registry`] — process identities `0..n` (the paper's `p_1..p_n`),
//!   needed by the `FLAG`/`TURN` starvation-freedom mechanism;
//! * [`backoff`] — spin/backoff helpers and deadlines used by retry
//!   and wait loops;
//! * [`slab`] — a fixed-capacity slab with an ABA-safe array freelist,
//!   used to lift the 32-bit-value algorithms to arbitrary payloads;
//! * [`combining`] — cache-padded publication records for the
//!   flat-combining slow path (post → claim → complete/poison);
//! * [`exchange`] — the elimination rendezvous slots (offer → park →
//!   take/retract) shared by the elimination-stack baseline and the
//!   contention-sensitive escalation ladder;
//! * [`epoch`] — a minimal epoch-based reclamation scheme for the
//!   node-allocating baselines (Treiber, Michael–Scott, elimination);
//! * [`liveness`] — a lease-based failure detector (announce / beat /
//!   exit, plus `suspect`) and the [`liveness::RecoveryPolicy`] that
//!   governs crash recovery of the locked slow path;
//! * [`chaos`] (behind the `chaos` cargo feature) — the fail-point
//!   registry behind [`fail_point!`], for fault-injection testing of
//!   the §5 crash caveat.
//!
//! # Example
//!
//! ```
//! use cso_memory::counting;
//! use cso_memory::reg::Reg64;
//!
//! let r = Reg64::new(1);
//! let scope = counting::CountScope::start();
//! r.write(2);
//! assert!(r.cas(2, 3));
//! assert_eq!(r.read(), 3);
//! let counts = scope.take();
//! assert_eq!(counts.total(), 3);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod backoff;
pub mod bits;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod combining;
pub mod counting;
pub mod epoch;
pub mod exchange;
pub mod liveness;
pub mod packed;
pub mod reg;
pub mod registry;
pub mod runtime;
pub mod slab;

/// Declares a named fault-injection site (see [`chaos`]).
///
/// With the `chaos` cargo feature **disabled** (the default) the macro
/// expands to nothing — zero code, zero cost. With it enabled, the
/// site consults the [`chaos`] registry: one relaxed atomic load when
/// nothing is armed, the armed [`chaos::Fault`] otherwise.
///
/// Two forms:
///
/// * `fail_point!("site")` — injects delays, yields, panics or stalls
///   in place; a [`chaos::Fault::SpuriousAbort`] is ignored.
/// * `fail_point!("site", expr)` — additionally evaluates `expr`
///   (typically `return Err(Aborted)`) when the armed fault asks the
///   operation to abort.
#[cfg(feature = "chaos")]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {{
        let _ = $crate::chaos::hit($site);
    }};
    ($site:expr, $on_abort:expr) => {{
        if $crate::chaos::hit($site) == $crate::chaos::Action::Abort {
            $on_abort
        }
    }};
}

/// Declares a named fault-injection site (disabled: expands to
/// nothing; enable the `chaos` cargo feature to activate).
#[cfg(not(feature = "chaos"))]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {};
    ($site:expr, $on_abort:expr) => {};
}

pub use backoff::Deadline;
pub use bits::Bits32;
pub use combining::{CachePadded, PubRecord, RecordState, NO_HELPER};
pub use counting::{AccessCounts, CountScope};
pub use exchange::Exchanger;
pub use liveness::{Liveness, RecoveryPolicy};
pub use packed::{DequeState, DequeWord, HeadWord, SlotWord, TailWord, TopWord};
pub use reg::{Reg64, RegBool, RegUsize};
pub use registry::{ProcRegistry, ProcToken, RegistryFull};
pub use slab::Slab;
